"""Setuptools entry point.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable builds (which require ``bdist_wheel``) are unavailable.
Keeping a ``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path.
"""

from setuptools import setup

setup()
