"""Reproduction of *Octopus: Experiences with a Hybrid Event-Driven
Architecture for Distributed Scientific Computing* (SC 2024).

The package re-implements, entirely in Python, every subsystem the paper
relies on:

* :mod:`repro.fabric` — a Kafka-like event fabric (brokers, topics,
  partitions, replication, producers, consumers, consumer groups).
* :mod:`repro.coordination` — a ZooKeeper-like strongly consistent
  metadata store.
* :mod:`repro.auth` — Globus-Auth-like OAuth 2.0 identity plus IAM
  identities, access keys and per-topic ACLs.
* :mod:`repro.faas` — a Lambda/EventBridge-like serverless trigger
  substrate with processing-pressure autoscaling.
* :mod:`repro.core` — Octopus proper: the web service (OWS), the Python
  SDK, credential brokering and trigger management.
* :mod:`repro.simulation` — a discrete-event simulator used to reproduce
  the paper's performance evaluation (Table III, Figures 3–5, 7, 8).
* :mod:`repro.monitoring`, :mod:`repro.services`, :mod:`repro.apps` — the
  science-facing substrates and the five applications of Section VI.
* :mod:`repro.bench` — the benchmarking operator and experiment matrix.
"""

from repro._version import __version__

__all__ = ["__version__"]
