"""Package version, kept in a tiny module so nothing heavy is imported."""

__version__ = "0.1.0"
