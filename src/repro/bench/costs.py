"""Cloud cost model of Section VII-C.

The paper's example: a scheduling application processing 10,000 events per
hour for each of 10 resources invokes 2.4 M Lambdas per day, which at a
5 s trigger duration and 4 KB events costs about $24 per day; MSK's
smallest two-node cluster costs about $70 per month; data egress is $0.09
per GB.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TriggerCostModel:
    """AWS-style pricing used by the paper's cost discussion."""

    lambda_cost_per_million_per_128mb_5s: float = 10.0
    egress_cost_per_gb: float = 0.09
    msk_min_hourly_node_cost: float = 0.0456
    msk_min_nodes: int = 2

    # ------------------------------------------------------------------ #
    def lambda_cost(self, invocations: int, *, memory_mb: int = 128,
                    duration_seconds: float = 5.0) -> float:
        """Cost of ``invocations`` Lambda runs at the given size/duration."""
        scale = (memory_mb / 128.0) * (duration_seconds / 5.0)
        return invocations / 1e6 * self.lambda_cost_per_million_per_128mb_5s * scale

    def egress_cost(self, bytes_transferred: float) -> float:
        return bytes_transferred / 1e9 * self.egress_cost_per_gb

    def monthly_minimum_broker_cost(self) -> float:
        """The ~$70/month floor for the smallest possible MSK cluster."""
        return self.msk_min_nodes * self.msk_min_hourly_node_cost * 730.0

    # ------------------------------------------------------------------ #
    def daily_trigger_cost(
        self,
        *,
        events_per_hour_per_resource: float,
        num_resources: int,
        event_size_bytes: int = 4096,
        duration_seconds: float = 5.0,
        aggregation_factor: float = 1.0,
    ) -> dict:
        """Daily invocation count and cost for a trigger-driven workload.

        ``aggregation_factor`` models the hierarchical-aggregation
        mitigation discussed in the paper (events per trigger invocation).
        """
        invocations = (
            events_per_hour_per_resource * num_resources * 24.0 / max(aggregation_factor, 1.0)
        )
        lambda_cost = self.lambda_cost(int(invocations), duration_seconds=duration_seconds)
        egress = self.egress_cost(invocations * event_size_bytes)
        return {
            "invocations_per_day": invocations,
            "lambda_cost_usd": lambda_cost,
            "egress_cost_usd": egress,
            "total_cost_usd": lambda_cost + egress,
        }


def scheduling_example_daily_cost(*, aggregation_factor: float = 1.0) -> dict:
    """The exact Section VII-C example (10 k events/h × 10 resources)."""
    return TriggerCostModel().daily_trigger_cost(
        events_per_hour_per_resource=10_000,
        num_resources=10,
        event_size_bytes=4096,
        duration_seconds=5.0,
        aggregation_factor=aggregation_factor,
    )
