"""Benchmark configuration tables (Table I and Table II of the paper)."""

from __future__ import annotations

from repro.simulation.cluster_model import CLUSTER_CONFIGS
from repro.simulation.workload import USE_CASE_PROFILES

#: Table I — use-case event characteristics (re-exported for the benches).
USE_CASES = USE_CASE_PROFILES

#: Table II — testbed cluster configurations (re-exported for the benches).
CLUSTERS = CLUSTER_CONFIGS

#: Message sizes exercised throughout Section V (32 B, 1 KB, 4 KB).
EVENT_SIZES_BYTES = (32, 1024, 4096)

#: Producer counts swept per experiment (20–100, Section V-C).
PRODUCER_COUNTS = (20, 40, 60, 80, 100)
