"""Benchmarking operator: experiment configs, cost model and report formatting.

The paper's "benchmarking operator" (Section V-B) orchestrates topic
creation, spawns producers/consumers, gathers agent logs and aggregates
them.  Here the operator drives the in-process fabric and the calibrated
performance models; the ``benchmarks/`` directory contains one
pytest-benchmark module per table/figure that uses these helpers.
"""

from repro.bench.configs import USE_CASES, CLUSTERS
from repro.bench.costs import TriggerCostModel, scheduling_example_daily_cost
from repro.bench.report import format_table3, format_figure_series
from repro.bench.operator import BenchmarkOperator, FabricRunResult

__all__ = [
    "USE_CASES",
    "CLUSTERS",
    "TriggerCostModel",
    "scheduling_example_daily_cost",
    "format_table3",
    "format_figure_series",
    "BenchmarkOperator",
    "FabricRunResult",
]
