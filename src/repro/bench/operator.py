"""The benchmarking operator.

Section V-B: "We implemented a benchmarking operator to orchestrate the
creation of topics with specific configurations (e.g., replication factor,
number of partitions) and spawn the specified number of producers and
consumers on remote resources."  This operator does the same against the
in-process fabric: it provisions a topic, runs produce/consume rounds,
collects per-agent windows and aggregates throughput/latency exactly as
the paper's formula does.  It powers the functional (non-simulated) side
of the benchmark suite and the examples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fabric.cluster import FabricCluster
from repro.fabric.consumer import ConsumerConfig, FabricConsumer
from repro.fabric.producer import FabricProducer, ProducerConfig
from repro.fabric.topic import TopicConfig
from repro.simulation.metrics import LatencyStats, ThroughputMeasurement
from repro.simulation.workload import SyntheticEventGenerator


@dataclass
class FabricRunResult:
    """Aggregated outcome of one produce/consume round."""

    events: int
    produce_throughput: float
    consume_throughput: float
    produce_latency: LatencyStats
    per_producer_events: Dict[int, int] = field(default_factory=dict)


class BenchmarkOperator:
    """Orchestrates functional produce/consume rounds on a fabric cluster."""

    def __init__(self, cluster: Optional[FabricCluster] = None, *, num_brokers: int = 2) -> None:
        self.cluster = cluster or FabricCluster(num_brokers=num_brokers)

    # ------------------------------------------------------------------ #
    def provision_topic(
        self,
        name: str,
        *,
        partitions: int = 2,
        replication_factor: int = 2,
    ) -> None:
        if not self.cluster.has_topic(name):
            self.cluster.admin().create_topic(
                name,
                TopicConfig(num_partitions=partitions, replication_factor=replication_factor),
            )

    def run_round(
        self,
        topic: str,
        *,
        num_events: int,
        num_producers: int = 4,
        num_consumers: int = 4,
        event_size_bytes: int = 1024,
        acks: object = 1,
        batched: bool = False,
        prefetch: bool = False,
    ) -> FabricRunResult:
        """Produce ``num_events`` then consume them all, measuring both sides.

        With ``batched=True`` producers accumulate events with
        :meth:`FabricProducer.buffer` and deliver whole record batches
        through the cluster's batched append path; the default sends one
        record per round-trip (the paper's unbatched client baseline).
        With ``prefetch=True`` consumers pipeline the next fetch-session
        pass on a background thread while the measured loop processes the
        current batch.
        """
        generator = SyntheticEventGenerator(event_size_bytes)
        producers = [
            FabricProducer(self.cluster, ProducerConfig(acks=acks, client_id=f"producer-{i}"))
            for i in range(num_producers)
        ]
        produce_windows: List[tuple] = []
        latencies_ms: List[float] = []
        per_producer: Dict[int, int] = {}
        for index, producer in enumerate(producers):
            share = num_events // num_producers + (1 if index < num_events % num_producers else 0)
            start = time.perf_counter()
            if batched:
                for _ in range(share):
                    event = generator.next_event()
                    try:
                        producer.buffer(topic, event)
                    except BufferError:
                        producer.flush()
                        producer.buffer(topic, event)
                producer.flush()
            else:
                for _ in range(share):
                    producer.send(topic, generator.next_event())
            end = time.perf_counter()
            produce_windows.append((start, end))
            # send_latencies is a bounded window (the most recent
            # METRICS_WINDOW sends per producer); percentiles over runs
            # larger than that window describe the steady-state tail.
            latencies_ms.extend(l * 1000.0 for l in producer.metrics.send_latencies)
            per_producer[index] = share
        produce = ThroughputMeasurement.from_agent_windows(num_events, produce_windows)

        consume_windows: List[tuple] = []
        consumed = 0
        consumers = [
            FabricConsumer(
                self.cluster,
                [topic],
                ConsumerConfig(group_id="bench-consumers", client_id=f"consumer-{i}",
                               enable_auto_commit=False, max_poll_records=5000,
                               prefetch=prefetch),
            )
            for i in range(num_consumers)
        ]
        for consumer in consumers:
            consumer.poll(max_records=0)  # refresh assignment after all joined
        for consumer in consumers:
            start = time.perf_counter()
            while True:
                records = consumer.poll_flat(max_records=5000)
                if not records:
                    break
                consumed += len(records)
            end = time.perf_counter()
            consume_windows.append((start, end))
            consumer.close()
        consume = ThroughputMeasurement.from_agent_windows(consumed, consume_windows)
        return FabricRunResult(
            events=num_events,
            produce_throughput=produce.events_per_second,
            consume_throughput=consume.events_per_second,
            produce_latency=LatencyStats.from_samples(latencies_ms),
            per_producer_events=per_producer,
        )
