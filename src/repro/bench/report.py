"""Formatting of benchmark results into paper-style tables and series."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.simulation.evaluation import Figure3Point, Figure5Point, Table3Row
from repro.simulation.metrics import format_events_per_second


def format_table3(rows: Sequence[Table3Row]) -> str:
    """Render Table III rows the way the paper prints them."""
    header = (
        f"{'Exp':>3} {'Cluster':>9} {'RF':>2} {'Part':>4} {'Acks':>4} {'Size':>6} | "
        f"{'ProdThru':>10} {'MedLat':>7} {'99%Lat':>7} {'ConsThru':>10} | "
        f"{'ProdThru':>10} {'MedLat':>7} {'99%Lat':>7} {'ConsThru':>10}"
    )
    location_header = f"{'':>34} | {'Local Client':^38} | {'Remote Client':^38}"
    lines = [location_header, header, "-" * len(header)]
    for row in rows:
        config = row.config
        size = (
            f"{config.event_size_bytes} B"
            if config.event_size_bytes < 1024
            else f"{config.event_size_bytes // 1024} KB"
        )
        lines.append(
            f"{config.index:>3} {config.cluster:>9} {config.replication_factor:>2} "
            f"{config.partitions:>4} {str(config.acks):>4} {size:>6} | "
            f"{format_events_per_second(row.local.producer_throughput):>10} "
            f"{row.local.median_latency_ms:>7.0f} {row.local.p99_latency_ms:>7.0f} "
            f"{format_events_per_second(row.local.consumer_throughput):>10} | "
            f"{format_events_per_second(row.remote.producer_throughput):>10} "
            f"{row.remote.median_latency_ms:>7.0f} {row.remote.p99_latency_ms:>7.0f} "
            f"{format_events_per_second(row.remote.consumer_throughput):>10}"
        )
    return "\n".join(lines)


def format_figure_series(
    title: str, series: Dict[int, List[Figure3Point]]
) -> str:
    """Render Figure 3-style latency/throughput curves as text."""
    lines = [title]
    for experiment, points in sorted(series.items()):
        lines.append(f"  Experiment #{experiment}:")
        for point in points:
            lines.append(
                f"    producers={point.num_producers:>3}  "
                f"throughput={format_events_per_second(point.throughput):>10}/s  "
                f"median={point.median_latency_ms:6.1f} ms  "
                f"p99={point.p99_latency_ms:6.1f} ms"
            )
    return "\n".join(lines)


def format_figure5(points: Iterable[Figure5Point]) -> str:
    """Render the Figure 5 multi-tenancy series as text."""
    lines = ["Figure 5 — throughput vs. number of topics (scale-out cluster)"]
    for point in points:
        lines.append(
            f"  topics={point.num_topics:>3}  "
            f"producers={format_events_per_second(point.producer_throughput):>8}/s  "
            f"consumers={format_events_per_second(point.consumer_throughput):>8}/s"
        )
    return "\n".join(lines)


def format_scaling_series(title: str, samples, *, stride: int = 60) -> str:
    """Render Figure 4/7-style (time, queue depth, concurrency) series."""
    lines = [title, f"  {'t(s)':>6} {'queue':>8} {'concurrent':>10} {'done':>8}"]
    for sample in samples[::stride]:
        lines.append(
            f"  {sample.time_seconds:>6.0f} {sample.queue_depth:>8d} "
            f"{sample.concurrent_invocations:>10d} {sample.completed:>8d}"
        )
    return "\n".join(lines)
