"""ZooKeeper-like coordination substrate.

MSK uses Apache ZooKeeper to maintain and synchronize cluster state —
topics, access control lists and topic ownership (Section IV-C/IV-F of the
paper).  This package provides a strongly consistent, versioned,
hierarchical key-value store with watches, plus the Octopus-specific
metadata registry layered on top of it.
"""

from repro.coordination.zookeeper import ZooKeeperEnsemble, ZNode, ZNodeStat
from repro.coordination.metadata import ClusterMetadataRegistry

__all__ = [
    "ZooKeeperEnsemble",
    "ZNode",
    "ZNodeStat",
    "ClusterMetadataRegistry",
]
