"""A ZooKeeper-like hierarchical, versioned, watchable key-value store.

The real MSK deployment relies on ZooKeeper for strongly consistent
metadata: which topics exist, who owns them, and their ACLs.  The paper
notes (Section IV-F) that ownership updates are infrequent, so strong
consistency is cheap; this implementation provides the same primitives —
znodes organised in a path hierarchy, per-node versions with
compare-and-set writes, ephemeral nodes tied to a session, sequential
nodes, and watches that fire on change — within a single process, guarded
by a lock (linearizable by construction).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


class CoordinationError(Exception):
    """Base class for coordination-store errors."""


class NoNodeError(CoordinationError):
    """The requested znode path does not exist."""


class NodeExistsError(CoordinationError):
    """A znode already exists at the path being created."""


class BadVersionError(CoordinationError):
    """A conditional write carried a stale version."""


class NotEmptyError(CoordinationError):
    """A znode with children cannot be deleted non-recursively."""


@dataclass(frozen=True)
class ZNodeStat:
    """Version and timestamps of a znode, as returned to callers."""

    version: int
    created_at: float
    modified_at: float
    ephemeral_owner: Optional[str]
    num_children: int


@dataclass
class ZNode:
    """Internal representation of a znode."""

    path: str
    data: Any = None
    version: int = 0
    created_at: float = field(default_factory=time.time)
    modified_at: float = field(default_factory=time.time)
    ephemeral_owner: Optional[str] = None
    sequence_counter: int = 0


WatchCallback = Callable[[str, str], None]  # (event_type, path)


class ZooKeeperEnsemble:
    """Strongly consistent znode store with watches.

    The name reflects that a production deployment would be a replicated
    ensemble; here a single in-process store with a global lock provides
    the same linearizable semantics.
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, ZNode] = {"/": ZNode(path="/")}
        self._lock = threading.RLock()
        self._watches: Dict[str, List[WatchCallback]] = {}
        self._child_watches: Dict[str, List[WatchCallback]] = {}
        self._sessions: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------ #
    # Path helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate_path(path: str) -> str:
        if not path.startswith("/"):
            raise ValueError(f"znode path must be absolute, got {path!r}")
        if path != "/" and path.endswith("/"):
            raise ValueError("znode path must not end with '/'")
        return path

    @staticmethod
    def _parent(path: str) -> str:
        if path == "/":
            return "/"
        parent = path.rsplit("/", 1)[0]
        return parent or "/"

    # ------------------------------------------------------------------ #
    # CRUD
    # ------------------------------------------------------------------ #
    def create(
        self,
        path: str,
        data: Any = None,
        *,
        ephemeral_owner: Optional[str] = None,
        sequential: bool = False,
        make_parents: bool = False,
    ) -> str:
        """Create a znode; returns the actual path (suffixes for sequential nodes)."""
        path = self._validate_path(path)
        with self._lock:
            parent = self._parent(path)
            if parent not in self._nodes:
                if make_parents:
                    self.create(parent, make_parents=True)
                else:
                    raise NoNodeError(f"parent {parent!r} does not exist")
            if sequential:
                parent_node = self._nodes[parent]
                seq = parent_node.sequence_counter
                parent_node.sequence_counter += 1
                path = f"{path}{seq:010d}"
            if path in self._nodes:
                raise NodeExistsError(f"znode {path!r} already exists")
            self._nodes[path] = ZNode(path=path, data=data, ephemeral_owner=ephemeral_owner)
            if ephemeral_owner is not None:
                self._sessions.setdefault(ephemeral_owner, []).append(path)
            self._fire_child_watches(parent)
            self._fire_watches("created", path)
            return path

    def exists(self, path: str) -> bool:
        with self._lock:
            return self._validate_path(path) in self._nodes

    def get(self, path: str) -> Any:
        with self._lock:
            return self._node(path).data

    def stat(self, path: str) -> ZNodeStat:
        with self._lock:
            node = self._node(path)
            return ZNodeStat(
                version=node.version,
                created_at=node.created_at,
                modified_at=node.modified_at,
                ephemeral_owner=node.ephemeral_owner,
                num_children=len(self.children(path)),
            )

    def set(self, path: str, data: Any, *, expected_version: Optional[int] = None) -> int:
        """Update a znode's data; returns the new version.

        ``expected_version`` enables compare-and-set updates — the OWS uses
        it to make its topic-ownership updates idempotent under retry.
        """
        with self._lock:
            node = self._node(path)
            if expected_version is not None and node.version != expected_version:
                raise BadVersionError(
                    f"{path}: expected version {expected_version}, found {node.version}"
                )
            node.data = data
            node.version += 1
            node.modified_at = time.time()
            self._fire_watches("changed", path)
            return node.version

    def delete(self, path: str, *, recursive: bool = False) -> None:
        with self._lock:
            path = self._validate_path(path)
            self._node(path)
            children = self.children(path)
            if children and not recursive:
                raise NotEmptyError(f"znode {path!r} has children {children}")
            for child in children:
                self.delete(f"{path}/{child}" if path != "/" else f"/{child}", recursive=True)
            node = self._nodes.pop(path)
            if node.ephemeral_owner and node.ephemeral_owner in self._sessions:
                try:
                    self._sessions[node.ephemeral_owner].remove(path)
                except ValueError:
                    pass
            self._fire_watches("deleted", path)
            self._fire_child_watches(self._parent(path))

    def children(self, path: str) -> List[str]:
        """Direct child names of ``path``, sorted."""
        with self._lock:
            path = self._validate_path(path)
            if path not in self._nodes:
                raise NoNodeError(f"znode {path!r} does not exist")
            prefix = path if path != "/" else ""
            names = []
            for other in self._nodes:
                if other == path or not other.startswith(prefix + "/"):
                    continue
                remainder = other[len(prefix) + 1 :]
                if "/" not in remainder:
                    names.append(remainder)
            return sorted(names)

    def ensure_path(self, path: str) -> None:
        """Create ``path`` (and parents) if missing; no error if present."""
        try:
            self.create(path, make_parents=True)
        except NodeExistsError:
            pass

    # ------------------------------------------------------------------ #
    # Watches
    # ------------------------------------------------------------------ #
    def watch(self, path: str, callback: WatchCallback) -> None:
        """Invoke ``callback(event, path)`` whenever the node changes."""
        with self._lock:
            self._watches.setdefault(self._validate_path(path), []).append(callback)

    def watch_children(self, path: str, callback: WatchCallback) -> None:
        """Invoke ``callback`` whenever direct children are added/removed."""
        with self._lock:
            self._child_watches.setdefault(self._validate_path(path), []).append(callback)

    def _fire_watches(self, event: str, path: str) -> None:
        for callback in list(self._watches.get(path, ())):
            callback(event, path)

    def _fire_child_watches(self, parent: str) -> None:
        for callback in list(self._child_watches.get(parent, ())):
            callback("children_changed", parent)

    # ------------------------------------------------------------------ #
    # Sessions (ephemeral nodes)
    # ------------------------------------------------------------------ #
    def close_session(self, session_id: str) -> List[str]:
        """Delete every ephemeral node owned by ``session_id``."""
        with self._lock:
            paths = list(self._sessions.pop(session_id, ()))
            for path in paths:
                if path in self._nodes:
                    self.delete(path, recursive=True)
            return paths

    # ------------------------------------------------------------------ #
    def _node(self, path: str) -> ZNode:
        path = self._validate_path(path)
        try:
            return self._nodes[path]
        except KeyError:
            raise NoNodeError(f"znode {path!r} does not exist") from None

    def dump(self) -> Dict[str, Any]:
        """Snapshot of the whole tree (debugging / persistence)."""
        with self._lock:
            return {path: node.data for path, node in sorted(self._nodes.items())}
