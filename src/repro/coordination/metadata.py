"""Octopus cluster metadata registry, layered on the coordination store.

The paper states (Section IV-F) that "the source of truth about which
topics are owned by which identities are stored in ZooKeeper and
replicated to IAM".  :class:`ClusterMetadataRegistry` is that source of
truth: it records topic ownership, per-topic ACL entries and the mapping
from Globus identities to IAM principals, all as znodes so that updates
are versioned and watchable.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.coordination.zookeeper import NoNodeError, ZooKeeperEnsemble

#: znode layout
TOPICS_ROOT = "/octopus/topics"
IDENTITIES_ROOT = "/octopus/identities"
TRIGGERS_ROOT = "/octopus/triggers"


class ClusterMetadataRegistry:
    """Topic ownership, ACLs and identity mappings on top of ZooKeeper."""

    def __init__(self, ensemble: Optional[ZooKeeperEnsemble] = None) -> None:
        self.ensemble = ensemble or ZooKeeperEnsemble()
        for root in (TOPICS_ROOT, IDENTITIES_ROOT, TRIGGERS_ROOT):
            self.ensemble.ensure_path(root)

    # ------------------------------------------------------------------ #
    # Topic ownership and ACLs
    # ------------------------------------------------------------------ #
    def register_topic(self, topic: str, owner: str, config: Optional[dict] = None) -> None:
        """Record a newly provisioned topic and its owning identity.

        Idempotent: re-registering an existing topic with the same owner is
        a no-op (OWS API operations are required to be idempotent so that
        automatic retries cannot corrupt state).
        """
        path = f"{TOPICS_ROOT}/{topic}"
        if self.ensemble.exists(path):
            existing = self.ensemble.get(path)
            if existing.get("owner") != owner:
                raise PermissionError(
                    f"topic {topic!r} is already owned by {existing.get('owner')!r}"
                )
            return
        self.ensemble.create(
            path,
            {
                "owner": owner,
                "config": dict(config or {}),
                "acl": {owner: ["DESCRIBE", "READ", "WRITE"]},
            },
        )

    def topic_exists(self, topic: str) -> bool:
        return self.ensemble.exists(f"{TOPICS_ROOT}/{topic}")

    def topic_owner(self, topic: str) -> str:
        return self._topic_data(topic)["owner"]

    def topic_config(self, topic: str) -> dict:
        return dict(self._topic_data(topic).get("config", {}))

    def set_topic_config(self, topic: str, config: dict) -> None:
        data = self._topic_data(topic)
        data["config"] = dict(config)
        self.ensemble.set(f"{TOPICS_ROOT}/{topic}", data)

    def unregister_topic(self, topic: str) -> None:
        path = f"{TOPICS_ROOT}/{topic}"
        if self.ensemble.exists(path):
            self.ensemble.delete(path, recursive=True)

    def list_topics(self) -> List[str]:
        return self.ensemble.children(TOPICS_ROOT)

    def topics_for_principal(self, principal: str) -> List[str]:
        """Topics the principal may DESCRIBE (used by ``GET /topics``)."""
        out = []
        for topic in self.list_topics():
            acl = self._topic_data(topic).get("acl", {})
            if "DESCRIBE" in acl.get(principal, []):
                out.append(topic)
        return out

    # -- ACL management ------------------------------------------------- #
    def grant(self, topic: str, principal: str, operations: List[str]) -> Dict[str, List[str]]:
        """Grant ``operations`` on ``topic`` to ``principal``; returns the ACL."""
        data = self._topic_data(topic)
        acl = data.setdefault("acl", {})
        current = set(acl.get(principal, []))
        current.update(op.upper() for op in operations)
        acl[principal] = sorted(current)
        self.ensemble.set(f"{TOPICS_ROOT}/{topic}", data)
        return dict(acl)

    def revoke(self, topic: str, principal: str,
               operations: Optional[List[str]] = None) -> Dict[str, List[str]]:
        """Revoke operations (default: all) on ``topic`` from ``principal``."""
        data = self._topic_data(topic)
        acl = data.setdefault("acl", {})
        if principal in acl:
            if operations is None:
                del acl[principal]
            else:
                remaining = set(acl[principal]) - {op.upper() for op in operations}
                if remaining:
                    acl[principal] = sorted(remaining)
                else:
                    del acl[principal]
        self.ensemble.set(f"{TOPICS_ROOT}/{topic}", data)
        return dict(acl)

    def acl(self, topic: str) -> Dict[str, List[str]]:
        return dict(self._topic_data(topic).get("acl", {}))

    def is_authorized(self, principal: Optional[str], operation: str, topic: str) -> bool:
        """ACL check used by the fabric front end and the OWS routes."""
        if principal is None:
            return False
        try:
            acl = self._topic_data(topic).get("acl", {})
        except NoNodeError:
            return False
        return operation.upper() in acl.get(principal, [])

    # ------------------------------------------------------------------ #
    # Identity mapping (Globus identity -> IAM principal)
    # ------------------------------------------------------------------ #
    def map_identity(self, globus_identity: str, iam_principal: str) -> None:
        path = f"{IDENTITIES_ROOT}/{globus_identity}"
        if self.ensemble.exists(path):
            self.ensemble.set(path, {"iam_principal": iam_principal})
        else:
            self.ensemble.create(path, {"iam_principal": iam_principal})

    def iam_principal_for(self, globus_identity: str) -> Optional[str]:
        path = f"{IDENTITIES_ROOT}/{globus_identity}"
        if not self.ensemble.exists(path):
            return None
        return self.ensemble.get(path)["iam_principal"]

    # ------------------------------------------------------------------ #
    # Trigger registry
    # ------------------------------------------------------------------ #
    def register_trigger(self, trigger_id: str, spec: dict) -> None:
        path = f"{TRIGGERS_ROOT}/{trigger_id}"
        if self.ensemble.exists(path):
            self.ensemble.set(path, dict(spec))
        else:
            self.ensemble.create(path, dict(spec))

    def trigger_spec(self, trigger_id: str) -> dict:
        return dict(self.ensemble.get(f"{TRIGGERS_ROOT}/{trigger_id}"))

    def list_triggers(self) -> List[str]:
        return self.ensemble.children(TRIGGERS_ROOT)

    def unregister_trigger(self, trigger_id: str) -> None:
        path = f"{TRIGGERS_ROOT}/{trigger_id}"
        if self.ensemble.exists(path):
            self.ensemble.delete(path)

    # ------------------------------------------------------------------ #
    def _topic_data(self, topic: str) -> dict:
        return self.ensemble.get(f"{TOPICS_ROOT}/{topic}")
