"""Broker instance types, cluster specifications and capacity laws.

Table II of the paper defines three MSK cluster configurations:

========  ==============  =================  =====  ========
Name      Number brokers  Broker type        vCPUs  Memory
========  ==============  =================  =====  ========
Baseline  2               kafka.m5.large     2      8 GB
Scale-up  2               kafka.m5.xlarge    4      16 GB
Scale-out 4               kafka.m5.large     2      8 GB
========  ==============  =================  =====  ========

:class:`ClusterCapacityModel` turns a cluster spec plus a workload
configuration (event size, acks, replication factor, partitions, client
location) into aggregate produce/consume capacity, encoding the structural
relationships measured in Section V-C:

* small events are record-rate-bound, large events are byte-rate-bound;
* consumers read roughly twice as fast as producers write, and do not pay
  the replication cost;
* ``acks=1`` costs ~18 % and ``acks=all`` ~67 % of produce throughput;
* raising the replication factor from 2 to 4 costs ~23 % of write
  throughput and leaves reads unchanged;
* scale-out (more brokers) helps writes more than scale-up (bigger
  brokers), and remote producers barely benefit from scale-up at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.simulation.network import ClientLocation


@dataclass(frozen=True)
class BrokerInstanceType:
    """An MSK broker instance class."""

    name: str
    vcpus: int
    memory_gb: int
    hourly_cost_usd: float


#: The instance classes used in Table II (cost from Section VII-C).
INSTANCE_TYPES: Dict[str, BrokerInstanceType] = {
    "kafka.m5.large": BrokerInstanceType("kafka.m5.large", vcpus=2, memory_gb=8,
                                         hourly_cost_usd=0.0456 * 4.6),
    "kafka.m5.xlarge": BrokerInstanceType("kafka.m5.xlarge", vcpus=4, memory_gb=16,
                                          hourly_cost_usd=0.0456 * 9.2),
    "kafka.t3.small": BrokerInstanceType("kafka.t3.small", vcpus=2, memory_gb=2,
                                         hourly_cost_usd=0.0456),
}


@dataclass(frozen=True)
class ClusterSpec:
    """A named cluster configuration (one row of Table II)."""

    name: str
    num_brokers: int
    instance_type: str

    @property
    def instance(self) -> BrokerInstanceType:
        return INSTANCE_TYPES[self.instance_type]

    @property
    def vcpus_per_broker(self) -> int:
        return self.instance.vcpus

    @property
    def memory_gb_per_broker(self) -> int:
        return self.instance.memory_gb

    def describe(self) -> dict:
        return {
            "name": self.name,
            "num_brokers": self.num_brokers,
            "broker_type": self.instance_type,
            "vcpus_per_broker": self.vcpus_per_broker,
            "memory_per_broker_gb": self.memory_gb_per_broker,
        }


#: Table II, verbatim.
CLUSTER_CONFIGS: Dict[str, ClusterSpec] = {
    "baseline": ClusterSpec("baseline", num_brokers=2, instance_type="kafka.m5.large"),
    "scale-up": ClusterSpec("scale-up", num_brokers=2, instance_type="kafka.m5.xlarge"),
    "scale-out": ClusterSpec("scale-out", num_brokers=4, instance_type="kafka.m5.large"),
}


@dataclass(frozen=True)
class CapacityParameters:
    """Calibration constants of the capacity laws.

    The reference configuration is the Table II *baseline* cluster with
    replication factor 2, two partitions and local clients.
    """

    # Produce-side reference limits (events/s and bytes/s at the reference).
    write_record_limit: float = 4.29e6
    write_byte_limit: float = 200.0e6
    # Consume-side reference limits.
    read_record_limit: float = 9.84e6
    read_byte_limit: float = 365.0e6
    # Scaling exponents.
    write_broker_exponent: float = 0.75
    write_vcpu_exponent_local: float = 0.30
    write_vcpu_exponent_remote: float = 0.05
    read_broker_exponent: float = 1.0
    read_vcpu_exponent: float = 1.0
    replication_exponent: float = 0.375
    # Partition bonus (log2-scaled around the 2-partition reference).
    partition_bonus: float = 0.05
    single_partition_penalty: float = 0.95
    # Acknowledgement throughput factors (acks=0 is the reference).
    acks1_factor: float = 0.82
    acks_all_factor: float = 0.33
    # Remote clients achieve slightly lower produce and slightly higher
    # consume throughput than local clients (Table III).
    remote_write_factor: float = 0.925
    remote_read_factor: float = 1.03


class ClusterCapacityModel:
    """Aggregate produce/consume capacity for a cluster and workload."""

    def __init__(self, spec: ClusterSpec, params: Optional[CapacityParameters] = None) -> None:
        self.spec = spec
        self.params = params or CapacityParameters()

    # ------------------------------------------------------------------ #
    # Shared factors
    # ------------------------------------------------------------------ #
    def _partition_factor(self, partitions: int) -> float:
        if partitions < 1:
            raise ValueError("partitions must be >= 1")
        if partitions == 1:
            return self.params.single_partition_penalty
        return 1.0 + self.params.partition_bonus * math.log2(partitions / 2.0)

    def _acks_factor(self, acks: object) -> float:
        if acks in (0, "0"):
            return 1.0
        if acks in (1, "1"):
            return self.params.acks1_factor
        if acks == "all":
            return self.params.acks_all_factor
        raise ValueError(f"acks must be 0, 1 or 'all', got {acks!r}")

    # ------------------------------------------------------------------ #
    # Produce capacity
    # ------------------------------------------------------------------ #
    def produce_capacity(
        self,
        *,
        event_size_bytes: int,
        acks: object = 0,
        replication_factor: int = 2,
        partitions: int = 2,
        location: "str | ClientLocation" = ClientLocation.LOCAL,
    ) -> float:
        """Peak aggregate produce throughput in events/second."""
        if event_size_bytes <= 0:
            raise ValueError("event_size_bytes must be > 0")
        if replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        params = self.params
        location = ClientLocation.parse(location)
        record_bound = params.write_record_limit
        byte_bound = params.write_byte_limit / float(event_size_bytes)
        base = min(record_bound, byte_bound)
        broker_factor = (self.spec.num_brokers / 2.0) ** params.write_broker_exponent
        vcpu_exponent = (
            params.write_vcpu_exponent_local
            if location is ClientLocation.LOCAL
            else params.write_vcpu_exponent_remote
        )
        vcpu_factor = (self.spec.vcpus_per_broker / 2.0) ** vcpu_exponent
        rf_factor = (2.0 / replication_factor) ** params.replication_exponent
        location_factor = 1.0 if location is ClientLocation.LOCAL else params.remote_write_factor
        return (
            base
            * broker_factor
            * vcpu_factor
            * rf_factor
            * self._partition_factor(partitions)
            * self._acks_factor(acks)
            * location_factor
        )

    def produce_is_record_bound(self, event_size_bytes: int) -> bool:
        """Whether the produce path is limited by record rate (tiny events)."""
        return self.params.write_record_limit < self.params.write_byte_limit / float(
            event_size_bytes
        )

    # ------------------------------------------------------------------ #
    # Consume capacity
    # ------------------------------------------------------------------ #
    def consume_capacity(
        self,
        *,
        event_size_bytes: int,
        partitions: int = 2,
        location: "str | ClientLocation" = ClientLocation.LOCAL,
    ) -> float:
        """Peak aggregate consume throughput in events/second.

        Reads are served from leaders without replication amplification, so
        neither ``acks`` nor the replication factor appears here.
        """
        if event_size_bytes <= 0:
            raise ValueError("event_size_bytes must be > 0")
        params = self.params
        location = ClientLocation.parse(location)
        base = min(
            params.read_record_limit, params.read_byte_limit / float(event_size_bytes)
        )
        broker_factor = (self.spec.num_brokers / 2.0) ** params.read_broker_exponent
        vcpu_factor = (self.spec.vcpus_per_broker / 2.0) ** params.read_vcpu_exponent
        location_factor = 1.0 if location is ClientLocation.LOCAL else params.remote_read_factor
        return (
            base
            * broker_factor
            * vcpu_factor
            * self._partition_factor(partitions)
            * location_factor
        )

    # ------------------------------------------------------------------ #
    # Cost model (Section VII-C)
    # ------------------------------------------------------------------ #
    def monthly_broker_cost_usd(self) -> float:
        """Cloud cost of just the broker instances for a month (730 h)."""
        return self.spec.num_brokers * self.spec.instance.hourly_cost_usd * 730.0
