"""Synthetic workload generators for the Table I use cases.

Table I characterises the five use cases by events/hour per managed
resource, mean event size, and the number of topics, producers and
consumers.  The generators here produce event streams with those
characteristics — both as plain dictionaries (for the functional fabric)
and as arrival processes on the DES kernel (for time-based studies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

from repro.simulation.kernel import SimulationKernel


@dataclass(frozen=True)
class UseCaseProfile:
    """Event characteristics of one Table I use case."""

    name: str
    events_per_hour_per_resource: float
    mean_event_size_bytes: int
    topics_per_deployment: str   # "1" or "R" (one per resource)
    producers: str               # "R" (one per resource)
    consumers: str               # "1", "R" or "Trigger"

    def events_per_second(self, num_resources: int) -> float:
        return self.events_per_hour_per_resource * num_resources / 3600.0


#: Table I, verbatim (orders of magnitude for the event rates).
USE_CASE_PROFILES: Dict[str, UseCaseProfile] = {
    "sdl": UseCaseProfile("sdl", 1e2, 512, "1", "R", "1"),
    "data_automation": UseCaseProfile("data_automation", 1e3, 4096, "1", "R", "Trigger"),
    "scheduling": UseCaseProfile("scheduling", 1e4, 1024, "R", "R", "1"),
    "epidemic": UseCaseProfile("epidemic", 1e1, 1024, "R", "R", "Trigger"),
    "workflow": UseCaseProfile("workflow", 1e3, 1024, "R", "R", "R"),
}


class SyntheticEventGenerator:
    """Generates event payloads of a target serialized size."""

    def __init__(self, mean_size_bytes: int, *, seed: int = 11) -> None:
        if mean_size_bytes < 16:
            raise ValueError("mean_size_bytes must be >= 16")
        self.mean_size_bytes = mean_size_bytes
        self._rng = np.random.default_rng(seed)
        self._counter = 0

    def next_event(self, **extra: Any) -> Dict[str, Any]:
        """One synthetic event with metadata plus size padding."""
        self._counter += 1
        base = {
            "sequence": self._counter,
            "timestamp": float(self._counter),
            **extra,
        }
        # Pad the payload so its serialized size approximates the target.
        overhead = 96 + sum(len(str(k)) + len(str(v)) for k, v in base.items())
        padding = max(0, int(self.mean_size_bytes) - overhead)
        base["payload"] = "x" * padding
        return base

    def batch(self, count: int, **extra: Any) -> List[Dict[str, Any]]:
        return [self.next_event(**extra) for _ in range(count)]


class PoissonArrivalProcess:
    """Poisson event arrivals on the DES kernel.

    Each arrival invokes ``callback(time, event)``; used by the application
    models to drive realistic (bursty) event streams.
    """

    def __init__(
        self,
        kernel: SimulationKernel,
        rate_per_second: float,
        callback,
        *,
        generator: Optional[SyntheticEventGenerator] = None,
        duration_seconds: float = 3600.0,
        seed: int = 23,
    ) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate_per_second must be > 0")
        self.kernel = kernel
        self.rate = rate_per_second
        self.callback = callback
        self.generator = generator or SyntheticEventGenerator(256)
        self.duration = duration_seconds
        self._rng = np.random.default_rng(seed)
        self.arrivals = 0
        kernel.spawn(self._run(), name=f"poisson-{rate_per_second:.3f}")

    def _run(self):
        while self.kernel.now < self.duration:
            gap = float(self._rng.exponential(1.0 / self.rate))
            yield gap
            if self.kernel.now >= self.duration:
                break
            self.arrivals += 1
            self.callback(self.kernel.now, self.generator.next_event())


def use_case_workload(
    name: str, *, num_resources: int, duration_seconds: float = 3600.0, seed: int = 5
) -> Iterator[Dict[str, Any]]:
    """Yield the events one Table I use case produces over a time window.

    Events carry a ``time`` key (seconds since the window start) and a
    ``resource`` key identifying the producing resource.
    """
    profile = USE_CASE_PROFILES[name]
    rng = np.random.default_rng(seed)
    generator = SyntheticEventGenerator(profile.mean_event_size_bytes, seed=seed)
    per_resource_rate = profile.events_per_hour_per_resource / 3600.0
    for resource in range(num_resources):
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / per_resource_rate))
            if t >= duration_seconds:
                break
            yield generator.next_event(
                time=round(t, 3), resource=f"{name}-resource-{resource}", use_case=name
            )
