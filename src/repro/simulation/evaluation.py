"""Experiment drivers that regenerate the paper's evaluation artefacts.

* :data:`TABLE3_EXPERIMENTS` — the nine configurations of Table III.
* :func:`run_table3_experiment` — one Table III row (local + remote
  producer/consumer throughput, median and p99 latency).
* :func:`run_figure3_series` — latency vs. throughput for configurations
  1–6 on the baseline cluster with remote producers, sweeping 20–100
  producers (Figure 3).
* :func:`run_figure5_multitenancy` — producer/consumer throughput vs.
  number of topics on the scale-out cluster (Figure 5).
* :func:`run_trigger_throughput` — trigger consumer throughput vs. event
  size and partition count (the in-text numbers of Section V-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.simulation.client_model import (
    LatencyModel,
    ProduceWorkload,
    ThroughputModel,
)
from repro.simulation.cluster_model import (
    CLUSTER_CONFIGS,
    ClusterCapacityModel,
    ClusterSpec,
)
from repro.simulation.network import ClientLocation


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment of Table III."""

    index: int
    cluster: str
    replication_factor: int
    partitions: int
    acks: object
    event_size_bytes: int

    @property
    def cluster_spec(self) -> ClusterSpec:
        return CLUSTER_CONFIGS[self.cluster]

    def label(self) -> str:
        size = (
            f"{self.event_size_bytes} B"
            if self.event_size_bytes < 1024
            else f"{self.event_size_bytes // 1024} KB"
        )
        return f"#{self.index} {self.cluster} rf={self.replication_factor} " \
               f"p={self.partitions} acks={self.acks} {size}"


#: Table III, experiments #1–#9.
TABLE3_EXPERIMENTS: List[ExperimentConfig] = [
    ExperimentConfig(1, "baseline", 2, 2, 0, 32),
    ExperimentConfig(2, "baseline", 2, 2, 0, 1024),
    ExperimentConfig(3, "baseline", 2, 2, 1, 1024),
    ExperimentConfig(4, "baseline", 2, 2, "all", 1024),
    ExperimentConfig(5, "baseline", 2, 2, 0, 4096),
    ExperimentConfig(6, "baseline", 2, 4, 0, 1024),
    ExperimentConfig(7, "scale-up", 2, 4, 0, 1024),
    ExperimentConfig(8, "scale-out", 2, 4, 0, 1024),
    ExperimentConfig(9, "scale-out", 4, 4, 0, 1024),
]

#: Producer counts swept for each experiment (Section V-C, Figure 3).
PRODUCER_SWEEP: Sequence[int] = (20, 40, 60, 80, 100)


@dataclass(frozen=True)
class ClientSideResult:
    """Producer/consumer results for one client location."""

    producer_throughput: float
    median_latency_ms: float
    p99_latency_ms: float
    consumer_throughput: float


@dataclass(frozen=True)
class Table3Row:
    """One row of Table III (local and remote client results)."""

    config: ExperimentConfig
    local: ClientSideResult
    remote: ClientSideResult

    def as_dict(self) -> dict:
        return {
            "exp": self.config.index,
            "cluster": self.config.cluster,
            "rep_factor": self.config.replication_factor,
            "partitions": self.config.partitions,
            "acks": self.config.acks,
            "event_size": self.config.event_size_bytes,
            "local_prod_thru": self.local.producer_throughput,
            "local_med_lat_ms": self.local.median_latency_ms,
            "local_p99_lat_ms": self.local.p99_latency_ms,
            "local_cons_thru": self.local.consumer_throughput,
            "remote_prod_thru": self.remote.producer_throughput,
            "remote_med_lat_ms": self.remote.median_latency_ms,
            "remote_p99_lat_ms": self.remote.p99_latency_ms,
            "remote_cons_thru": self.remote.consumer_throughput,
        }


def _client_result(
    config: ExperimentConfig,
    location: ClientLocation,
    *,
    num_producers: int = 100,
) -> ClientSideResult:
    capacity_model = ClusterCapacityModel(config.cluster_spec)
    throughput_model = ThroughputModel(capacity_model)
    latency_model = LatencyModel(config.cluster_spec)
    workload = ProduceWorkload(
        event_size_bytes=config.event_size_bytes,
        acks=config.acks,
        replication_factor=config.replication_factor,
        partitions=config.partitions,
        num_producers=num_producers,
        location=location,
    )
    throughput = throughput_model.achieved_throughput(workload)
    utilization = throughput_model.utilization(workload)
    record_bound = capacity_model.produce_is_record_bound(config.event_size_bytes)
    stats = latency_model.latency_stats(workload, utilization, record_bound=record_bound)
    consumer = throughput_model.consume_throughput(
        event_size_bytes=config.event_size_bytes,
        partitions=config.partitions,
        location=location,
    )
    return ClientSideResult(
        producer_throughput=throughput,
        median_latency_ms=stats.median_ms,
        p99_latency_ms=stats.p99_ms,
        consumer_throughput=consumer,
    )


def run_table3_experiment(config: ExperimentConfig, *, num_producers: int = 100) -> Table3Row:
    """Run one Table III experiment (peak producer count by default)."""
    return Table3Row(
        config=config,
        local=_client_result(config, ClientLocation.LOCAL, num_producers=num_producers),
        remote=_client_result(config, ClientLocation.REMOTE, num_producers=num_producers),
    )


def run_full_table3(*, num_producers: int = 100) -> List[Table3Row]:
    return [run_table3_experiment(config, num_producers=num_producers)
            for config in TABLE3_EXPERIMENTS]


# --------------------------------------------------------------------------- #
# Figure 3: latency vs. throughput, configurations 1-6, remote producers
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Figure3Point:
    """One point of one Figure 3 curve."""

    experiment: int
    num_producers: int
    throughput: float
    median_latency_ms: float
    p99_latency_ms: float


def run_figure3_series(
    *,
    experiments: Optional[Sequence[ExperimentConfig]] = None,
    producer_counts: Sequence[int] = PRODUCER_SWEEP,
    location: ClientLocation = ClientLocation.REMOTE,
) -> Dict[int, List[Figure3Point]]:
    """Latency-vs-throughput curves for configurations 1-6 (baseline cluster)."""
    if experiments is None:
        experiments = [c for c in TABLE3_EXPERIMENTS if c.cluster == "baseline"]
    series: Dict[int, List[Figure3Point]] = {}
    for config in experiments:
        capacity_model = ClusterCapacityModel(config.cluster_spec)
        throughput_model = ThroughputModel(capacity_model)
        latency_model = LatencyModel(config.cluster_spec)
        record_bound = capacity_model.produce_is_record_bound(config.event_size_bytes)
        points = []
        for count in producer_counts:
            workload = ProduceWorkload(
                event_size_bytes=config.event_size_bytes,
                acks=config.acks,
                replication_factor=config.replication_factor,
                partitions=config.partitions,
                num_producers=count,
                location=location,
            )
            throughput = throughput_model.achieved_throughput(workload)
            utilization = throughput_model.utilization(workload)
            stats = latency_model.latency_stats(
                workload, utilization, record_bound=record_bound
            )
            points.append(
                Figure3Point(
                    experiment=config.index,
                    num_producers=count,
                    throughput=throughput,
                    median_latency_ms=stats.median_ms,
                    p99_latency_ms=stats.p99_ms,
                )
            )
        series[config.index] = points
    return series


# --------------------------------------------------------------------------- #
# Figure 5: multi-tenancy (throughput vs. number of topics)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Figure5Point:
    num_topics: int
    producer_throughput: float
    consumer_throughput: float


def run_figure5_multitenancy(
    *,
    topic_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
    event_size_bytes: int = 1024,
    clients_per_side: int = 32,
    cluster: str = "scale-out",
) -> List[Figure5Point]:
    """Throughput vs. topic count with one partition per topic (Figure 5).

    With a single partition per topic, only ``min(T, brokers)`` brokers can
    lead writes, so producer throughput grows until four topics and then
    flattens at the cluster's write capacity.  Consumer throughput keeps
    rising until around 16 topics because reads are cheaper and the 32
    consumers are not yet limited by the brokers.
    """
    spec = CLUSTER_CONFIGS[cluster]
    capacity_model = ClusterCapacityModel(spec)
    write_capacity = capacity_model.produce_capacity(
        event_size_bytes=event_size_bytes,
        acks=0,
        replication_factor=2,
        partitions=spec.num_brokers,  # one leader partition per broker at best
    ) * 0.86  # single-partition topics carry per-topic overhead
    read_capacity = capacity_model.consume_capacity(
        event_size_bytes=event_size_bytes, partitions=spec.num_brokers
    ) * 1.07
    points: List[Figure5Point] = []
    read_saturation_topics = 16
    for num_topics in topic_counts:
        # Writes: limited by how many brokers lead a partition.
        leader_spread = min(num_topics, spec.num_brokers) / spec.num_brokers
        producer = write_capacity * leader_spread
        # A single topic cannot absorb the full per-broker share.
        if num_topics == 1:
            producer *= 0.95
        # Reads: each single-partition topic is drained by one consumer at a
        # time, so throughput rises with the number of topics until the
        # cluster's read capacity is reached (~16 topics).
        consumer = read_capacity * min(num_topics, read_saturation_topics) / read_saturation_topics
        points.append(
            Figure5Point(
                num_topics=num_topics,
                producer_throughput=producer,
                consumer_throughput=min(consumer, read_capacity),
            )
        )
    return points


# --------------------------------------------------------------------------- #
# Section V-D: trigger consumer throughput
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TriggerThroughputPoint:
    event_size_bytes: int
    partitions: int
    events_per_second: float


#: Per-partition trigger consumption limits (Lambda pollers are far slower
#: than raw consumers because every batch crosses the invocation boundary).
_TRIGGER_RECORD_LIMIT_PER_PARTITION = 22_000.0
_TRIGGER_BYTE_LIMIT_PER_PARTITION = 8.2e6
_TRIGGER_PARTITION_EXPONENT = 0.862


def run_trigger_throughput(
    *,
    event_sizes: Sequence[int] = (32, 1024, 4096),
    partition_counts: Sequence[int] = (1, 8),
) -> List[TriggerThroughputPoint]:
    """Trigger throughput vs. event size and partitions (Section V-D)."""
    points = []
    for partitions in partition_counts:
        scale = float(partitions) ** _TRIGGER_PARTITION_EXPONENT
        for size in event_sizes:
            per_partition = min(
                _TRIGGER_RECORD_LIMIT_PER_PARTITION,
                _TRIGGER_BYTE_LIMIT_PER_PARTITION / float(size),
            )
            points.append(
                TriggerThroughputPoint(
                    event_size_bytes=size,
                    partitions=partitions,
                    events_per_second=per_partition * scale,
                )
            )
    return points
