"""Throughput and latency aggregation.

The paper's data-collection process (Section V-B) computes throughput as
``T = N / (t2 - t1)`` where ``t1``/``t2`` are the earliest and latest
timestamps across all agents, and reports the producer's median and 99th
percentile latencies as the mean of per-round values.  The helpers here
implement exactly that aggregation so the benchmarking operator and the
simulation share one definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np


@dataclass(frozen=True)
class LatencyStats:
    """Median / p99 / mean latency in milliseconds."""

    median_ms: float
    p99_ms: float
    mean_ms: float
    count: int

    @classmethod
    def from_samples(cls, samples_ms: Sequence[float]) -> "LatencyStats":
        array = np.asarray(samples_ms, dtype=float)
        if array.size == 0:
            return cls(0.0, 0.0, 0.0, 0)
        return cls(
            median_ms=float(np.percentile(array, 50)),
            p99_ms=float(np.percentile(array, 99)),
            mean_ms=float(array.mean()),
            count=int(array.size),
        )

    @classmethod
    def mean_of_rounds(cls, rounds: Iterable["LatencyStats"]) -> "LatencyStats":
        """Mean of per-round medians/p99s, as the paper reports."""
        rounds = [r for r in rounds if r.count > 0]
        if not rounds:
            return cls(0.0, 0.0, 0.0, 0)
        return cls(
            median_ms=float(np.mean([r.median_ms for r in rounds])),
            p99_ms=float(np.mean([r.p99_ms for r in rounds])),
            mean_ms=float(np.mean([r.mean_ms for r in rounds])),
            count=sum(r.count for r in rounds),
        )


@dataclass(frozen=True)
class ThroughputMeasurement:
    """Events/second over an interval, computed as N / (t2 - t1)."""

    events: int
    start_time: float
    end_time: float

    @property
    def elapsed_seconds(self) -> float:
        return max(self.end_time - self.start_time, 1e-12)

    @property
    def events_per_second(self) -> float:
        return self.events / self.elapsed_seconds

    @classmethod
    def from_agent_windows(
        cls, events: int, windows: Sequence[tuple[float, float]]
    ) -> "ThroughputMeasurement":
        """Aggregate over many agents: earliest start to latest end."""
        if not windows:
            return cls(events=events, start_time=0.0, end_time=1.0)
        starts, ends = zip(*windows)
        return cls(events=events, start_time=min(starts), end_time=max(ends))


class LatencyRecorder:
    """Accumulates latency samples cheaply (list append, numpy at the end)."""

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, latency_ms: float) -> None:
        self._samples.append(latency_ms)

    def extend(self, latencies_ms: Iterable[float]) -> None:
        self._samples.extend(latencies_ms)

    def stats(self) -> LatencyStats:
        return LatencyStats.from_samples(self._samples)

    def __len__(self) -> int:
        return len(self._samples)


def format_events_per_second(value: float) -> str:
    """Human formatting matching the paper's tables (e.g. ``4,289 K``)."""
    if value >= 1e6:
        return f"{value / 1e3:,.0f} K"
    if value >= 1e3:
        return f"{value / 1e3:,.0f} K"
    return f"{value:,.0f}"
