"""Network model: local and remote client connectivity.

The paper's clients are either *local* (EC2 instances in the same region
as the MSK cluster) or *remote* (bare-metal Chameleon Cloud nodes at TACC
with a measured 46–47 ms median RTT and <0.1 % deviation).  The network
model exposes those RTTs plus simple bandwidth accounting used by the
client model.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

import numpy as np


class ClientLocation(str, Enum):
    """Where producers/consumers run relative to the cloud fabric."""

    LOCAL = "local"    # EC2 c5.24xlarge in us-east-1 (same region as MSK)
    REMOTE = "remote"  # Chameleon Cloud bare metal at TACC

    @classmethod
    def parse(cls, value: "str | ClientLocation") -> "ClientLocation":
        if isinstance(value, ClientLocation):
            return value
        return cls(value.lower())


@dataclass(frozen=True)
class LinkSpec:
    """Characteristics of one client→fabric network path."""

    median_rtt_ms: float
    rtt_jitter_fraction: float
    bandwidth_gbps: float


#: Calibrated from Section V-A: local clients are in-region (sub-ms RTT),
#: remote clients see 46–47 ms with <0.1% deviation.
DEFAULT_LINKS = {
    ClientLocation.LOCAL: LinkSpec(median_rtt_ms=1.2, rtt_jitter_fraction=0.05, bandwidth_gbps=25.0),
    ClientLocation.REMOTE: LinkSpec(median_rtt_ms=46.5, rtt_jitter_fraction=0.001, bandwidth_gbps=10.0),
}


class NetworkModel:
    """RTT and transfer-time estimates for local and remote clients."""

    def __init__(self, links: Optional[dict] = None, *, seed: int = 7) -> None:
        self.links = dict(DEFAULT_LINKS)
        if links:
            self.links.update(links)
        self._rng = np.random.default_rng(seed)

    def link(self, location: "str | ClientLocation") -> LinkSpec:
        return self.links[ClientLocation.parse(location)]

    def rtt_ms(self, location: "str | ClientLocation") -> float:
        """Median round-trip time in milliseconds."""
        return self.link(location).median_rtt_ms

    def sample_rtt_ms(self, location: "str | ClientLocation", size: int = 1) -> np.ndarray:
        """Sample RTTs with the link's jitter (normal around the median)."""
        spec = self.link(location)
        scale = spec.median_rtt_ms * max(spec.rtt_jitter_fraction, 1e-6)
        samples = self._rng.normal(spec.median_rtt_ms, scale, size=size)
        return np.clip(samples, 0.1, None)

    def transfer_time_ms(self, location: "str | ClientLocation", payload_bytes: float) -> float:
        """Serialisation time of a payload on the link (excluding RTT)."""
        spec = self.link(location)
        bits = payload_bytes * 8.0
        return bits / (spec.bandwidth_gbps * 1e9) * 1e3

    def one_way_ms(self, location: "str | ClientLocation", payload_bytes: float = 0.0) -> float:
        """Half an RTT plus serialisation: producer publish path."""
        return self.rtt_ms(location) / 2.0 + self.transfer_time_ms(location, payload_bytes)
