"""A small discrete-event simulation kernel.

Generator-based processes schedule themselves on a global event queue,
``yield``-ing either a delay (seconds of simulated time) or a request to
acquire a :class:`Resource` slot.  The kernel is deliberately minimal —
just what the workload generators, application models and scaling
simulations need — but it maintains the usual DES invariants: simulated
time never goes backwards and events at equal timestamps run in FIFO
order of scheduling.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional, Tuple

#: A process is a generator that yields delays (float seconds) or commands.
ProcessGenerator = Generator[Any, Any, None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)


class Timeout:
    """Yield value: suspend the process for ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError("delay must be >= 0")
        self.delay = float(delay)


class Acquire:
    """Yield value: wait until a slot of ``resource`` becomes available."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        self.resource = resource


class Release:
    """Yield value: release a previously acquired slot of ``resource``."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        self.resource = resource


class Resource:
    """A counted resource (CPU slots, broker handler threads, workers)."""

    def __init__(self, kernel: "SimulationKernel", capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.kernel = kernel
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: List[Process] = []
        # Utilisation accounting.
        self._busy_time = 0.0
        self._last_change = 0.0

    @property
    def in_use(self) -> int:
        return self._in_use

    def _account(self) -> None:
        now = self.kernel.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Average fraction of capacity in use since simulation start."""
        self._account()
        elapsed = horizon if horizon is not None else self.kernel.now
        if elapsed <= 0:
            return 0.0
        return self._busy_time / (self.capacity * elapsed)

    # Internal: called by the kernel.
    def _try_acquire(self, process: "Process") -> bool:
        self._account()
        if self._in_use < self.capacity:
            self._in_use += 1
            return True
        self._waiters.append(process)
        return False

    def _release(self) -> None:
        self._account()
        if self._in_use <= 0:
            raise RuntimeError(f"resource {self.name!r} released more than acquired")
        self._in_use -= 1
        if self._waiters:
            waiter = self._waiters.pop(0)
            self._in_use += 1
            self.kernel.schedule(0.0, lambda: waiter._step(None))


class Process:
    """A running simulation process wrapping a generator."""

    def __init__(self, kernel: "SimulationKernel", generator: ProcessGenerator, name: str) -> None:
        self.kernel = kernel
        self.generator = generator
        self.name = name
        self.finished = False
        self.result: Any = None

    def _step(self, value: Any) -> None:
        if self.finished:
            return
        try:
            command = self.generator.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = getattr(stop, "value", None)
            self.kernel._process_finished(self)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, (int, float)):
            command = Timeout(float(command))
        if isinstance(command, Timeout):
            self.kernel.schedule(command.delay, lambda: self._step(None))
        elif isinstance(command, Acquire):
            if command.resource._try_acquire(self):
                self.kernel.schedule(0.0, lambda: self._step(None))
            # Otherwise the resource will resume us on release.
        elif isinstance(command, Release):
            command.resource._release()
            self.kernel.schedule(0.0, lambda: self._step(None))
        else:
            raise TypeError(f"process {self.name!r} yielded unsupported command {command!r}")


class SimulationKernel:
    """Event queue, clock and process management."""

    def __init__(self) -> None:
        self._queue: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processes: List[Process] = []
        self._finished: List[Process] = []
        self.trace: List[Tuple[float, str]] = []

    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError("cannot schedule events in the past")
        heapq.heappush(
            self._queue, _ScheduledEvent(self._now + delay, next(self._sequence), action)
        )

    def spawn(self, generator: ProcessGenerator, name: str = "process") -> Process:
        """Register a new process; it starts at the current simulation time."""
        process = Process(self, generator, name)
        self._processes.append(process)
        self.schedule(0.0, lambda: process._step(None))
        return process

    def resource(self, capacity: int, name: str = "resource") -> Resource:
        return Resource(self, capacity, name)

    def timeout(self, delay: float) -> Timeout:
        return Timeout(delay)

    def acquire(self, resource: Resource) -> Acquire:
        return Acquire(resource)

    def release(self, resource: Resource) -> Release:
        return Release(resource)

    # ------------------------------------------------------------------ #
    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run until the queue is empty (or simulated time exceeds ``until``)."""
        events = 0
        while self._queue:
            if events >= max_events:
                raise RuntimeError("simulation exceeded max_events; likely a runaway process")
            head = self._queue[0]
            if until is not None and head.time > until:
                self._now = until
                break
            event = heapq.heappop(self._queue)
            if event.time < self._now - 1e-12:
                raise AssertionError("event scheduled in the past")  # pragma: no cover
            self._now = event.time
            event.action()
            events += 1
        return self._now

    def _process_finished(self, process: Process) -> None:
        self._finished.append(process)

    @property
    def finished_processes(self) -> List[Process]:
        return list(self._finished)

    def all_finished(self) -> bool:
        return all(p.finished for p in self._processes)

    def log(self, message: str) -> None:
        self.trace.append((self._now, message))
