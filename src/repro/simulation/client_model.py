"""Producer/consumer client models: offered load, throughput and latency.

The evaluation (Section V-C) sweeps 20–100 producers per configuration and
reports the peak throughput plus the median and 99th-percentile produce
latency at that throughput.  The client model reproduces that behaviour:

* each producer offers load up to a per-client limit, so aggregate
  throughput rises with the number of producers until the cluster's
  capacity saturates (Figure 3's x-axis);
* median latency is the sum of a client/network base, the broker service
  time, a queueing term that grows with utilisation, and penalties for
  stronger acknowledgements and record-bound (tiny-event) workloads;
* the 99th percentile adds a tail penalty that grows with the number of
  partitions hosted per broker, matching the paper's observation that more
  partitions raise tail latency substantially.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.simulation.cluster_model import ClusterCapacityModel, ClusterSpec
from repro.simulation.metrics import LatencyStats
from repro.simulation.network import ClientLocation, NetworkModel


@dataclass(frozen=True)
class ProduceWorkload:
    """One produce-side experiment configuration (a row of Table III)."""

    event_size_bytes: int = 1024
    acks: object = 0
    replication_factor: int = 2
    partitions: int = 2
    num_producers: int = 100
    location: ClientLocation = ClientLocation.LOCAL

    def with_producers(self, num_producers: int) -> "ProduceWorkload":
        return ProduceWorkload(
            event_size_bytes=self.event_size_bytes,
            acks=self.acks,
            replication_factor=self.replication_factor,
            partitions=self.partitions,
            num_producers=num_producers,
            location=self.location,
        )


@dataclass(frozen=True)
class LatencyParameters:
    """Calibration constants of the latency model (milliseconds)."""

    local_client_base_ms: float = 6.0
    remote_rtt_fraction: float = 0.72
    remote_extra_queue_ms: float = 8.0
    broker_service_ms: float = 1.0
    queue_saturation_ms: float = 34.0
    record_bound_penalty_ms: float = 14.0
    acks1_penalty_local_ms: float = 9.0
    acks1_penalty_remote_ms: float = 16.0
    acks_all_penalty_local_ms: float = 100.0
    acks_all_penalty_remote_ms: float = 62.0
    replication_penalty_ms_per_extra_replica: float = 4.0
    p99_base_ms: float = 122.0
    p99_per_extra_partition_per_broker_ms: float = 140.0
    p99_utilisation_exponent: float = 2.0


class ThroughputModel:
    """Offered load vs. achieved throughput for a producer/consumer fleet."""

    #: A single benchmark producer process can push roughly this many MB/s
    #: of 1 KB events before it becomes CPU bound (calibrated so that ~80
    #: producers saturate the baseline cluster, as in the paper's sweeps).
    PER_PRODUCER_SHARE_AT_SATURATION = 80

    def __init__(self, capacity_model: ClusterCapacityModel) -> None:
        self.capacity = capacity_model

    def produce_capacity(self, workload: ProduceWorkload) -> float:
        return self.capacity.produce_capacity(
            event_size_bytes=workload.event_size_bytes,
            acks=workload.acks,
            replication_factor=workload.replication_factor,
            partitions=workload.partitions,
            location=workload.location,
        )

    def offered_rate(self, workload: ProduceWorkload) -> float:
        """Aggregate offered load of ``num_producers`` clients."""
        per_producer = self.produce_capacity(workload) / self.PER_PRODUCER_SHARE_AT_SATURATION
        return per_producer * workload.num_producers

    def achieved_throughput(self, workload: ProduceWorkload) -> float:
        """Events/s actually absorbed by the cluster."""
        return min(self.offered_rate(workload), self.produce_capacity(workload))

    def utilization(self, workload: ProduceWorkload) -> float:
        capacity = self.produce_capacity(workload)
        if capacity <= 0:
            return 0.0
        return min(1.0, self.offered_rate(workload) / capacity)

    def consume_throughput(
        self,
        *,
        event_size_bytes: int,
        partitions: int,
        location: ClientLocation,
        num_consumers: int = 100,
    ) -> float:
        """Peak consume throughput (consumers read pre-populated topics)."""
        capacity = self.capacity.consume_capacity(
            event_size_bytes=event_size_bytes, partitions=partitions, location=location
        )
        per_consumer = capacity / self.PER_PRODUCER_SHARE_AT_SATURATION
        return min(per_consumer * num_consumers, capacity)


class LatencyModel:
    """Median and p99 produce latency for a workload at a given utilisation."""

    def __init__(
        self,
        cluster: ClusterSpec,
        network: Optional[NetworkModel] = None,
        params: Optional[LatencyParameters] = None,
    ) -> None:
        self.cluster = cluster
        self.network = network or NetworkModel()
        self.params = params or LatencyParameters()

    # ------------------------------------------------------------------ #
    def median_latency_ms(
        self, workload: ProduceWorkload, utilization: float, *, record_bound: bool
    ) -> float:
        params = self.params
        utilization = float(np.clip(utilization, 0.0, 1.0))
        if workload.location is ClientLocation.LOCAL:
            base = params.local_client_base_ms
        else:
            base = params.remote_rtt_fraction * self.network.rtt_ms(workload.location)
        latency = base + params.broker_service_ms
        # Queueing grows steeply as the cluster approaches saturation, and
        # is relieved by spreading load over more partitions, more brokers
        # and bigger brokers.
        relief = math.sqrt(workload.partitions / 2.0)
        relief *= (self.cluster.num_brokers / 2.0)
        # Remote clients are RTT-bound, so bigger brokers relieve their
        # queueing far less than they relieve local clients (the scale-up
        # anomaly visible in Table III).
        vcpu_exponent = 1.0 if workload.location is ClientLocation.LOCAL else 0.3
        relief *= (self.cluster.vcpus_per_broker / 2.0) ** vcpu_exponent
        queue = params.queue_saturation_ms * (utilization ** 3) / max(relief, 1e-9)
        # Higher replication keeps brokers busier, queueing slightly more.
        queue *= (workload.replication_factor / 2.0) ** 0.5
        latency += queue
        if workload.location is ClientLocation.REMOTE:
            latency += params.remote_extra_queue_ms * utilization
        if record_bound:
            latency += params.record_bound_penalty_ms * utilization
        latency += self._acks_penalty(workload)
        latency += params.replication_penalty_ms_per_extra_replica * max(
            0, workload.replication_factor - 2
        )
        return latency

    def p99_latency_ms(
        self, workload: ProduceWorkload, utilization: float, *, median_ms: float
    ) -> float:
        params = self.params
        partitions_per_broker = workload.partitions / self.cluster.num_brokers
        tail = params.p99_base_ms + params.p99_per_extra_partition_per_broker_ms * max(
            0.0, partitions_per_broker - 1.0
        )
        tail *= float(np.clip(utilization, 0.05, 1.0)) ** params.p99_utilisation_exponent
        return median_ms + tail

    def latency_stats(
        self, workload: ProduceWorkload, utilization: float, *, record_bound: bool
    ) -> LatencyStats:
        median = self.median_latency_ms(workload, utilization, record_bound=record_bound)
        p99 = self.p99_latency_ms(workload, utilization, median_ms=median)
        mean = median + (p99 - median) * 0.25
        return LatencyStats(median_ms=median, p99_ms=p99, mean_ms=mean, count=0)

    # ------------------------------------------------------------------ #
    def _acks_penalty(self, workload: ProduceWorkload) -> float:
        params = self.params
        local = workload.location is ClientLocation.LOCAL
        if workload.acks in (0, "0"):
            return 0.0
        if workload.acks in (1, "1"):
            return params.acks1_penalty_local_ms if local else params.acks1_penalty_remote_ms
        if workload.acks == "all":
            return (
                params.acks_all_penalty_local_ms if local else params.acks_all_penalty_remote_ms
            )
        raise ValueError(f"unknown acks setting {workload.acks!r}")
