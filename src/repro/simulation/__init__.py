"""Performance simulation of the Octopus evaluation testbed.

The paper evaluates Octopus on AWS MSK clusters (Table II) with local
clients on EC2 and remote clients on Chameleon Cloud at TACC (46–47 ms
RTT).  That testbed is not available offline, so this package provides:

* :mod:`repro.simulation.kernel` — a small discrete-event simulation
  kernel (used by workload generators and application models).
* :mod:`repro.simulation.network` — the local/remote network model.
* :mod:`repro.simulation.cluster_model` — broker instance specs and the
  calibrated capacity laws of the fabric (write/read throughput as a
  function of event size, acknowledgements, replication, partitions and
  cluster shape).
* :mod:`repro.simulation.client_model` — producer/consumer client models
  and the latency model (median / 99th percentile).
* :mod:`repro.simulation.evaluation` — experiment drivers that regenerate
  Table III, Figure 3, Figure 5 and the Section V-D trigger-throughput
  numbers.
* :mod:`repro.simulation.workload` — synthetic workload generators for
  the Table I use cases.

The capacity laws are calibrated against the paper's published numbers,
so absolute values land close by construction; what the model genuinely
encodes (and the tests check) are the structural relationships — acks and
replication costs, read/write asymmetry, scale-up vs. scale-out, partition
effects and multi-tenant saturation points.
"""

from repro.simulation.kernel import SimulationKernel, Process, Resource
from repro.simulation.network import NetworkModel, ClientLocation
from repro.simulation.cluster_model import (
    BrokerInstanceType,
    ClusterSpec,
    ClusterCapacityModel,
    CLUSTER_CONFIGS,
)
from repro.simulation.client_model import (
    ProduceWorkload,
    LatencyModel,
    ThroughputModel,
)
from repro.simulation.evaluation import (
    Table3Row,
    run_table3_experiment,
    run_figure3_series,
    run_figure5_multitenancy,
    run_trigger_throughput,
    TABLE3_EXPERIMENTS,
)
from repro.simulation.metrics import LatencyStats, ThroughputMeasurement

__all__ = [
    "SimulationKernel",
    "Process",
    "Resource",
    "NetworkModel",
    "ClientLocation",
    "BrokerInstanceType",
    "ClusterSpec",
    "ClusterCapacityModel",
    "CLUSTER_CONFIGS",
    "ProduceWorkload",
    "LatencyModel",
    "ThroughputModel",
    "Table3Row",
    "run_table3_experiment",
    "run_figure3_series",
    "run_figure5_multitenancy",
    "run_trigger_throughput",
    "TABLE3_EXPERIMENTS",
    "LatencyStats",
    "ThroughputMeasurement",
]
