"""FSMonitor-like filesystem event source.

The scientific data automation application (Section VI-B) starts from
FSMon, a scalable monitor that collects events (create/modify/delete) from
a parallel filesystem and publishes them to a local Kafka topic.  Here the
monitor watches an in-memory filesystem model; applications and tests
drive it by creating/modifying files, and it emits structured events
compatible with the Listing 1 trigger pattern
(``{"value": {"event_type": ["created"]}}``).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

_event_ids = itertools.count(1)


@dataclass(frozen=True)
class FileSystemEvent:
    """One filesystem event, as FSMon would report it."""

    event_type: str          # "created" | "modified" | "deleted" | "closed"
    path: str
    size_bytes: int
    filesystem: str
    timestamp: float
    event_id: int = field(default_factory=lambda: next(_event_ids))

    def to_dict(self) -> dict:
        return {
            "event_type": self.event_type,
            "path": self.path,
            "size": self.size_bytes,
            "filesystem": self.filesystem,
            "timestamp": self.timestamp,
        }


class FileSystemMonitor:
    """Watches one (simulated) parallel filesystem and emits events."""

    def __init__(
        self,
        filesystem_name: str,
        *,
        sink: Optional[Callable[[FileSystemEvent], None]] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.filesystem_name = filesystem_name
        self._files: Dict[str, int] = {}
        self._sink = sink
        self._clock = clock
        self.events: List[FileSystemEvent] = []

    # ------------------------------------------------------------------ #
    def set_sink(self, sink: Callable[[FileSystemEvent], None]) -> None:
        """Attach the callback that receives every emitted event."""
        self._sink = sink

    def _emit(self, event_type: str, path: str, size: int) -> FileSystemEvent:
        event = FileSystemEvent(
            event_type=event_type,
            path=path,
            size_bytes=size,
            filesystem=self.filesystem_name,
            timestamp=self._clock(),
        )
        self.events.append(event)
        if self._sink is not None:
            self._sink(event)
        return event

    # ------------------------------------------------------------------ #
    # Filesystem operations (what instruments / analysis jobs do)
    # ------------------------------------------------------------------ #
    def create_file(self, path: str, size_bytes: int = 0) -> FileSystemEvent:
        if path in self._files:
            return self.modify_file(path, size_bytes)
        self._files[path] = size_bytes
        return self._emit("created", path, size_bytes)

    def modify_file(self, path: str, size_bytes: int) -> FileSystemEvent:
        if path not in self._files:
            return self.create_file(path, size_bytes)
        self._files[path] = size_bytes
        return self._emit("modified", path, size_bytes)

    def close_file(self, path: str) -> FileSystemEvent:
        size = self._files.get(path, 0)
        return self._emit("closed", path, size)

    def delete_file(self, path: str) -> FileSystemEvent:
        size = self._files.pop(path, 0)
        return self._emit("deleted", path, size)

    # ------------------------------------------------------------------ #
    def files(self) -> Dict[str, int]:
        return dict(self._files)

    def exists(self, path: str) -> bool:
        return path in self._files

    def event_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.event_type] = counts.get(event.event_type, 0) + 1
        return counts

    def simulate_experiment_output(
        self, directory: str, num_files: int, *, size_bytes: int = 1 << 20
    ) -> List[FileSystemEvent]:
        """Convenience: an instrument writing ``num_files`` into ``directory``."""
        events = []
        for index in range(num_files):
            path = f"{directory.rstrip('/')}/run_{index:05d}.h5"
            events.append(self.create_file(path, size_bytes))
            events.append(self.close_file(path))
        return events
