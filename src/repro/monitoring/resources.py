"""Resource monitors for the online task-scheduling application.

Each managed resource runs a Python monitor combining the Intel RAPL
energy counters and ``psutil`` utilization metrics, publishing samples to
Octopus so the FaaS scheduler can make energy-aware placement decisions
(Section VI-C).  Neither RAPL nor real hosts are available offline, so the
monitors synthesize realistic traces: power follows utilization plus an
idle floor, and utilization follows the load the caller reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np


@dataclass(frozen=True)
class ResourceSample:
    """One monitoring sample for one resource."""

    resource: str
    timestamp: float
    cpu_percent: float
    memory_percent: float
    power_watts: float
    energy_joules: float
    running_tasks: int

    def to_dict(self) -> dict:
        return {
            "resource": self.resource,
            "timestamp": self.timestamp,
            "cpu_percent": self.cpu_percent,
            "memory_percent": self.memory_percent,
            "power_watts": self.power_watts,
            "energy_joules": self.energy_joules,
            "running_tasks": self.running_tasks,
        }


class EnergyMonitor:
    """RAPL-like package energy counter driven by utilization."""

    def __init__(self, *, idle_watts: float = 45.0, peak_watts: float = 280.0) -> None:
        if peak_watts <= idle_watts:
            raise ValueError("peak_watts must exceed idle_watts")
        self.idle_watts = idle_watts
        self.peak_watts = peak_watts
        self._energy_joules = 0.0

    def power_at(self, cpu_fraction: float) -> float:
        cpu_fraction = float(np.clip(cpu_fraction, 0.0, 1.0))
        return self.idle_watts + (self.peak_watts - self.idle_watts) * cpu_fraction

    def accumulate(self, cpu_fraction: float, interval_seconds: float) -> float:
        """Add ``interval`` of consumption; returns cumulative joules."""
        self._energy_joules += self.power_at(cpu_fraction) * interval_seconds
        return self._energy_joules

    @property
    def energy_joules(self) -> float:
        return self._energy_joules


class ResourceUtilizationMonitor:
    """Per-resource monitor publishing samples to a sink (the SDK producer)."""

    def __init__(
        self,
        resource_name: str,
        *,
        num_cores: int = 96,
        sink: Optional[Callable[[dict], None]] = None,
        clock: Callable[[], float] = time.time,
        seed: int = 3,
    ) -> None:
        self.resource_name = resource_name
        self.num_cores = num_cores
        self.energy = EnergyMonitor()
        self._sink = sink
        self._clock = clock
        self._rng = np.random.default_rng(seed)
        self._running_tasks = 0
        self.samples: List[ResourceSample] = []

    # ------------------------------------------------------------------ #
    def task_started(self, count: int = 1) -> None:
        self._running_tasks += count

    def task_finished(self, count: int = 1) -> None:
        self._running_tasks = max(0, self._running_tasks - count)

    @property
    def running_tasks(self) -> int:
        return self._running_tasks

    def cpu_fraction(self) -> float:
        """Utilization implied by the running task count (with jitter)."""
        base = min(1.0, self._running_tasks / self.num_cores)
        noise = float(self._rng.normal(0.0, 0.02))
        return float(np.clip(base + noise, 0.0, 1.0))

    # ------------------------------------------------------------------ #
    def sample(self, *, interval_seconds: float = 1.0) -> ResourceSample:
        """Take one sample and publish it to the sink."""
        cpu = self.cpu_fraction()
        energy = self.energy.accumulate(cpu, interval_seconds)
        sample = ResourceSample(
            resource=self.resource_name,
            timestamp=self._clock(),
            cpu_percent=cpu * 100.0,
            memory_percent=float(np.clip(20.0 + 60.0 * cpu + self._rng.normal(0, 2), 0, 100)),
            power_watts=self.energy.power_at(cpu),
            energy_joules=energy,
            running_tasks=self._running_tasks,
        )
        self.samples.append(sample)
        if self._sink is not None:
            self._sink(sample.to_dict())
        return sample

    def sample_window(self, samples: int, *, interval_seconds: float = 1.0) -> List[ResourceSample]:
        return [self.sample(interval_seconds=interval_seconds) for _ in range(samples)]
