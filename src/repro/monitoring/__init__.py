"""Monitoring substrates used by the applications of Section VI.

* :mod:`repro.monitoring.fsmon` — an FSMonitor-like parallel-filesystem
  event source (file create/modify/delete events).
* :mod:`repro.monitoring.aggregator` — the hierarchical local aggregator
  that filters/deduplicates events before they reach the cloud fabric.
* :mod:`repro.monitoring.resources` — RAPL-like energy and psutil-like
  utilization monitors for the online task-scheduling application.
"""

from repro.monitoring.fsmon import FileSystemEvent, FileSystemMonitor
from repro.monitoring.aggregator import LocalAggregator
from repro.monitoring.resources import EnergyMonitor, ResourceUtilizationMonitor, ResourceSample

__all__ = [
    "FileSystemEvent",
    "FileSystemMonitor",
    "LocalAggregator",
    "EnergyMonitor",
    "ResourceUtilizationMonitor",
    "ResourceSample",
]
