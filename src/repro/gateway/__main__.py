"""``python -m repro.gateway`` — boot a demo cluster behind the gateway.

Stands up an in-process :class:`~repro.fabric.cluster.FabricCluster`,
mounts the HTTP front door on it and serves until interrupted.  This is
a demo/deving entry point, not a deployment story — the fabric itself
stays in-process.
"""

from __future__ import annotations

import argparse

from repro.fabric.cluster import FabricCluster
from repro.gateway.routers import Gateway
from repro.gateway.server import GatewayServer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway",
        description="Serve a demo fabric cluster over the HTTP gateway.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8642, help="0 binds an ephemeral port"
    )
    parser.add_argument("--brokers", type=int, default=3)
    parser.add_argument(
        "--name", default="gateway-demo", help="cluster name shown in /v1/cluster"
    )
    args = parser.parse_args(argv)

    cluster = FabricCluster(num_brokers=args.brokers, name=args.name)
    server = GatewayServer(Gateway(cluster), host=args.host, port=args.port)
    with server:
        print(f"repro gateway serving {args.name!r} at {server.url}")  # noqa: T201
        print("  try: curl " + server.url + "/v1/cluster")  # noqa: T201
        try:
            # serve_forever runs on the background thread; park here.
            server._thread.join()  # type: ignore[union-attr]
        except KeyboardInterrupt:  # lint: ignore[SWALLOWED-ERROR]
            pass  # clean Ctrl-C shutdown
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
