"""One error-mapping layer: fabric taxonomy -> stable HTTP error bodies.

Every failure the gateway can produce — schema validation, routing,
authorization, any :class:`~repro.fabric.errors.FabricError` raised by
the control or data plane — is rendered by :func:`error_body` into the
same machine-readable JSON shape::

    {"code": "UNKNOWN_TOPIC", "message": "...", "retriable": false,
     "details": {...}}           # details only when there is any

``code`` and ``retriable`` come straight from the fabric error classes
(:mod:`repro.fabric.errors` gives every class both attributes), so the
mapping below only has to supply the HTTP *status*.  The mapper is total:
an unlisted ``FabricError`` subclass falls back to its nearest listed
ancestor, and a non-fabric exception maps to 500 ``INTERNAL`` without
leaking its message.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple, Type

from repro.fabric import errors as fabric_errors


class GatewayError(Exception):
    """Base for errors raised by the gateway itself (not the fabric)."""

    status = 500
    code = "INTERNAL"
    retriable = False

    def __init__(self, message: str, *, details: Optional[Mapping[str, Any]] = None):
        super().__init__(message)
        self.details = dict(details) if details else None


class SchemaError(GatewayError):
    """Request body failed schema validation; ``details`` names the fields.

    ``details`` maps field name -> human-readable reason, so a client can
    highlight exactly which inputs to fix.
    """

    status = 400
    code = "SCHEMA_VIOLATION"

    def __init__(self, field_errors: Mapping[str, str]):
        fields = ", ".join(sorted(field_errors))
        super().__init__(
            f"request failed schema validation: {fields}",
            details={"fields": dict(field_errors)},
        )


class MalformedBodyError(GatewayError):
    """Request body is not parseable (bad JSON, bad wire image framing)."""

    status = 400
    code = "MALFORMED_BODY"


class UnsupportedMediaTypeError(GatewayError):
    """Content-Type the endpoint does not accept."""

    status = 415
    code = "UNSUPPORTED_MEDIA_TYPE"


class RouteNotFoundError(GatewayError):
    """No route matches the request path."""

    status = 404
    code = "UNKNOWN_ROUTE"


class MethodNotAllowedError(GatewayError):
    """The path exists but not under this HTTP method."""

    status = 405
    code = "METHOD_NOT_ALLOWED"


class ServiceUnavailableError(GatewayError):
    """A gateway dependency (the cluster) is not initialized yet.

    The 503-on-uninitialized-dependency contract: requests arriving
    before :meth:`repro.gateway.routers.Gateway.attach` wires a cluster
    are answered with a retriable 503, never a traceback.
    """

    status = 503
    code = "UNINITIALIZED"
    retriable = True


def _retry_after_header(seconds: float) -> Dict[str, str]:
    """``Retry-After`` wants whole seconds; round up, floor at 1."""
    return {"Retry-After": str(max(1, int(-(-seconds // 1))))}


class TooManyRequestsError(GatewayError):
    """Per-principal in-flight cap exceeded (graceful degradation).

    Carries a ``Retry-After`` header (whole seconds, rounded up) so
    well-behaved clients back off instead of hammering a saturated
    gateway; ``retriable`` is true because the condition is transient by
    construction — in-flight requests drain.
    """

    status = 429
    code = "TOO_MANY_REQUESTS"
    retriable = True

    def __init__(
        self,
        message: str,
        *,
        retry_after: float = 1.0,
        details: Optional[Mapping[str, Any]] = None,
    ):
        super().__init__(message, details=details)
        self.retry_after = retry_after
        self.headers = _retry_after_header(retry_after)


class DrainingError(GatewayError):
    """The gateway is shutting down and no longer admits new requests.

    Raised for every non-health route once
    :meth:`repro.gateway.routers.Gateway.begin_drain` runs; in-flight
    requests finish, parked long-polls wake and return what they have.
    A load balancer should retry against another instance — hence
    retriable plus ``Retry-After``.
    """

    status = 503
    code = "DRAINING"
    retriable = True

    def __init__(
        self,
        message: str,
        *,
        retry_after: float = 1.0,
        details: Optional[Mapping[str, Any]] = None,
    ):
        super().__init__(message, details=details)
        self.retry_after = retry_after
        self.headers = _retry_after_header(retry_after)


#: FabricError class -> HTTP status.  ``code``/``retriable`` ride on the
#: exception classes themselves; see module docstring for the fallback
#: rules that make the mapping total.
FABRIC_STATUS: Dict[Type[fabric_errors.FabricError], int] = {
    fabric_errors.UnknownTopicError: 404,
    fabric_errors.UnknownPartitionError: 404,
    fabric_errors.UnknownBrokerError: 404,
    fabric_errors.UnknownGroupError: 404,
    fabric_errors.TopicAlreadyExistsError: 409,
    fabric_errors.NotLeaderError: 503,
    fabric_errors.FencedLeaderError: 503,
    fabric_errors.NotEnoughReplicasError: 503,
    fabric_errors.BrokerUnavailableError: 503,
    fabric_errors.AuthorizationError: 403,
    fabric_errors.OffsetOutOfRangeError: 416,
    fabric_errors.RecordTooLargeError: 413,
    fabric_errors.CorruptBatchError: 422,
    fabric_errors.UnknownCodecError: 415,
    fabric_errors.InvalidConfigError: 400,
    fabric_errors.InvalidRequestError: 400,
    fabric_errors.RebalanceInProgressError: 409,
    fabric_errors.IllegalGenerationError: 409,
    fabric_errors.CommitFailedError: 409,
    fabric_errors.FabricError: 500,
}


def error_body(exc: BaseException) -> Tuple[int, Dict[str, Any]]:
    """Map any exception to ``(http_status, json_body)``.

    Resolution order: gateway errors carry their own status; fabric
    errors look up :data:`FABRIC_STATUS` along their MRO (so a subclass
    introduced later inherits its parent's status rather than crashing
    the mapper); everything else is an internal error whose message is
    deliberately not echoed to the client.
    """
    if isinstance(exc, GatewayError):
        body: Dict[str, Any] = {
            "code": exc.code,
            "message": str(exc),
            "retriable": exc.retriable,
        }
        if exc.details:
            body["details"] = exc.details
        return exc.status, body
    if isinstance(exc, fabric_errors.FabricError):
        status = 500
        for klass in type(exc).__mro__:
            if klass in FABRIC_STATUS:
                status = FABRIC_STATUS[klass]
                break
        return status, {
            "code": exc.code,
            "message": str(exc),
            "retriable": exc.retriable,
        }
    return 500, {
        "code": "INTERNAL",
        "message": "internal gateway error",
        "retriable": False,
    }


__all__ = [
    "GatewayError",
    "SchemaError",
    "MalformedBodyError",
    "UnsupportedMediaTypeError",
    "RouteNotFoundError",
    "MethodNotAllowedError",
    "ServiceUnavailableError",
    "TooManyRequestsError",
    "DrainingError",
    "FABRIC_STATUS",
    "error_body",
]
