"""The gateway application: control-plane and data-plane routers.

:class:`Gateway` is transport-agnostic — :meth:`Gateway.handle` takes
``(method, path, query, headers, body)`` and returns a
:class:`GatewayResponse`, so contract tests drive the full routing,
schema-validation, authorization and error-mapping stack in-process,
while :mod:`repro.gateway.server` mounts the same object behind a real
threaded HTTP socket.

Two routers share the one application:

* the **control plane** wraps :class:`~repro.fabric.admin.FabricAdmin` —
  every request builds a per-principal admin view, so the existing
  ``(principal, operation, resource)`` authorization hook guards each
  wire operation exactly as it guards in-process callers;
* the **data plane** serves batched produce (JSON or packed wire-format
  passthrough), long-poll fetch riding pooled
  :class:`~repro.fabric.cluster.FetchSession` objects, batched group
  offset commits via ``commit_group`` and the cooperative consumer-group
  protocol (join / heartbeat / sync / leave).

The principal is extracted from ``Authorization: Bearer <principal>``
(or ``X-Repro-Principal``); no header means the anonymous principal,
exactly like passing ``principal=None`` in-process.
"""

from __future__ import annotations

import base64
import contextlib
import json
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.common.retry import RetryPolicy
from repro.common.sync import create_lock
from repro.fabric.admin import AdminAuthorizer, FabricAdmin
from repro.fabric.cluster import FabricCluster, FetchRequest, FetchSession
from repro.fabric.errors import FabricError, UnknownGroupError
from repro.fabric.record import EventRecord, PackedRecordBatch, StoredRecord
from repro.gateway import models
from repro.gateway.errors import (
    DrainingError,
    MalformedBodyError,
    MethodNotAllowedError,
    RouteNotFoundError,
    SchemaError,
    ServiceUnavailableError,
    TooManyRequestsError,
    UnsupportedMediaTypeError,
    error_body,
)

#: Content type of the packed-batch wire image (PR 7 v1 format).  Bodies
#: of this type cross the gateway into storage without re-encoding.
BATCH_CONTENT_TYPE = "application/vnd.repro.batch.v1"

JSON_CONTENT_TYPE = "application/json"


@dataclass
class GatewayRequest:
    """Everything a handler needs, already parsed."""

    method: str
    path: str
    params: Dict[str, str]
    query: Mapping[str, str]
    headers: Mapping[str, str]
    body: bytes
    principal: Optional[str]

    def json(self) -> Any:
        """Parse the request body as JSON (400 MALFORMED_BODY on failure)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise MalformedBodyError(f"request body is not valid JSON: {exc}") from None

    def int_param(self, name: str) -> int:
        try:
            return int(self.params[name])
        except ValueError:
            raise SchemaError({name: "expected integer path segment"}) from None

    def int_query(self, name: str, default: Optional[int]) -> Optional[int]:
        raw = self.query.get(name)
        if raw is None or raw == "":
            return default
        try:
            return int(raw)
        except ValueError:
            raise SchemaError({name: "expected integer query parameter"}) from None


@dataclass
class GatewayResponse:
    """What a handler returns; the HTTP server serializes it."""

    status: int = 200
    payload: Any = None
    content_type: str = JSON_CONTENT_TYPE
    raw: Optional[bytes] = None
    #: Extra response headers (e.g. ``Retry-After`` on 429/503).
    headers: Dict[str, str] = field(default_factory=dict)

    def body_bytes(self) -> bytes:
        if self.raw is not None:
            return self.raw
        if self.payload is None:
            return b""
        return json.dumps(self.payload).encode("utf-8")


Handler = Callable[[GatewayRequest], GatewayResponse]


@dataclass(frozen=True)
class Route:
    method: str
    pattern: str
    handler: Handler
    segments: Tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "segments", tuple(s for s in self.pattern.split("/") if s)
        )

    def match(self, segments: Tuple[str, ...]) -> Optional[Dict[str, str]]:
        if len(segments) != len(self.segments):
            return None
        params: Dict[str, str] = {}
        for want, got in zip(self.segments, segments):
            if want.startswith("{") and want.endswith("}"):
                params[want[1:-1]] = got
            elif want != got:
                return None
        return params


def _record_payload(stored: StoredRecord) -> Dict[str, Any]:
    record = stored.record
    payload: Dict[str, Any] = {
        "offset": stored.offset,
        "value": record.value,
        "key": record.key,
        "headers": dict(record.headers),
        "timestamp": record.timestamp,
    }
    # Binary payloads (typical for wire-format produce) can't ride JSON
    # directly; they go out base64'd with an explicit encoding marker.
    for fname in ("value", "key"):
        raw = payload[fname]
        if isinstance(raw, (bytes, bytearray, memoryview)):
            payload[fname] = base64.b64encode(bytes(raw)).decode("ascii")
            payload[f"{fname}_encoding"] = "base64"
    return payload


class ControlPlaneRouter:
    """Wire front for :class:`FabricAdmin` — metadata, never records."""

    def __init__(self, gateway: "Gateway") -> None:
        self._gateway = gateway

    def routes(self) -> List[Route]:
        return [
            Route("GET", "/v1/cluster", self.describe_cluster),
            Route("GET", "/v1/topics", self.list_topics),
            Route("POST", "/v1/topics", self.create_topic),
            Route("GET", "/v1/topics/{topic}", self.describe_topic),
            Route("DELETE", "/v1/topics/{topic}", self.delete_topic),
            Route("PUT", "/v1/topics/{topic}/config", self.update_config),
            Route("POST", "/v1/topics/{topic}/partitions", self.grow_partitions),
            Route("GET", "/v1/topics/{topic}/segments", self.describe_segments),
            Route("POST", "/v1/brokers/{broker}/fail", self.fail_broker),
            Route("POST", "/v1/brokers/{broker}/restore", self.restore_broker),
            Route("POST", "/v1/retention", self.run_retention),
            Route("GET", "/v1/groups", self.list_groups),
            Route("GET", "/v1/groups/{group}", self.describe_group),
        ]

    def _admin(self, request: GatewayRequest) -> FabricAdmin:
        return self._gateway.admin_for(request.principal)

    # -- topics -------------------------------------------------------- #
    def create_topic(self, request: GatewayRequest) -> GatewayResponse:
        req = models.TopicCreateRequest.parse(request.json())
        from repro.fabric.topic import TopicConfig

        config = TopicConfig.from_dict(req.config) if req.config else None
        topic = self._admin(request).create_topic(req.name, config)
        return GatewayResponse(201, topic.describe())

    def list_topics(self, request: GatewayRequest) -> GatewayResponse:
        return GatewayResponse(200, {"topics": self._admin(request).list_topics()})

    def describe_topic(self, request: GatewayRequest) -> GatewayResponse:
        return GatewayResponse(
            200, self._admin(request).describe_topic(request.params["topic"])
        )

    def delete_topic(self, request: GatewayRequest) -> GatewayResponse:
        name = request.params["topic"]
        self._admin(request).delete_topic(name)
        return GatewayResponse(200, {"deleted": name})

    def update_config(self, request: GatewayRequest) -> GatewayResponse:
        req = models.TopicConfigUpdateRequest.parse(request.json())
        config = self._admin(request).update_topic_config(
            request.params["topic"], **req.updates
        )
        return GatewayResponse(200, {"config": config.to_dict()})

    def grow_partitions(self, request: GatewayRequest) -> GatewayResponse:
        req = models.PartitionGrowRequest.parse(request.json())
        config = self._admin(request).set_partitions(
            request.params["topic"], req.num_partitions
        )
        return GatewayResponse(200, {"config": config.to_dict()})

    def describe_segments(self, request: GatewayRequest) -> GatewayResponse:
        partition = request.int_query("partition", None)
        return GatewayResponse(
            200,
            self._admin(request).describe_segments(
                request.params["topic"], partition
            ),
        )

    # -- brokers ------------------------------------------------------- #
    def fail_broker(self, request: GatewayRequest) -> GatewayResponse:
        broker_id = request.int_param("broker")
        moved = self._admin(request).fail_broker(broker_id)
        return GatewayResponse(
            200,
            {"broker": broker_id, "reassigned": [a.describe() for a in moved]},
        )

    def restore_broker(self, request: GatewayRequest) -> GatewayResponse:
        broker_id = request.int_param("broker")
        self._admin(request).restore_broker(broker_id)
        return GatewayResponse(200, {"broker": broker_id, "online": True})

    # -- cluster ------------------------------------------------------- #
    def describe_cluster(self, request: GatewayRequest) -> GatewayResponse:
        return GatewayResponse(200, self._admin(request).describe_cluster())

    def run_retention(self, request: GatewayRequest) -> GatewayResponse:
        topic = request.query.get("topic")
        removed = self._admin(request).run_retention(topic)
        return GatewayResponse(200, {"removed": removed})

    # -- groups -------------------------------------------------------- #
    def list_groups(self, request: GatewayRequest) -> GatewayResponse:
        return GatewayResponse(200, {"groups": self._admin(request).list_groups()})

    def describe_group(self, request: GatewayRequest) -> GatewayResponse:
        admin = self._admin(request)
        group_id = request.params["group"]
        if group_id not in admin.list_groups():
            raise UnknownGroupError(f"consumer group {group_id!r} is not known")
        return GatewayResponse(200, admin.describe_group(group_id))


class DataPlaneRouter:
    """Wire front for the produce / fetch / commit / group hot paths."""

    def __init__(self, gateway: "Gateway") -> None:
        self._gateway = gateway

    def routes(self) -> List[Route]:
        return [
            Route(
                "POST",
                "/v1/topics/{topic}/partitions/{partition}/records",
                self.produce,
            ),
            Route(
                "GET",
                "/v1/topics/{topic}/partitions/{partition}/records",
                self.fetch,
            ),
            Route("GET", "/v1/topics/{topic}/offsets", self.topic_offsets),
            Route("POST", "/v1/fetch", self.batch_fetch),
            Route("POST", "/v1/groups/{group}/offsets", self.commit_offsets),
            Route("GET", "/v1/groups/{group}/offsets", self.committed_offsets),
            Route("POST", "/v1/groups/{group}/members", self.join_group),
            Route(
                "DELETE", "/v1/groups/{group}/members/{member}", self.leave_group
            ),
            Route(
                "POST",
                "/v1/groups/{group}/members/{member}/heartbeat",
                self.heartbeat,
            ),
            Route("POST", "/v1/groups/{group}/members/{member}/sync", self.sync),
        ]

    # -- produce ------------------------------------------------------- #
    def produce(self, request: GatewayRequest) -> GatewayResponse:
        cluster = self._gateway.cluster()
        topic = request.params["topic"]
        partition = request.int_param("partition")
        content_type = request.headers.get("content-type", JSON_CONTENT_TYPE)
        content_type = content_type.split(";", 1)[0].strip().lower()
        if content_type in (BATCH_CONTENT_TYPE, "application/octet-stream"):
            # Wire-format passthrough: the body is a sealed (possibly
            # compressed) packed-batch image.  from_bytes keeps a
            # zero-copy view over it and append ingress verifies the
            # CRC — the records are never decoded or re-encoded here.
            if not request.body:
                raise MalformedBodyError("empty packed-batch body")
            packed = PackedRecordBatch.from_bytes(request.body)
            acks = self._acks_from_query(request)
            metadata = cluster.append_batch(
                topic, partition, packed, acks=acks, principal=request.principal
            )
        elif content_type == JSON_CONTENT_TYPE:
            req = models.ProduceRequest.parse(request.json())
            now = cluster.clock.now()
            records = [
                EventRecord(
                    value=entry["value"],
                    key=entry.get("key"),
                    headers=entry.get("headers") or {},
                    timestamp=entry.get("timestamp", now),
                )
                for entry in req.records
            ]
            metadata = cluster.append_batch(
                topic, partition, records, acks=req.acks, principal=request.principal
            )
        else:
            raise UnsupportedMediaTypeError(
                f"produce accepts {JSON_CONTENT_TYPE} or {BATCH_CONTENT_TYPE}, "
                f"got {content_type!r}"
            )
        return GatewayResponse(
            201,
            {
                "topic": topic,
                "partition": partition,
                "count": len(metadata),
                "base_offset": metadata[0].offset if metadata else None,
                "last_offset": metadata[-1].offset if metadata else None,
            },
        )

    @staticmethod
    def _acks_from_query(request: GatewayRequest) -> object:
        raw = request.query.get("acks", "1")
        if raw in ("0", "1"):
            return int(raw)
        if raw == "all":
            return "all"
        raise SchemaError({"acks": "must be 0, 1 or 'all'"})

    # -- fetch --------------------------------------------------------- #
    @staticmethod
    def _isolation_from_query(request: GatewayRequest) -> str:
        isolation = request.query.get("isolation", "committed")
        if isolation not in ("committed", "uncommitted"):
            raise SchemaError({"isolation": "must be 'committed' or 'uncommitted'"})
        return isolation

    def fetch(self, request: GatewayRequest) -> GatewayResponse:
        cluster = self._gateway.cluster()
        topic = request.params["topic"]
        partition = request.int_param("partition")
        offset = request.int_query("offset", 0)
        max_records = request.int_query("max_records", 500)
        max_bytes = request.int_query("max_bytes", None)
        max_wait_ms = request.int_query("max_wait_ms", 0)
        min_bytes = request.int_query("min_bytes", 1)
        isolation = self._isolation_from_query(request)
        requests = [FetchRequest(topic, partition, offset)]

        def fetch_once(session: FetchSession):
            served = session.fetch(
                requests,
                max_records=max_records,
                max_bytes=max_bytes,
                isolation=isolation,
            )
            records = served.get((topic, partition), [])
            return records, sum(r.size_bytes() for r in records)

        with self._gateway.session(request.principal) as session:
            records = self._long_poll(
                cluster, lambda: fetch_once(session), max_wait_ms, min_bytes
            )
        payload = [_record_payload(r) for r in records]
        return GatewayResponse(
            200,
            {
                "topic": topic,
                "partition": partition,
                "records": payload,
                "next_offset": (
                    payload[-1]["offset"] + 1 if payload else offset
                ),
                "high_watermark": cluster.high_watermark(topic, partition),
                "log_end_offset": cluster.end_offset(topic, partition),
            },
        )

    def batch_fetch(self, request: GatewayRequest) -> GatewayResponse:
        cluster = self._gateway.cluster()
        req = models.BatchFetchRequest.parse(request.json())
        requests = [
            FetchRequest(e.topic, e.partition, e.offset, e.max_records)
            for e in req.entries
        ]

        def fetch_once(session: FetchSession):
            served = session.fetch(
                requests,
                max_records=req.max_records,
                max_bytes=req.max_bytes,
                isolation=req.isolation,
            )
            nbytes = sum(
                r.size_bytes() for records in served.values() for r in records
            )
            return served, nbytes

        with self._gateway.session(request.principal) as session:
            served = self._long_poll(
                cluster, lambda: fetch_once(session), req.max_wait_ms, req.min_bytes
            )
        partitions = [
            {
                "topic": topic,
                "partition": partition,
                "records": [_record_payload(r) for r in records],
            }
            for (topic, partition), records in served.items()
        ]
        return GatewayResponse(200, {"partitions": partitions})

    def _long_poll(
        self,
        cluster: FabricCluster,
        fetch_once: Callable[[], Tuple[Any, int]],
        max_wait_ms: int,
        min_bytes: int,
    ):
        """Fetch, and park on the cluster's append signal until satisfied.

        The snapshot-then-wait protocol (read ``append_version`` *before*
        fetching) closes the classic long-poll race: a produce landing
        between an empty fetch and the wait has already moved the
        version, so :meth:`FabricCluster.wait_for_data` returns without
        blocking and the loop re-fetches immediately.  Deadlines ride the
        cluster clock, so the gateway stays free of raw ``time`` calls.

        Two PR-10 additions: transient fabric errors (a leader mid
        failover, a broker flapping) go through the gateway's shared
        :class:`~repro.common.retry.RetryPolicy` instead of failing the
        request on first touch, and a draining gateway returns whatever
        the poll has so far — :meth:`Gateway.begin_drain` wakes parked
        waiters via :meth:`FabricCluster.interrupt_waiters`, and the
        drain check here turns that wake-up into a prompt return.
        """
        retried = self._gateway.retried_fetch(cluster, fetch_once)
        if max_wait_ms <= 0:
            result, _ = retried()
            return result
        clock = cluster.clock
        deadline = clock.now() + max_wait_ms / 1000.0
        while True:
            version = cluster.append_version
            result, nbytes = retried()
            if nbytes >= min_bytes:
                return result
            if self._gateway.draining:
                return result
            remaining = deadline - clock.now()
            if remaining <= 0:
                return result
            cluster.wait_for_data(version, remaining)

    def topic_offsets(self, request: GatewayRequest) -> GatewayResponse:
        cluster = self._gateway.cluster()
        topic = request.params["topic"]
        end = cluster.end_offsets(topic)
        beginning = cluster.beginning_offsets(topic)
        return GatewayResponse(
            200,
            {
                "topic": topic,
                "partitions": {
                    str(p): {"beginning": beginning.get(p, 0), "end": end[p]}
                    for p in sorted(end)
                },
            },
        )

    # -- offsets ------------------------------------------------------- #
    def commit_offsets(self, request: GatewayRequest) -> GatewayResponse:
        cluster = self._gateway.cluster()
        req = models.CommitRequest.parse(request.json())
        offsets = {(e.topic, e.partition): e.offset for e in req.entries}
        committed = cluster.commit_group(
            request.params["group"],
            offsets,
            generation=req.generation,
            member_id=req.member_id,
            metadata=req.metadata,
        )
        return GatewayResponse(
            200,
            {
                "group": request.params["group"],
                "committed": [
                    {"topic": t, "partition": p, "offset": entry.offset}
                    for (t, p), entry in sorted(committed.items())
                ],
            },
        )

    def committed_offsets(self, request: GatewayRequest) -> GatewayResponse:
        cluster = self._gateway.cluster()
        group_id = request.params["group"]
        offsets = cluster.offsets.group_offsets(group_id)
        return GatewayResponse(
            200,
            {
                "group": group_id,
                "offsets": [
                    {"topic": t, "partition": p, "offset": offset}
                    for (t, p), offset in sorted(offsets.items())
                ],
            },
        )

    # -- consumer groups ----------------------------------------------- #
    def join_group(self, request: GatewayRequest) -> GatewayResponse:
        cluster = self._gateway.cluster()
        req = models.JoinGroupRequest.parse(request.json())
        partitions: List[Tuple[str, int]] = []
        for topic in req.topics:
            partitions.extend(cluster.partitions_for(topic))
        member_id, generation, assignment = cluster.groups.join(
            request.params["group"],
            req.client_id,
            req.topics,
            partitions,
            session_timeout=req.session_timeout_seconds,
        )
        return GatewayResponse(
            201,
            {
                "group": request.params["group"],
                "member_id": member_id,
                "generation": generation,
                "assignment": [list(tp) for tp in assignment],
                "phase": cluster.groups.rebalance_phase(request.params["group"]),
            },
        )

    def leave_group(self, request: GatewayRequest) -> GatewayResponse:
        cluster = self._gateway.cluster()
        generation = cluster.groups.leave(
            request.params["group"], request.params["member"]
        )
        return GatewayResponse(
            200, {"group": request.params["group"], "generation": generation}
        )

    def heartbeat(self, request: GatewayRequest) -> GatewayResponse:
        cluster = self._gateway.cluster()
        req = models.GenerationRequest.parse(request.json())
        cluster.groups.heartbeat(
            request.params["group"], request.params["member"], req.generation
        )
        return GatewayResponse(200, {"generation": req.generation})

    def sync(self, request: GatewayRequest) -> GatewayResponse:
        cluster = self._gateway.cluster()
        req = models.GenerationRequest.parse(request.json())
        generation, assignment = cluster.groups.sync(
            request.params["group"], request.params["member"], req.generation
        )
        return GatewayResponse(
            200,
            {
                "generation": generation,
                "assignment": [list(tp) for tp in assignment],
                "phase": cluster.groups.rebalance_phase(request.params["group"]),
            },
        )


class Gateway:
    """The HTTP front door as a transport-agnostic application object.

    Parameters
    ----------
    cluster:
        The fabric cluster to serve.  ``None`` boots the gateway
        uninitialized: every request answers 503 ``UNINITIALIZED`` until
        :meth:`attach` wires a cluster in (matching the
        dependency-injection contract of the reference control-plane
        API this router is modeled on).
    admin_authorizer:
        Optional ``(principal, operation, resource) -> bool`` hook for
        the control plane; every request's admin view routes through it.
    max_inflight_per_principal:
        Graceful-degradation cap: at most this many requests per
        principal may be in flight at once; excess requests answer 429
        with a ``Retry-After`` header instead of queueing behind parked
        long-polls.  ``None`` (the default) means uncapped.
    retry_after_seconds:
        The back-off hint sent on 429/503 (drain) responses.
    """

    #: Routes exempt from drain gating and in-flight caps: a load
    #: balancer must be able to probe a saturated or draining gateway.
    _HEALTH_PATHS = frozenset({("v1", "healthz"), ("v1", "readyz")})

    #: Transient fabric errors on the fetch path (a leader mid failover,
    #: a flapping broker) retry briefly instead of failing the request.
    FETCH_RETRY_POLICY = RetryPolicy(
        max_attempts=3, base_backoff=0.025, multiplier=2.0, max_backoff=0.1
    )

    def __init__(
        self,
        cluster: Optional[FabricCluster] = None,
        *,
        admin_authorizer: Optional[AdminAuthorizer] = None,
        max_inflight_per_principal: Optional[int] = None,
        retry_after_seconds: float = 1.0,
    ) -> None:
        if max_inflight_per_principal is not None and max_inflight_per_principal < 1:
            raise ValueError("max_inflight_per_principal must be >= 1")
        self._cluster = cluster
        self._admin_authorizer = admin_authorizer
        self.control = ControlPlaneRouter(self)
        self.data = DataPlaneRouter(self)
        self._routes: List[Route] = (
            [
                Route("GET", "/v1/healthz", self.healthz),
                Route("GET", "/v1/readyz", self.readyz),
            ]
            + self.control.routes()
            + self.data.routes()
        )
        self._pool_lock = create_lock("GatewaySessionPool")
        self._session_pool: Dict[Optional[str], List[FetchSession]] = {}
        self._max_inflight = max_inflight_per_principal
        self._retry_after = retry_after_seconds
        # In-flight accounting and the drain flag share one condition: a
        # drain waiter parks on it until the last in-flight request exits.
        self._inflight_cond = threading.Condition()
        self._inflight: Dict[Optional[str], int] = {}
        self._inflight_total = 0
        self._draining = False

    # -- dependencies --------------------------------------------------- #
    def attach(self, cluster: FabricCluster) -> None:
        """Wire (or replace) the cluster dependency; drops pooled sessions."""
        with self._pool_lock:
            self._cluster = cluster
            self._session_pool.clear()

    def cluster(self) -> FabricCluster:
        """The cluster dependency, or 503 ``UNINITIALIZED`` if unset."""
        cluster = self._cluster
        if cluster is None:
            raise ServiceUnavailableError(
                "gateway has no cluster attached yet; retry after initialization"
            )
        return cluster

    # -- degradation / lifecycle ---------------------------------------- #
    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Stop admitting requests; wake every parked long-poll.

        Idempotent.  In-flight requests are left to finish — pair with
        :meth:`await_drained` for the full graceful-shutdown sequence.
        """
        with self._inflight_cond:
            self._draining = True
        cluster = self._cluster
        if cluster is not None:
            # Parked wait_for_data calls wake without a version bump; the
            # long-poll loop sees ``draining`` and returns what it has.
            cluster.interrupt_waiters()

    def await_drained(self, timeout: float = 5.0) -> bool:
        """Block until no request is in flight (or ``timeout``); True if drained."""
        with self._inflight_cond:
            return self._inflight_cond.wait_for(
                lambda: self._inflight_total == 0, timeout
            )

    def inflight(self, principal: Optional[str] = None) -> int:
        """Current in-flight count for one principal (observability)."""
        with self._inflight_cond:
            return self._inflight.get(principal, 0)

    def _admit(self, principal: Optional[str]) -> None:
        with self._inflight_cond:
            if self._draining:
                raise DrainingError(
                    "gateway is draining; retry against another instance",
                    retry_after=self._retry_after,
                )
            count = self._inflight.get(principal, 0)
            if self._max_inflight is not None and count >= self._max_inflight:
                raise TooManyRequestsError(
                    f"principal {principal!r} has {count} requests in flight "
                    f"(cap {self._max_inflight})",
                    retry_after=self._retry_after,
                    details={"in_flight": count, "cap": self._max_inflight},
                )
            self._inflight[principal] = count + 1
            self._inflight_total += 1

    def _release(self, principal: Optional[str]) -> None:
        with self._inflight_cond:
            remaining = self._inflight.get(principal, 1) - 1
            if remaining:
                self._inflight[principal] = remaining
            else:
                self._inflight.pop(principal, None)
            self._inflight_total -= 1
            if self._inflight_total == 0:
                self._inflight_cond.notify_all()

    def retried_fetch(
        self, cluster: FabricCluster, fetch_once: Callable[[], Tuple[Any, int]]
    ) -> Callable[[], Tuple[Any, int]]:
        """Wrap a fetch closure in the gateway's transient-error policy."""

        def attempt() -> Tuple[Any, int]:
            return self.FETCH_RETRY_POLICY.call(
                fetch_once,
                clock=cluster.clock,
                retriable=lambda exc: (
                    isinstance(exc, FabricError) and exc.retriable
                ),
            )

        return attempt

    # -- health probes --------------------------------------------------- #
    def healthz(self, request: GatewayRequest) -> GatewayResponse:
        """Liveness: the process answers — even while draining."""
        return GatewayResponse(200, {"status": "ok"})

    def readyz(self, request: GatewayRequest) -> GatewayResponse:
        """Readiness: may this instance take traffic right now?"""
        if self._draining:
            return GatewayResponse(503, {"status": "draining", "ready": False})
        if self._cluster is None:
            return GatewayResponse(
                503, {"status": "uninitialized", "ready": False}
            )
        return GatewayResponse(200, {"status": "ready", "ready": True})

    def admin_for(self, principal: Optional[str]) -> FabricAdmin:
        """A control-plane view for ``principal`` over the one authz hook."""
        cluster = self.cluster()
        if self._admin_authorizer is None and principal is None:
            return cluster.admin()
        return FabricAdmin(
            cluster, principal=principal, authorizer=self._admin_authorizer
        )

    @contextlib.contextmanager
    def session(self, principal: Optional[str]):
        """Check a pooled fetch session out (and back in) for one request.

        Long-lived leader/log caches are what make fetch sessions fast;
        pooling them per principal keeps that amortization across wire
        requests while never sharing one session between two concurrent
        handlers.
        """
        cluster = self.cluster()
        with self._pool_lock:
            pool = self._session_pool.setdefault(principal, [])
            session = pool.pop() if pool else None
        if session is None:
            session = cluster.fetch_session(principal=principal)
        try:
            yield session
        finally:
            with self._pool_lock:
                # attach() may have swapped the cluster mid-request; a
                # session for the old cluster must not be pooled again.
                if self._cluster is cluster:
                    self._session_pool.setdefault(principal, []).append(session)

    # -- request handling ----------------------------------------------- #
    @staticmethod
    def principal_from_headers(headers: Mapping[str, str]) -> Optional[str]:
        auth = headers.get("authorization")
        if auth:
            scheme, _, credential = auth.partition(" ")
            if scheme.lower() == "bearer" and credential.strip():
                return credential.strip()
        principal = headers.get("x-repro-principal")
        return principal.strip() if principal and principal.strip() else None

    def handle(
        self,
        method: str,
        path: str,
        *,
        query: Optional[Mapping[str, str]] = None,
        headers: Optional[Mapping[str, str]] = None,
        body: bytes = b"",
    ) -> GatewayResponse:
        """Route one request; never raises — errors become JSON bodies.

        Health probes bypass the degradation gates; every other route is
        admitted against the drain flag and the per-principal in-flight
        cap first, so a saturated or draining gateway answers 429/503
        (with ``Retry-After``) instead of queueing unboundedly.
        """
        headers = {k.lower(): v for k, v in (headers or {}).items()}
        segments = tuple(s for s in path.split("/") if s)
        try:
            route, params = self._match(method.upper(), segments)
            request = GatewayRequest(
                method=method.upper(),
                path=path,
                params=params,
                query=dict(query or {}),
                headers=headers,
                body=body,
                principal=self.principal_from_headers(headers),
            )
            if segments in self._HEALTH_PATHS:
                return route.handler(request)
            self._admit(request.principal)
            try:
                return route.handler(request)
            finally:
                self._release(request.principal)
        except Exception as exc:  # total: every failure maps to a body
            status, payload = error_body(exc)
            extra = getattr(exc, "headers", None)
            return GatewayResponse(
                status, payload, headers=dict(extra) if extra else {}
            )

    def _match(
        self, method: str, segments: Tuple[str, ...]
    ) -> Tuple[Route, Dict[str, str]]:
        allowed: List[str] = []
        for route in self._routes:
            params = route.match(segments)
            if params is None:
                continue
            if route.method == method:
                return route, params
            allowed.append(route.method)
        if allowed:
            raise MethodNotAllowedError(
                f"{method} not allowed here (try {', '.join(sorted(set(allowed)))})"
            )
        raise RouteNotFoundError(f"no route matches {'/' + '/'.join(segments)}")


__all__ = [
    "BATCH_CONTENT_TYPE",
    "JSON_CONTENT_TYPE",
    "Gateway",
    "GatewayRequest",
    "GatewayResponse",
    "ControlPlaneRouter",
    "DataPlaneRouter",
    "Route",
]
