"""HTTP front door for the event fabric.

Public API boundary
-------------------
``repro.gateway`` is the supported network surface over the in-process
fabric: a stdlib-only HTTP gateway with a schema'd control plane
(wrapping :class:`~repro.fabric.admin.FabricAdmin`) and a data plane
(produce / long-poll fetch / offset commit / consumer groups).  The
names re-exported here — and nothing else under this package — are the
supported surface:

* :class:`Gateway` — the transport-agnostic application object; drive
  :meth:`~repro.gateway.routers.Gateway.handle` directly in tests.
* :class:`GatewayServer` — mounts a :class:`Gateway` behind a real
  threaded HTTP socket (ephemeral port by default).
* ``error_body`` / the ``GatewayError`` hierarchy — the one mapping from
  the fabric error taxonomy to stable ``{code, message, retriable}``
  JSON bodies.

Run ``python -m repro.gateway`` for a self-contained demo server.
"""

from repro.gateway.errors import (
    FABRIC_STATUS,
    DrainingError,
    GatewayError,
    MalformedBodyError,
    MethodNotAllowedError,
    RouteNotFoundError,
    SchemaError,
    ServiceUnavailableError,
    TooManyRequestsError,
    UnsupportedMediaTypeError,
    error_body,
)
from repro.gateway.routers import (
    BATCH_CONTENT_TYPE,
    JSON_CONTENT_TYPE,
    ControlPlaneRouter,
    DataPlaneRouter,
    Gateway,
    GatewayRequest,
    GatewayResponse,
)
from repro.gateway.server import GatewayServer

__all__ = [
    "BATCH_CONTENT_TYPE",
    "JSON_CONTENT_TYPE",
    "ControlPlaneRouter",
    "DataPlaneRouter",
    "DrainingError",
    "FABRIC_STATUS",
    "Gateway",
    "GatewayError",
    "GatewayRequest",
    "GatewayResponse",
    "GatewayServer",
    "MalformedBodyError",
    "MethodNotAllowedError",
    "RouteNotFoundError",
    "SchemaError",
    "ServiceUnavailableError",
    "TooManyRequestsError",
    "UnsupportedMediaTypeError",
    "error_body",
]
