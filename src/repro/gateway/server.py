"""Threaded stdlib HTTP server mounting a :class:`Gateway` application.

One :class:`~http.server.ThreadingHTTPServer` (a thread per connection —
matching the fabric's thread-safe, lock-instrumented internals) whose
request handler does nothing but frame parsing: path/query split, body
read, header passthrough.  All routing, validation and error mapping
live in :meth:`repro.gateway.routers.Gateway.handle`, so the contract
tests that drive the application object in-process cover exactly what
the socket serves.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.gateway.routers import Gateway


class _GatewayHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    gateway: Gateway


class _GatewayHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: _GatewayHTTPServer

    # The stdlib handler logs every request to stderr by default; a
    # gateway embedded in tests and benchmarks must stay quiet.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    def _dispatch(self) -> None:
        parsed = urlsplit(self.path)
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length > 0 else b""
        response = self.server.gateway.handle(
            self.command,
            parsed.path,
            query=dict(parse_qsl(parsed.query)),
            headers=dict(self.headers.items()),
            body=body,
        )
        data = response.body_bytes()
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(data)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        if data:
            self.wfile.write(data)

    do_GET = _dispatch
    do_POST = _dispatch
    do_PUT = _dispatch
    do_DELETE = _dispatch


class GatewayServer:
    """Serve a :class:`Gateway` on a background thread.

    ``port=0`` binds an ephemeral port (the default, so parallel test
    runs never collide); read the bound address back from
    :attr:`address` / :attr:`url`.
    """

    def __init__(
        self, gateway: Gateway, *, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.gateway = gateway
        self._http = _GatewayHTTPServer((host, port), _GatewayHandler)
        self._http.gateway = gateway
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._http.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "GatewayServer":
        if self._thread is not None:
            raise RuntimeError("gateway server already started")
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="repro-gateway-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, *, drain_timeout: float = 5.0) -> None:
        """Gracefully stop: drain the application, then close the socket.

        :meth:`Gateway.begin_drain` flips new requests to 503 ``DRAINING``
        and wakes every parked long-poll, :meth:`Gateway.await_drained`
        waits for in-flight handlers to finish, and only then does the
        listener shut down — so a stop never strands a client mid-poll
        or cuts a response off mid-write.
        """
        if self._thread is None:
            return
        self.gateway.begin_drain()
        self.gateway.await_drained(timeout=drain_timeout)
        self._http.shutdown()
        self._thread.join(timeout=5.0)
        self._http.server_close()
        self._thread = None

    def close(self, *, drain_timeout: float = 5.0) -> None:
        """Alias for :meth:`stop` — the graceful-shutdown entry point."""
        self.stop(drain_timeout=drain_timeout)

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


__all__ = ["GatewayServer"]
