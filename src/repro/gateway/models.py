"""Schema'd request/response models for the gateway, validated at the boundary.

Stdlib-only stand-in for the pydantic models a FastAPI service would use:
each request body is a frozen dataclass whose fields carry ordinary type
annotations, and :meth:`Model.parse` validates an incoming JSON payload
against them — unknown keys, missing required fields and type mismatches
are all collected (not first-error-only) and raised as one
:class:`~repro.gateway.errors.SchemaError` whose ``details.fields`` maps
every offending field to its reason.  Models that need more than type
shape (non-empty lists, enum-ish values) override :meth:`Model._validate`
and report through the same channel.

Responses are plain dataclasses rendered with :func:`dataclasses.asdict`
by the router; only requests need parsing.
"""

from __future__ import annotations

import dataclasses
import typing
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.fabric.topic import TopicConfig
from repro.gateway.errors import SchemaError

_MISSING = object()

#: JSON type names used in validation messages.
_TYPE_NAMES = {
    str: "string",
    int: "integer",
    float: "number",
    bool: "boolean",
    dict: "object",
    list: "array",
}


def _describe(expected: Any) -> str:
    origin = typing.get_origin(expected)
    if origin is Union:
        return " or ".join(_describe(arg) for arg in typing.get_args(expected)
                           if arg is not type(None))
    if origin in (list, List):
        (inner,) = typing.get_args(expected) or (Any,)
        return f"array of {_describe(inner)}"
    if origin in (dict, Dict):
        return "object"
    return _TYPE_NAMES.get(expected, getattr(expected, "__name__", str(expected)))


def _conforms(value: Any, expected: Any) -> bool:
    """Structural check of a JSON value against a (simple) annotation.

    Supports the annotation vocabulary the models actually use: scalars,
    ``Optional``/``Union``, ``List[X]``, ``Dict[str, X]`` and ``Any``.
    ``bool`` is not accepted where ``int``/``float`` is expected — JSON
    ``true`` silently becoming offset ``1`` is exactly the class of bug a
    schema boundary exists to stop.
    """
    if expected is Any:
        return True
    origin = typing.get_origin(expected)
    if origin is Union:
        return any(_conforms(value, arg) for arg in typing.get_args(expected))
    if expected is type(None):
        return value is None
    if origin in (list, List):
        if not isinstance(value, list):
            return False
        args = typing.get_args(expected)
        inner = args[0] if args else Any
        return all(_conforms(item, inner) for item in value)
    if origin in (dict, Dict):
        if not isinstance(value, dict):
            return False
        args = typing.get_args(expected)
        if not args:
            return True
        key_t, val_t = args
        return all(
            _conforms(k, key_t) and _conforms(v, val_t) for k, v in value.items()
        )
    if expected is float:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected is int:
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, expected)


@dataclass(frozen=True)
class Model:
    """Base request model: ``parse`` is the schema boundary."""

    @classmethod
    def parse(cls, payload: Any) -> "Model":
        if not isinstance(payload, dict):
            raise SchemaError({"body": "request body must be a JSON object"})
        errors: Dict[str, str] = {}
        hints = typing.get_type_hints(cls)
        values: Dict[str, Any] = {}
        known = {f.name for f in dataclasses.fields(cls)}
        for key in payload:
            if key not in known:
                errors[key] = "unknown field"
        for f in dataclasses.fields(cls):
            expected = hints[f.name]
            raw = payload.get(f.name, _MISSING)
            required = (
                f.default is dataclasses.MISSING
                and f.default_factory is dataclasses.MISSING
            )
            if raw is _MISSING:
                if required:
                    errors[f.name] = f"required field (expected {_describe(expected)})"
                continue
            if not _conforms(raw, expected):
                errors[f.name] = (
                    f"expected {_describe(expected)}, "
                    f"got {_TYPE_NAMES.get(type(raw), type(raw).__name__)}"
                )
                continue
            values[f.name] = raw
        if not errors:
            instance = cls(**values)
            instance._validate(errors)
            if not errors:
                return instance
        raise SchemaError(errors)

    def _validate(self, errors: Dict[str, str]) -> None:
        """Override to add semantic checks; report into ``errors``."""


#: Keys a topic ``config`` object may carry — the TopicConfig fields,
#: minus server-managed ones nothing on the wire may set directly.
TOPIC_CONFIG_KEYS = frozenset(TopicConfig.__dataclass_fields__)


def _check_topic_config(config: Dict[str, Any], errors: Dict[str, str],
                        prefix: str = "config") -> None:
    for key in config:
        if key not in TOPIC_CONFIG_KEYS:
            errors[f"{prefix}.{key}"] = "unknown topic config key"


# ----------------------------------------------------------------------- #
# Control plane
# ----------------------------------------------------------------------- #
@dataclass(frozen=True)
class TopicCreateRequest(Model):
    """``POST /v1/topics``"""

    name: str
    config: Dict[str, Any] = field(default_factory=dict)

    def _validate(self, errors: Dict[str, str]) -> None:
        if not self.name:
            errors["name"] = "must be a non-empty string"
        _check_topic_config(self.config, errors)


@dataclass(frozen=True)
class TopicConfigUpdateRequest(Model):
    """``PUT /v1/topics/{topic}/config``"""

    updates: Dict[str, Any]

    def _validate(self, errors: Dict[str, str]) -> None:
        if not self.updates:
            errors["updates"] = "must name at least one config key"
        _check_topic_config(self.updates, errors, prefix="updates")


@dataclass(frozen=True)
class PartitionGrowRequest(Model):
    """``POST /v1/topics/{topic}/partitions``"""

    num_partitions: int

    def _validate(self, errors: Dict[str, str]) -> None:
        if self.num_partitions < 1:
            errors["num_partitions"] = "must be >= 1"


# ----------------------------------------------------------------------- #
# Data plane
# ----------------------------------------------------------------------- #
_RECORD_KEYS = frozenset({"value", "key", "headers", "timestamp"})


@dataclass(frozen=True)
class ProduceRequest(Model):
    """``POST /v1/topics/{topic}/partitions/{partition}/records`` (JSON form).

    The wire-format form (``Content-Type:
    application/vnd.repro.batch.v1``) bypasses this model entirely — the
    body *is* the packed batch image and crosses into storage without
    re-encoding.
    """

    records: List[Dict[str, Any]]
    acks: Union[int, str] = 1

    def _validate(self, errors: Dict[str, str]) -> None:
        if self.acks not in (0, 1, "all"):
            errors["acks"] = "must be 0, 1 or 'all'"
        if not self.records:
            errors["records"] = "must contain at least one record"
        for index, record in enumerate(self.records):
            if "value" not in record:
                errors[f"records[{index}].value"] = "required field"
            for key in record:
                if key not in _RECORD_KEYS:
                    errors[f"records[{index}].{key}"] = "unknown field"
            headers = record.get("headers")
            if headers is not None and not _conforms(headers, Dict[str, str]):
                errors[f"records[{index}].headers"] = (
                    "expected object of string to string"
                )
            timestamp = record.get("timestamp")
            if timestamp is not None and not _conforms(timestamp, float):
                errors[f"records[{index}].timestamp"] = "expected number"


@dataclass(frozen=True)
class FetchRequestEntry(Model):
    """One partition slice of a batched ``POST /v1/fetch``."""

    topic: str
    partition: int
    offset: int
    max_records: Optional[int] = None

    def _validate(self, errors: Dict[str, str]) -> None:
        if self.partition < 0:
            errors["partition"] = "must be >= 0"
        if self.offset < 0:
            errors["offset"] = "must be >= 0"


@dataclass(frozen=True)
class BatchFetchRequest(Model):
    """``POST /v1/fetch`` — multi-partition fetch riding one fetch session."""

    requests: List[Dict[str, Any]]
    max_records: int = 500
    max_bytes: Optional[int] = None
    max_wait_ms: int = 0
    min_bytes: int = 1
    isolation: str = "committed"

    #: Parsed ``requests`` entries, installed per-instance by
    #: ``_validate`` (a ClassVar so it is not a schema field — clients
    #: send ``requests``, never this).
    entries: typing.ClassVar[Tuple[FetchRequestEntry, ...]] = ()

    def _validate(self, errors: Dict[str, str]) -> None:
        if not self.requests:
            errors["requests"] = "must contain at least one partition request"
        if self.max_records < 1:
            errors["max_records"] = "must be >= 1"
        if self.max_wait_ms < 0:
            errors["max_wait_ms"] = "must be >= 0"
        if self.min_bytes < 1:
            errors["min_bytes"] = "must be >= 1"
        if self.isolation not in ("committed", "uncommitted"):
            errors["isolation"] = "must be 'committed' or 'uncommitted'"
        parsed = []
        for index, entry in enumerate(self.requests):
            try:
                parsed.append(FetchRequestEntry.parse(entry))
            except SchemaError as exc:
                for fname, reason in (exc.details or {}).get("fields", {}).items():
                    errors[f"requests[{index}].{fname}"] = reason
        if not errors:
            object.__setattr__(self, "entries", tuple(parsed))


@dataclass(frozen=True)
class OffsetCommitEntry(Model):
    topic: str
    partition: int
    offset: int


@dataclass(frozen=True)
class CommitRequest(Model):
    """``POST /v1/groups/{group}/offsets`` — batched atomic group commit."""

    offsets: List[Dict[str, Any]]
    generation: Optional[int] = None
    member_id: Optional[str] = None
    metadata: str = ""

    #: Parsed ``offsets`` entries (ClassVar: see BatchFetchRequest.entries).
    entries: typing.ClassVar[Tuple[OffsetCommitEntry, ...]] = ()

    def _validate(self, errors: Dict[str, str]) -> None:
        if not self.offsets:
            errors["offsets"] = "must contain at least one offset"
        parsed = []
        for index, entry in enumerate(self.offsets):
            try:
                parsed.append(OffsetCommitEntry.parse(entry))
            except SchemaError as exc:
                for fname, reason in (exc.details or {}).get("fields", {}).items():
                    errors[f"offsets[{index}].{fname}"] = reason
        if not errors:
            object.__setattr__(self, "entries", tuple(parsed))


@dataclass(frozen=True)
class JoinGroupRequest(Model):
    """``POST /v1/groups/{group}/members`` — join the cooperative protocol."""

    client_id: str
    topics: List[str]
    session_timeout_seconds: Optional[float] = None

    def _validate(self, errors: Dict[str, str]) -> None:
        if not self.client_id:
            errors["client_id"] = "must be a non-empty string"
        if not self.topics:
            errors["topics"] = "must subscribe at least one topic"
        if self.session_timeout_seconds is not None and (
            self.session_timeout_seconds <= 0
        ):
            errors["session_timeout_seconds"] = "must be > 0"


@dataclass(frozen=True)
class GenerationRequest(Model):
    """``POST .../heartbeat`` and ``POST .../sync`` bodies."""

    generation: int

    def _validate(self, errors: Dict[str, str]) -> None:
        if self.generation < 0:
            errors["generation"] = "must be >= 0"


__all__ = [
    "Model",
    "TOPIC_CONFIG_KEYS",
    "TopicCreateRequest",
    "TopicConfigUpdateRequest",
    "PartitionGrowRequest",
    "ProduceRequest",
    "FetchRequestEntry",
    "BatchFetchRequest",
    "OffsetCommitEntry",
    "CommitRequest",
    "JoinGroupRequest",
    "GenerationRequest",
]
