"""Instrumented lock wrappers: the runtime half of *fabric-san*.

The fabric is a heavily threaded system — producer delivery threads,
consumer prefetch, ESM poller fleets, replication and compaction all
take locks concurrently — and the invariants those threads depend on
(consistent lock ordering above all) are otherwise only checked by
Hypothesis soak luck.  This module provides drop-in
:class:`SanitizedLock` / :class:`SanitizedRLock` wrappers that

* record, per thread, the stack of currently held locks together with
  the acquisition stack trace of each;
* maintain a **global lock-order graph**: an edge ``A -> B`` is added
  the first time some thread acquires ``B`` while holding ``A``;
* raise :class:`LockOrderInversion` *before* blocking when an
  acquisition would close a cycle in that graph — the error carries the
  acquisition stacks of **both** conflicting orderings, so an AB/BA
  deadlock is reported deterministically on the first run that
  exercises both orders, whether or not the threads actually interleave
  into the deadlock;
* record a report (not an error) when a *blocking call* — anything
  routed through :func:`note_blocking` or :func:`blocking_region` —
  runs while sanitized locks are held.

Production code never pays for any of this: modules create their locks
through :func:`create_lock` / :func:`create_rlock`, which return the
bare :mod:`threading` primitives (no wrapper object, no extra
attributes, no indirection) unless sanitizing was switched on — via the
``REPRO_SANITIZE=1`` environment variable (how pytest and the nightly
soak enable it, see ``tests/conftest.py``) or :func:`enable_sanitizer`.
The sanitized classes themselves are always importable for targeted
tests regardless of the global switch.
"""

from __future__ import annotations

import os
import threading
import traceback
from typing import Dict, List, Optional, Tuple

__all__ = [
    "LockOrderInversion",
    "SanitizedLock",
    "SanitizedRLock",
    "blocking_region",
    "blocking_reports",
    "create_lock",
    "create_rlock",
    "enable_sanitizer",
    "held_locks",
    "note_blocking",
    "reset_sanitizer_state",
    "sanitizer_enabled",
]

#: Environment switch consulted at import time (and by
#: :func:`sanitizer_enabled`): any value other than empty/``0`` enables
#: the instrumented wrappers for every module that creates its locks
#: through the factories below.
SANITIZE_ENV = "REPRO_SANITIZE"

_enabled = os.environ.get(SANITIZE_ENV, "") not in ("", "0")


class LockOrderInversion(RuntimeError):
    """Two locks were acquired in both orders: a potential deadlock.

    Raised *at acquisition time* on the thread that would close the
    cycle, before it blocks.  The message carries the acquisition stack
    of the current (conflicting) acquisition and the recorded stack of
    the first acquisition that established the opposite order.
    """


class BlockingWhileLocked:
    """One observation of a blocking call made while holding locks."""

    __slots__ = ("description", "held", "stack")

    def __init__(self, description: str, held: Tuple[str, ...], stack: str) -> None:
        self.description = description
        self.held = held
        self.stack = stack

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BlockingWhileLocked({self.description!r}, held={self.held!r})"


class _ThreadState(threading.local):
    """Per-thread stack of held sanitized locks with acquisition stacks."""

    def __init__(self) -> None:
        #: List of (lock, formatted acquisition stack), innermost last.
        self.held: List[Tuple[object, str]] = []


_tls = _ThreadState()

# The sanitizer's own bookkeeping lock.  Never held while user code
# runs, so it cannot participate in the cycles it is looking for.
_graph_lock = threading.Lock()
#: Lock-order edges: id(A) -> {id(B) -> (A.name, B.name, stack that
#: recorded the edge)}.  Identity is per lock *instance* — the cycles a
#: deadlock needs are between concrete locks, not lock classes.
_order_graph: Dict[int, Dict[int, Tuple[str, str, str]]] = {}
_blocking_reports: List[BlockingWhileLocked] = []


def _capture_stack(skip: int = 2) -> str:
    """Formatted stack of the caller, trimmed of sanitizer frames."""
    frames = traceback.extract_stack()[:-skip]
    return "".join(traceback.format_list(frames[-12:]))


def _path_exists(start: int, goal: int) -> Optional[Tuple[str, str, str]]:
    """DFS the order graph for a path ``start -> ... -> goal``.

    Returns the first edge on the found path (whose recorded stack is
    the evidence shown in the error), or ``None``.  Caller holds
    ``_graph_lock``.
    """
    stack = [start]
    first_edge: Dict[int, Tuple[str, str, str]] = {}
    seen = {start}
    while stack:
        node = stack.pop()
        for succ, evidence in _order_graph.get(node, {}).items():
            if succ not in seen:
                seen.add(succ)
                first_edge[succ] = first_edge.get(node, evidence)
                if succ == goal:
                    return first_edge[succ]
                stack.append(succ)
    return None


def _check_order(lock: "_SanitizedBase") -> None:
    """Validate acquiring ``lock`` against every lock this thread holds.

    Called *before* the real acquire, so an inversion raises instead of
    deadlocking.  Edges are added here as well (held -> acquiring); a
    failed non-blocking acquire leaves behind edges describing an order
    the thread genuinely attempted, which is exactly the information the
    graph exists to keep.
    """
    held = _tls.held
    if not held:
        return
    acquiring = id(lock)
    stack = _capture_stack(skip=3)
    with _graph_lock:
        for held_lock, _held_stack in held:
            if held_lock is lock:
                continue  # reentrancy is the RLock wrapper's business
            holder = id(held_lock)
            evidence = _path_exists(acquiring, holder)
            if evidence is not None:
                first_name, second_name, recorded = evidence
                raise LockOrderInversion(
                    f"lock-order inversion: acquiring {lock.name!r} while "
                    f"holding {held_lock.name!r}, but the opposite order "
                    f"({first_name!r} before {second_name!r}) was recorded "
                    f"earlier.\n"
                    f"--- current acquisition (holds {held_lock.name!r}, "
                    f"wants {lock.name!r}):\n{stack}"
                    f"--- previously recorded acquisition "
                    f"({second_name!r} while holding {first_name!r}):\n"
                    f"{recorded}"
                )
            edges = _order_graph.setdefault(holder, {})
            if acquiring not in edges:
                edges[acquiring] = (held_lock.name, lock.name, stack)


class _SanitizedBase:
    """Shared acquire/release instrumentation for both wrappers."""

    __slots__ = ("_inner", "name")

    def __init__(self, inner, name: Optional[str]) -> None:
        self._inner = inner
        if name is None:
            # Default identity: the creation site, which is how a human
            # maps a report back to a `create_lock()` call.
            frame = traceback.extract_stack(limit=3)[0]
            name = f"{type(self).__name__}@{frame.filename}:{frame.lineno}"
        self.name = name

    def _push(self) -> None:
        _tls.held.append((self, _capture_stack(skip=3)))

    def _pop(self) -> None:
        held = _tls.held
        for index in range(len(held) - 1, -1, -1):
            if held[index][0] is self:
                del held[index]
                return

    def locked(self) -> bool:
        return self._inner.locked()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


class SanitizedLock(_SanitizedBase):
    """A ``threading.Lock`` that feeds the lock-order sanitizer."""

    __slots__ = ()

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(threading.Lock(), name)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:  # lint: ignore[BARE-ACQUIRE]
        _check_order(self)
        ok = self._inner.acquire(blocking, timeout)  # lint: ignore[BARE-ACQUIRE]
        if ok:
            self._push()
        return ok

    def release(self) -> None:  # lint: ignore[BARE-ACQUIRE]
        self._inner.release()  # lint: ignore[BARE-ACQUIRE]
        self._pop()

    def __enter__(self) -> bool:
        return self.acquire()  # lint: ignore[BARE-ACQUIRE]

    def __exit__(self, *exc_info) -> None:
        self.release()  # lint: ignore[BARE-ACQUIRE]


class SanitizedRLock(_SanitizedBase):
    """A ``threading.RLock`` that feeds the lock-order sanitizer.

    Reentrant acquisitions by the owning thread are counted but do not
    touch the order graph — only the outermost acquire/release pair is
    an ordering event.
    """

    __slots__ = ("_owner", "_count")

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(threading.RLock(), name)
        self._owner: Optional[int] = None
        self._count = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:  # lint: ignore[BARE-ACQUIRE]
        me = threading.get_ident()
        reentrant = self._owner == me
        if not reentrant:
            _check_order(self)
        ok = self._inner.acquire(blocking, timeout)  # lint: ignore[BARE-ACQUIRE]
        if ok:
            self._owner = me
            self._count += 1
            if not reentrant:
                self._push()
        return ok

    def release(self) -> None:  # lint: ignore[BARE-ACQUIRE]
        if self._owner != threading.get_ident():
            raise RuntimeError("cannot release an un-acquired SanitizedRLock")
        self._count -= 1
        outermost = self._count == 0
        if outermost:
            self._owner = None
        self._inner.release()  # lint: ignore[BARE-ACQUIRE]
        if outermost:
            self._pop()

    def locked(self) -> bool:
        return self._count > 0

    def __enter__(self) -> bool:
        return self.acquire()  # lint: ignore[BARE-ACQUIRE]

    def __exit__(self, *exc_info) -> None:
        self.release()  # lint: ignore[BARE-ACQUIRE]


# --------------------------------------------------------------------- #
# Blocking-call observation
# --------------------------------------------------------------------- #
def note_blocking(description: str) -> None:
    """Record that a blocking call is about to run on this thread.

    When the calling thread holds sanitized locks, a
    :class:`BlockingWhileLocked` report (lock names + call stack) is
    appended to the global report list — the runtime complement of the
    BLOCKING-UNDER-LOCK lint rule, catching lock-held blocking calls
    that are only reachable dynamically.  Free when no locks are held.
    """
    held = _tls.held
    if not held:
        return
    report = BlockingWhileLocked(
        description,
        tuple(lock.name for lock, _ in held),
        _capture_stack(skip=2),
    )
    with _graph_lock:
        _blocking_reports.append(report)


class blocking_region:
    """Context manager marking a region as blocking (see :func:`note_blocking`)."""

    def __init__(self, description: str) -> None:
        self._description = description

    def __enter__(self) -> "blocking_region":
        note_blocking(self._description)
        return self

    def __exit__(self, *exc_info) -> None:
        return None


def blocking_reports() -> List[BlockingWhileLocked]:
    """Snapshot of every blocking-while-locked observation so far."""
    with _graph_lock:
        return list(_blocking_reports)


def held_locks() -> Tuple[str, ...]:
    """Names of the sanitized locks the calling thread currently holds."""
    return tuple(lock.name for lock, _ in _tls.held)


# --------------------------------------------------------------------- #
# Mode switching and factories
# --------------------------------------------------------------------- #
def sanitizer_enabled() -> bool:
    """Whether the factories hand out instrumented locks."""
    return _enabled


def enable_sanitizer(on: bool = True) -> None:
    """Programmatically flip the sanitizer (tests; prefer REPRO_SANITIZE=1).

    Only affects locks created *after* the call: existing objects keep
    whatever type their factory returned.
    """
    global _enabled
    _enabled = on


def reset_sanitizer_state() -> None:
    """Clear the order graph and blocking reports (per-test isolation)."""
    with _graph_lock:
        _order_graph.clear()
        _blocking_reports.clear()


def create_lock(name: Optional[str] = None) -> threading.Lock:
    """A mutex: plain ``threading.Lock`` unless the sanitizer is on.

    In production mode this returns the bare primitive itself — zero
    wrapper objects, zero attribute indirection, zero overhead — which
    is what keeps the storage/compression benchmark floors intact.
    """
    if _enabled:
        return SanitizedLock(name)
    return threading.Lock()


def create_rlock(name: Optional[str] = None) -> threading.RLock:
    """A reentrant mutex: plain ``threading.RLock`` unless sanitizing."""
    if _enabled:
        return SanitizedRLock(name)
    return threading.RLock()
