"""One retry/backoff policy for every subsystem that retries.

Before this module, producer delivery, replica recovery and the gateway
long-poll each improvised their own ``while True: try ... sleep`` loop
with slightly different backoff arithmetic and no deadline budget.
:class:`RetryPolicy` is the single shared implementation: exponential
backoff with a multiplicative cap, *deterministic* seeded jitter (so two
runs of the chaos harness with the same seed sleep the same amounts),
and an optional overall deadline that clamps the final sleep instead of
overshooting the caller's time budget.

The policy is a frozen value object — construct once, share freely
across threads.  All time flows through an injectable
:class:`~repro.common.clock.Clock` / ``sleep`` callable, so a
:class:`~repro.common.clock.ManualClock` drives retries in microseconds
under test.

What counts as retriable is a predicate, defaulting to the duck-typed
``exc.retriable`` attribute every :class:`repro.fabric.errors.FabricError`
carries — this module deliberately does not import the fabric, keeping
``repro.common`` at the bottom of the layering.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.common.clock import Clock, SystemClock


def default_retriable(exc: BaseException) -> bool:
    """An exception is retriable iff it says so (``exc.retriable`` truthy)."""
    return bool(getattr(exc, "retriable", False))


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with cap, deterministic jitter and a deadline.

    ``max_attempts``
        Total number of attempts (first try included).  ``1`` means
        "no retries".
    ``base_backoff`` / ``multiplier`` / ``max_backoff``
        Sleep before retry *n* (1-based) is
        ``min(base_backoff * multiplier**(n-1), max_backoff)``.
    ``jitter``
        Fraction of the computed backoff added as deterministic noise in
        ``[0, jitter)`` — seeded from ``(seed, attempt)``, never from
        global random state, so identical policies replay identical
        schedules.
    ``deadline``
        Optional overall budget in seconds, measured from the first call
        of :meth:`call`.  A sleep never runs past the deadline; once the
        budget is exhausted the last error is re-raised immediately.
    """

    max_attempts: int = 4
    base_backoff: float = 0.05
    multiplier: float = 2.0
    max_backoff: float = 2.0
    jitter: float = 0.0
    deadline: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff values must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")
        if self.deadline is not None and self.deadline < 0:
            raise ValueError("deadline must be >= 0")

    def backoff_for(self, attempt: int) -> float:
        """Sleep (seconds) before the retry following failed ``attempt``.

        Deterministic: the jitter term derives from ``(seed, attempt)``
        via a private :class:`random.Random`, immune to global seeding
        and hash randomization.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = min(
            self.base_backoff * (self.multiplier ** (attempt - 1)),
            self.max_backoff,
        )
        if self.jitter <= 0.0 or base <= 0.0:
            return base
        noise = random.Random(self.seed * 1_000_003 + attempt).random()
        return base * (1.0 + self.jitter * noise)

    def call(
        self,
        fn: Callable[[], Any],
        *,
        clock: Optional[Clock] = None,
        sleep: Optional[Callable[[float], None]] = None,
        retriable: Callable[[BaseException], bool] = default_retriable,
        on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
    ) -> Any:
        """Run ``fn`` under this policy and return its result.

        Non-retriable exceptions propagate immediately; retriable ones
        are swallowed until attempts or the deadline run out, then the
        *last* one is re-raised.  ``on_retry(attempt, exc, delay)`` fires
        before each backoff sleep — the hook metrics and tests observe.
        """
        clock = clock if clock is not None else SystemClock()
        sleep_fn = sleep if sleep is not None else clock.sleep
        started = clock.now()
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except BaseException as exc:
                if attempt >= self.max_attempts or not retriable(exc):
                    raise
                delay = self.backoff_for(attempt)
                if self.deadline is not None:
                    remaining = self.deadline - (clock.now() - started)
                    if remaining <= 0:
                        raise
                    delay = min(delay, remaining)
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                if delay > 0:
                    sleep_fn(delay)


__all__ = ["RetryPolicy", "default_retriable"]
