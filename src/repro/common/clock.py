"""Clock abstraction.

Several Octopus behaviours are defined in terms of wall-clock intervals —
Lambda re-evaluates processing pressure every minute, consumers auto-commit
every few seconds, retention is measured in days.  Tests and the
benchmark harness cannot wait real minutes, so components that care about
time accept a :class:`Clock` and the benchmarks drive a
:class:`ManualClock` forward deterministically.
"""

from __future__ import annotations

import time
from typing import Protocol


class Clock(Protocol):
    """Minimal clock interface: current time in seconds, and sleep."""

    def now(self) -> float:  # pragma: no cover - protocol signature
        ...

    def sleep(self, seconds: float) -> None:  # pragma: no cover - protocol signature
        ...


class SystemClock:
    """Real wall-clock time."""

    def now(self) -> float:
        return time.time()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


class ManualClock:
    """A clock that only moves when told to.

    ``sleep`` advances the clock instead of blocking, so simulation loops
    and tests that exercise minute-scale policies run in microseconds.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("cannot move a clock backwards")
        self._now += seconds
        return self._now

    def set(self, timestamp: float) -> None:
        if timestamp < self._now:
            raise ValueError("cannot move a clock backwards")
        self._now = float(timestamp)
