"""Small shared utilities (clocks, retry policy, id generation)."""

from repro.common.clock import Clock, ManualClock, SystemClock
from repro.common.retry import RetryPolicy, default_retriable

__all__ = ["Clock", "ManualClock", "SystemClock", "RetryPolicy", "default_retriable"]
