"""Small shared utilities (clocks, id generation) used across subsystems."""

from repro.common.clock import Clock, ManualClock, SystemClock

__all__ = ["Clock", "ManualClock", "SystemClock"]
