"""The five scientific EDA applications of Section VI, built on Octopus.

* :mod:`repro.apps.sdl` — self-driving laboratory event log and provenance.
* :mod:`repro.apps.data_automation` — filesystem synchronization via
  FSMon → local aggregation → Octopus trigger → transfer service.
* :mod:`repro.apps.scheduling` — online, energy-aware FaaS task scheduling
  from resource monitoring events.
* :mod:`repro.apps.epidemic` — epidemic modelling and response platform.
* :mod:`repro.apps.workflow` — dynamic workflow management: a Parsl-like
  engine whose monitoring uses either an HTEX-style database or Octopus
  (Figure 8).
"""

from repro.apps.sdl import SelfDrivingLab
from repro.apps.data_automation import DataAutomationPipeline
from repro.apps.scheduling import EnergyAwareScheduler, SchedulingApplication
from repro.apps.epidemic import EpidemicPlatform
from repro.apps.workflow import (
    WorkflowEngine,
    HTEXDatabaseMonitor,
    OctopusWorkflowMonitor,
    run_monitoring_overhead_experiment,
)

__all__ = [
    "SelfDrivingLab",
    "DataAutomationPipeline",
    "EnergyAwareScheduler",
    "SchedulingApplication",
    "EpidemicPlatform",
    "WorkflowEngine",
    "HTEXDatabaseMonitor",
    "OctopusWorkflowMonitor",
    "run_monitoring_overhead_experiment",
]
