"""Dynamic workflow management: a Parsl-like engine with pluggable monitoring.

Section VI-E extends Parsl with an Octopus-based monitor that publishes
task and resource events to the fabric instead of writing each one to a
centralized database (the HTEX monitoring baseline).  Figure 8 measures
the asynchronous monitoring overhead per event for 128 tasks on eight
nodes, sweeping 1–64 workers and task durations of 0, 10 and 100 ms; the
per-event overhead falls as the number of workers (and therefore events)
grows, and the Octopus monitor stays below HTEX because it batches events
and publishes them off the critical path.

The engine runs on the discrete-event kernel so a 100 ms × 128-task
workflow "executes" in microseconds of wall-clock time while preserving
the timing relationships that produce Figure 8's shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.simulation.kernel import SimulationKernel


@dataclass
class MonitoringEvent:
    """One monitoring message emitted by the engine."""

    task_id: int
    worker: int
    state: str
    time: float


class WorkflowMonitor:
    """Interface for monitoring backends; also usable as a null monitor."""

    #: Overhead added on the task critical path per event (seconds).
    synchronous_cost: float = 0.0
    #: Overhead paid once per run (set-up, connections, schema).
    static_cost: float = 0.0

    def __init__(self) -> None:
        self.events: List[MonitoringEvent] = []

    def record(self, event: MonitoringEvent) -> float:
        """Record an event; returns the critical-path delay it causes."""
        self.events.append(event)
        return self.synchronous_cost

    def finalize(self) -> float:
        """Flush remaining state; returns any end-of-run delay."""
        return 0.0

    @property
    def event_count(self) -> int:
        return len(self.events)


class HTEXDatabaseMonitor(WorkflowMonitor):
    """Parsl's default monitoring: every event is written to a central DB.

    The database write sits on the critical path of the task lifecycle and
    the database connection is effectively serialized, which is the
    "relatively static cost of writing events to a database" the paper
    points to.
    """

    def __init__(self, *, db_write_seconds: float = 0.004,
                 setup_seconds: float = 1.5) -> None:
        super().__init__()
        self.synchronous_cost = db_write_seconds
        self.static_cost = setup_seconds


class OctopusWorkflowMonitor(WorkflowMonitor):
    """Octopus monitoring: events are buffered and published asynchronously."""

    def __init__(self, *, publish_seconds: float = 0.0003,
                 batch_size: int = 50, batch_flush_seconds: float = 0.002,
                 setup_seconds: float = 0.3) -> None:
        super().__init__()
        self.synchronous_cost = publish_seconds
        self.static_cost = setup_seconds
        self.batch_size = batch_size
        self.batch_flush_seconds = batch_flush_seconds
        self._buffered = 0
        self.flushes = 0

    def record(self, event: MonitoringEvent) -> float:
        delay = super().record(event)
        self._buffered += 1
        if self._buffered >= self.batch_size:
            # The flush happens off the critical path (async publish); only a
            # small fraction of its cost is observable by tasks.
            self._buffered = 0
            self.flushes += 1
            delay += self.batch_flush_seconds * 0.1
        return delay

    def finalize(self) -> float:
        if self._buffered:
            self.flushes += 1
            self._buffered = 0
        return self.batch_flush_seconds


@dataclass
class WorkflowResult:
    """Outcome of one engine run."""

    makespan_seconds: float
    ideal_seconds: float
    events: int
    tasks: int
    workers: int
    task_duration_seconds: float
    monitor_name: str

    @property
    def total_overhead_seconds(self) -> float:
        return max(0.0, self.makespan_seconds - self.ideal_seconds)

    @property
    def overhead_per_event_ms(self) -> float:
        if self.events == 0:
            return 0.0
        return self.total_overhead_seconds * 1000.0 / self.events


class WorkflowEngine:
    """A Parsl-like task engine with a fixed worker pool per node."""

    #: Monitoring messages per task (launch, running, result), as in Parsl.
    EVENTS_PER_TASK = 3

    def __init__(
        self,
        *,
        num_tasks: int = 128,
        num_nodes: int = 8,
        workers_per_node: int = 1,
        task_duration_seconds: float = 0.0,
        monitor: Optional[WorkflowMonitor] = None,
        resource_monitor_interval_seconds: float = 1.0,
    ) -> None:
        if num_tasks < 1 or num_nodes < 1 or workers_per_node < 1:
            raise ValueError("tasks, nodes and workers must all be >= 1")
        self.num_tasks = num_tasks
        self.num_nodes = num_nodes
        self.workers_per_node = workers_per_node
        self.task_duration_seconds = task_duration_seconds
        self.monitor = monitor or WorkflowMonitor()
        self.resource_monitor_interval_seconds = resource_monitor_interval_seconds

    @property
    def total_workers(self) -> int:
        return self.num_nodes * self.workers_per_node

    # ------------------------------------------------------------------ #
    def run(self) -> WorkflowResult:
        kernel = SimulationKernel()
        workers = kernel.resource(self.total_workers, name="workers")
        # Static monitoring set-up delays the whole run.
        start_delay = self.monitor.static_cost

        def task_process(task_id: int):
            yield kernel.acquire(workers)
            worker = task_id % self.total_workers
            for state in ("launched", "running", "done"):
                delay = self.monitor.record(
                    MonitoringEvent(task_id=task_id, worker=worker,
                                    state=state, time=kernel.now)
                )
                if delay > 0:
                    yield delay
                if state == "running" and self.task_duration_seconds > 0:
                    yield self.task_duration_seconds
            yield kernel.release(workers)

        def driver():
            if start_delay > 0:
                yield start_delay
            for task_id in range(self.num_tasks):
                kernel.spawn(task_process(task_id), name=f"task-{task_id}")

        kernel.spawn(driver(), name="driver")
        makespan = kernel.run()
        # Per-worker resource-monitoring heartbeats: each worker's monitor
        # reports a handful of samples during the run.  They are produced
        # off the task critical path, but the backend still has to absorb
        # them (the HTEX hub writes each to the database; Octopus batches
        # them), so roughly half of that processing shows up in the
        # measured makespan.
        heartbeats_per_worker = 4
        heartbeat_delay = 0.0
        for worker in range(self.total_workers):
            for _ in range(heartbeats_per_worker):
                heartbeat_delay += self.monitor.record(
                    MonitoringEvent(task_id=-1, worker=worker,
                                    state="resource", time=makespan)
                )
        makespan += heartbeat_delay * 0.5
        makespan += self.monitor.finalize()
        waves = -(-self.num_tasks // self.total_workers)  # ceil division
        ideal = waves * self.task_duration_seconds
        return WorkflowResult(
            makespan_seconds=makespan,
            ideal_seconds=ideal,
            events=self.monitor.event_count,
            tasks=self.num_tasks,
            workers=self.total_workers,
            task_duration_seconds=self.task_duration_seconds,
            monitor_name=type(self.monitor).__name__,
        )


# --------------------------------------------------------------------------- #
# Figure 8 experiment driver
# --------------------------------------------------------------------------- #
def run_monitoring_overhead_experiment(
    *,
    worker_counts=(1, 2, 4, 8, 16, 32, 64),
    task_durations_seconds=(0.0, 0.010, 0.100),
    num_tasks: int = 128,
    num_nodes: int = 8,
) -> Dict[str, Dict[float, List[dict]]]:
    """Sweep workers × duration × monitor, as Figure 8 does.

    Returns ``{"HTEX" | "Octopus": {duration: [per-worker-count results]}}``
    where each result dict has ``workers``, ``events`` and
    ``overhead_per_event_ms``.
    """
    systems = {
        "HTEX": lambda: HTEXDatabaseMonitor(),
        "Octopus": lambda: OctopusWorkflowMonitor(),
    }
    results: Dict[str, Dict[float, List[dict]]] = {}
    for system, monitor_factory in systems.items():
        results[system] = {}
        for duration in task_durations_seconds:
            series = []
            for workers in worker_counts:
                # ``workers`` in Figure 8 is workers per node on 8 nodes,
                # swept 1..64 total; we interpret it as total workers spread
                # over the nodes to keep the x-axis identical.
                per_node = max(1, workers // num_nodes) if workers >= num_nodes else 1
                nodes = num_nodes if workers >= num_nodes else workers
                engine = WorkflowEngine(
                    num_tasks=num_tasks,
                    num_nodes=nodes,
                    workers_per_node=per_node,
                    task_duration_seconds=duration,
                    monitor=monitor_factory(),
                )
                outcome = engine.run()
                series.append({
                    "workers": workers,
                    "events": outcome.events,
                    "overhead_per_event_ms": outcome.overhead_per_event_ms,
                    "makespan_seconds": outcome.makespan_seconds,
                })
            results[system][duration] = series
    return results
