"""Scientific data automation: hierarchical filesystem synchronization.

Reproduces the EDA of Section VI-B / Figure 6 (left): an FSMon instance per
parallel filesystem publishes raw events to a *local* fabric topic; a local
aggregator forwards only unique file-creation events to the *global*
Octopus topic; an Octopus trigger filtered with the Listing 1 pattern
submits a Globus-Transfer request replicating each new file to the other
filesystems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.octopus import OctopusDeployment
from repro.core.sdk import OctopusClient
from repro.faas.function import FunctionDefinition
from repro.fabric.cluster import FabricCluster
from repro.fabric.producer import FabricProducer
from repro.fabric.topic import TopicConfig
from repro.monitoring.aggregator import LocalAggregator
from repro.monitoring.fsmon import FileSystemMonitor
from repro.services.transfer import TransferService

#: The EventBridge pattern from Listing 1 of the paper.
CREATED_PATTERN = {"value": {"event_type": ["created"]}}


@dataclass
class SiteState:
    """One facility: its filesystem monitor, local fabric and aggregator."""

    name: str
    monitor: FileSystemMonitor
    local_cluster: FabricCluster
    local_producer: FabricProducer
    aggregator: LocalAggregator
    raw_events: int = 0


class DataAutomationPipeline:
    """End-to-end FS synchronization pipeline over Octopus."""

    def __init__(
        self,
        deployment: OctopusDeployment,
        client: OctopusClient,
        *,
        sites: Optional[List[str]] = None,
        global_topic: str = "fsmon-global",
        transfer_service: Optional[TransferService] = None,
    ) -> None:
        self.deployment = deployment
        self.client = client
        self.global_topic = global_topic
        self.transfer = transfer_service or TransferService()
        self.replicated: List[dict] = []
        client.register_topic(global_topic, {"num_partitions": 4})
        self._global_producer = client.producer()
        self.sites: Dict[str, SiteState] = {}
        for site in sites or ["fs1", "fs2"]:
            self.add_site(site)
        self._deploy_trigger()

    # ------------------------------------------------------------------ #
    # Site (edge) setup
    # ------------------------------------------------------------------ #
    def add_site(self, name: str) -> SiteState:
        """Stand up the edge stack of one facility."""
        local_cluster = FabricCluster(num_brokers=1, name=f"{name}-local-kafka")
        local_cluster.admin().create_topic("fsmon-raw", TopicConfig(num_partitions=1))
        local_producer = FabricProducer(local_cluster)
        aggregator = LocalAggregator(
            interesting_types=("created",),
            publish=lambda event, site=name: self._publish_global(site, event),
        )
        monitor = FileSystemMonitor(name)
        site = SiteState(
            name=name,
            monitor=monitor,
            local_cluster=local_cluster,
            local_producer=local_producer,
            aggregator=aggregator,
        )

        def on_fs_event(fs_event, site=site):
            site.raw_events += 1
            site.local_producer.send("fsmon-raw", fs_event.to_dict(), key=fs_event.path)
            site.aggregator.offer(fs_event.to_dict())

        monitor.set_sink(on_fs_event)
        self.sites[name] = site
        return site

    def _publish_global(self, site: str, event: dict) -> None:
        self._global_producer.send(
            self.global_topic, event, key=event.get("path"),
            headers={"site": site},
        )

    # ------------------------------------------------------------------ #
    # Cloud trigger
    # ------------------------------------------------------------------ #
    def _deploy_trigger(self) -> None:
        def replicate_handler(payload: dict, context) -> int:
            started = 0
            for record in payload["records"]:
                event = record["value"]
                source = event.get("filesystem", "unknown")
                for destination in self.sites:
                    if destination == source:
                        continue
                    task = self.transfer.submit(
                        source_endpoint=source,
                        destination_endpoint=destination,
                        source_path=event["path"],
                        size_bytes=event.get("size", 0),
                        principal=self.client.principal,
                    )
                    self.replicated.append({
                        "path": event["path"],
                        "source": source,
                        "destination": destination,
                        "task_id": task.task_id,
                        "status": task.status,
                    })
                    started += 1
            return started

        self.deployment.triggers.register_function(
            FunctionDefinition(name="replicate-new-files", handler=replicate_handler)
        )
        trigger = self.client.create_trigger(
            self.global_topic,
            "replicate-new-files",
            filter_pattern=CREATED_PATTERN,
            batch_size=100,
        )
        self.trigger_id = trigger["trigger_id"]

    # ------------------------------------------------------------------ #
    # Driving the pipeline
    # ------------------------------------------------------------------ #
    def ingest_instrument_output(self, site: str, directory: str, num_files: int,
                                 *, size_bytes: int = 1 << 20) -> None:
        """Simulate an instrument writing files at one site."""
        self.sites[site].monitor.simulate_experiment_output(
            directory, num_files, size_bytes=size_bytes
        )

    def process(self) -> Dict[str, int]:
        """Run the cloud triggers (the Lambda pollers) and complete transfers."""
        invocations = self.deployment.triggers.process_pending(self.trigger_id)
        self.transfer.advance()
        return invocations

    def apply_replications(self) -> int:
        """Materialise successful transfers on the destination filesystems.

        Returns the number of files copied.  Destination ``create`` events
        are suppressed by the aggregator's deduplication (same path), so
        replication does not echo back and forth between sites.
        """
        copied = 0
        for entry in self.replicated:
            task = self.transfer.task(entry["task_id"])
            entry["status"] = task.status
            if task.status != "SUCCEEDED":
                continue
            destination = self.sites[entry["destination"]]
            if not destination.monitor.exists(entry["path"]):
                # Suppress the create event the replication itself generates,
                # so synchronized files do not echo back to their source.
                destination.aggregator.mark_seen(
                    {"event_type": "created", "path": entry["path"]}
                )
                destination.monitor.create_file(entry["path"], task.size_bytes)
                copied += 1
        return copied

    def synchronize(self) -> Dict[str, int]:
        """One full pipeline pass: trigger, transfer, apply. Returns a summary."""
        self.process()
        copied = self.apply_replications()
        return {
            "transfers_submitted": len(self.replicated),
            "files_copied": copied,
            "pending_events": self.deployment.triggers.get_trigger(
                self.trigger_id
            ).mapping.pending_events(),
        }

    # ------------------------------------------------------------------ #
    def reduction_report(self) -> Dict[str, dict]:
        """Edge-aggregation statistics per site (the hierarchical filtering win)."""
        return {
            name: {
                "raw_events": site.raw_events,
                "forwarded": site.aggregator.stats.events_out,
                "reduction_factor": site.aggregator.stats.reduction_factor,
            }
            for name, site in self.sites.items()
        }

    def file_inventory(self) -> Dict[str, int]:
        """Number of files visible on each filesystem."""
        return {name: len(site.monitor.files()) for name, site in self.sites.items()}
