"""Epidemic modelling and response platform (Section VI-D).

Web-based data sources (public health reports, hospital feeds, mobility
data) are polled on timers; updates are ingested, cleaned and validated,
transformed into a common schema, and published as events.  Octopus
triggers launch model retraining/inference on new data and publish model
results (e.g. R estimates) for decision makers, with anomaly events
notifying them directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.octopus import OctopusDeployment
from repro.core.sdk import OctopusClient
from repro.faas.function import FunctionDefinition
from repro.services.storage import ObjectStore


@dataclass
class DataSource:
    """One polled web data source producing case counts per region."""

    name: str
    region: str
    fetch: Callable[[int], List[float]]
    poll_interval_hours: float = 24.0
    polls: int = 0

    def poll(self) -> dict:
        """Fetch the latest observations (one 'timer-based event')."""
        self.polls += 1
        series = [float(x) for x in self.fetch(self.polls)]
        return {
            "event_type": "data_update",
            "source": self.name,
            "region": self.region,
            "poll": self.polls,
            "cases": series,
        }


def clean_series(cases: List[float]) -> List[float]:
    """Cleaning/validation: drop negatives and NaNs, forward-fill gaps."""
    cleaned: List[float] = []
    last_valid = 0.0
    for value in cases:
        if value is None or (isinstance(value, float) and math.isnan(value)) or value < 0:
            cleaned.append(last_valid)
        else:
            cleaned.append(float(value))
            last_valid = float(value)
    return cleaned


def estimate_r(cases: List[float], *, generation_interval: int = 4) -> float:
    """Crude reproduction-number estimate from the case series growth rate."""
    usable = [c for c in cases if c > 0]
    if len(usable) < generation_interval + 1:
        return 1.0
    recent = sum(usable[-generation_interval:]) / generation_interval
    earlier = sum(usable[-2 * generation_interval:-generation_interval]) / generation_interval \
        if len(usable) >= 2 * generation_interval else usable[0]
    if earlier <= 0:
        return 1.0
    growth = recent / earlier
    return float(max(0.0, growth ** (1.0 / 1.0)))


class EpidemicPlatform:
    """The event-driven epidemic monitoring/response pipeline."""

    DATA_TOPIC = "epi-data-updates"
    RESULTS_TOPIC = "epi-model-results"

    def __init__(
        self,
        deployment: OctopusDeployment,
        client: OctopusClient,
        *,
        anomaly_threshold_r: float = 1.5,
        store: Optional[ObjectStore] = None,
    ) -> None:
        self.deployment = deployment
        self.client = client
        self.anomaly_threshold_r = anomaly_threshold_r
        self.store = store or ObjectStore()
        self.sources: Dict[str, DataSource] = {}
        self.model_results: List[dict] = []
        self.notifications: List[dict] = []
        client.register_topic(self.DATA_TOPIC, {"num_partitions": 2})
        client.register_topic(self.RESULTS_TOPIC, {"num_partitions": 2})
        self._producer = client.producer()
        self._deploy_triggers()

    # ------------------------------------------------------------------ #
    def register_source(self, source: DataSource) -> None:
        self.sources[source.name] = source

    def _deploy_triggers(self) -> None:
        def model_handler(payload: dict, context) -> int:
            """Ingest → clean → validate → model → publish results."""
            processed = 0
            for record in payload["records"]:
                update = record["value"]
                cleaned = clean_series(update["cases"])
                r_value = estimate_r(cleaned)
                result = {
                    "event_type": "model_result",
                    "region": update["region"],
                    "source": update["source"],
                    "poll": update["poll"],
                    "r_estimate": r_value,
                    "total_cases": sum(cleaned),
                }
                self.model_results.append(result)
                self.store.put(
                    "epidemic-models",
                    f"{update['region']}/poll-{update['poll']:06d}.json",
                    result,
                )
                self._producer.send(self.RESULTS_TOPIC, result, key=update["region"])
                processed += 1
            return processed

        def notify_handler(payload: dict, context) -> int:
            """Notify decision makers when the predicted trend is concerning."""
            sent = 0
            for record in payload["records"]:
                result = record["value"]
                self.notifications.append({
                    "region": result["region"],
                    "r_estimate": result["r_estimate"],
                    "message": (
                        f"R estimate for {result['region']} is "
                        f"{result['r_estimate']:.2f}; review response measures"
                    ),
                })
                sent += 1
            return sent

        triggers = self.deployment.triggers
        triggers.register_function(
            FunctionDefinition(name="epi-run-models", handler=model_handler)
        )
        triggers.register_function(
            FunctionDefinition(name="epi-notify", handler=notify_handler)
        )
        self.model_trigger = self.client.create_trigger(
            self.DATA_TOPIC, "epi-run-models",
            filter_pattern={"value": {"event_type": ["data_update"]}},
        )["trigger_id"]
        self.notify_trigger = self.client.create_trigger(
            self.RESULTS_TOPIC, "epi-notify",
            filter_pattern={
                "value": {
                    "event_type": ["model_result"],
                    "r_estimate": [{"numeric": [">=", self.anomaly_threshold_r]}],
                }
            },
        )["trigger_id"]

    # ------------------------------------------------------------------ #
    def poll_sources(self) -> int:
        """Timer tick: poll every registered source and publish updates."""
        published = 0
        for source in self.sources.values():
            update = source.poll()
            self._producer.send(self.DATA_TOPIC, update, key=source.region)
            published += 1
        return published

    def run_pipeline(self) -> dict:
        """Process pending data updates and model results through the triggers."""
        self.deployment.triggers.process_pending(self.model_trigger)
        self.deployment.triggers.process_pending(self.notify_trigger)
        return {
            "model_results": len(self.model_results),
            "notifications": len(self.notifications),
        }

    def latest_r(self, region: str) -> Optional[float]:
        estimates = [r["r_estimate"] for r in self.model_results if r["region"] == region]
        return estimates[-1] if estimates else None

    def decision_dashboard(self) -> Dict[str, dict]:
        """Latest model output per region, as decision makers would see it."""
        dashboard: Dict[str, dict] = {}
        for result in self.model_results:
            dashboard[result["region"]] = {
                "r_estimate": result["r_estimate"],
                "total_cases": result["total_cases"],
                "poll": result["poll"],
            }
        return dashboard
