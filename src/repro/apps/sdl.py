"""Self-driving laboratory (SDL) event logging and provenance.

The SDL at Argonne uses Octopus as a global log of distributed actions
spanning robots, HPC resources and data services (Section VI-A).  Every
workflow step publishes an event; the log is consumed to monitor live
experiments, reconstruct provenance chains and summarise throughput for
administrators.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.sdk import OctopusClient
from repro.fabric.consumer import ConsumerConfig

#: The stages an SDL experiment moves through, in order.
EXPERIMENT_STAGES = (
    "designed",
    "queued",
    "preparing_sample",
    "running_instrument",
    "collecting_results",
    "analyzing",
    "completed",
)


@dataclass(frozen=True)
class SDLEvent:
    """One step of one experiment on one instrument."""

    experiment_id: str
    instrument: str
    action: str
    timestamp: float
    metadata: Dict[str, Any]

    def to_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "instrument": self.instrument,
            "action": self.action,
            "timestamp": self.timestamp,
            "metadata": dict(self.metadata),
        }


class SelfDrivingLab:
    """Publishes SDL workflow events to Octopus and reads them back."""

    def __init__(self, client: OctopusClient, *, topic: str = "sdl-event-log",
                 num_partitions: int = 2) -> None:
        self.client = client
        self.topic = topic
        client.register_topic(topic, {"num_partitions": num_partitions})
        self._producer = client.producer()

    # ------------------------------------------------------------------ #
    # Event production (instruments / robots / analysis jobs)
    # ------------------------------------------------------------------ #
    def record_action(
        self,
        experiment_id: str,
        instrument: str,
        action: str,
        *,
        metadata: Optional[Dict[str, Any]] = None,
        timestamp: Optional[float] = None,
    ) -> SDLEvent:
        """Record one action; events for one experiment stay ordered."""
        event = SDLEvent(
            experiment_id=experiment_id,
            instrument=instrument,
            action=action,
            timestamp=timestamp if timestamp is not None else time.time(),
            metadata=dict(metadata or {}),
        )
        # Keyed by experiment so per-experiment ordering is preserved.
        self._producer.send(self.topic, event.to_dict(), key=experiment_id)
        return event

    def run_experiment(
        self, experiment_id: str, instrument: str, *, results: Optional[dict] = None
    ) -> List[SDLEvent]:
        """Drive one experiment through every stage (a full campaign step)."""
        events = []
        for stage in EXPERIMENT_STAGES:
            metadata = {}
            if stage == "completed" and results:
                metadata["results"] = results
            events.append(self.record_action(experiment_id, instrument, stage,
                                             metadata=metadata))
        return events

    # ------------------------------------------------------------------ #
    # Event consumption (dashboards, provenance, error detection)
    # ------------------------------------------------------------------ #
    def event_log(self) -> List[dict]:
        """The complete global log (what the dashboard renders)."""
        return self.client.read_all(self.topic, group_id="sdl-dashboard")

    def provenance(self, experiment_id: str) -> List[dict]:
        """Ordered action history of one experiment (lineage/repro record)."""
        events = [e for e in self.event_log() if e["experiment_id"] == experiment_id]
        return sorted(events, key=lambda e: e["timestamp"])

    def experiment_status(self) -> Dict[str, str]:
        """Latest stage of every experiment (the monitoring view)."""
        status: Dict[str, tuple] = {}
        for event in self.event_log():
            current = status.get(event["experiment_id"])
            if current is None or event["timestamp"] >= current[0]:
                status[event["experiment_id"]] = (event["timestamp"], event["action"])
        return {exp: action for exp, (_, action) in status.items()}

    def detect_stalled(self, *, now: Optional[float] = None,
                       timeout_seconds: float = 3600.0) -> List[str]:
        """Experiments whose last event is old and not terminal (error detection)."""
        now = now if now is not None else time.time()
        latest: Dict[str, tuple] = {}
        for event in self.event_log():
            current = latest.get(event["experiment_id"])
            if current is None or event["timestamp"] >= current[0]:
                latest[event["experiment_id"]] = (event["timestamp"], event["action"])
        return sorted(
            exp
            for exp, (ts, action) in latest.items()
            if action != "completed" and now - ts > timeout_seconds
        )

    def throughput_summary(self) -> Dict[str, int]:
        """Experiments completed per instrument (the admin throughput view)."""
        summary: Dict[str, int] = {}
        for event in self.event_log():
            if event["action"] == "completed":
                summary[event["instrument"]] = summary.get(event["instrument"], 0) + 1
        return summary

    def live_monitor(self, group_id: str = "sdl-live"):
        """A consumer positioned at the end of the log (near-real-time view)."""
        return self.client.consumer(
            [self.topic],
            ConsumerConfig(group_id=group_id, auto_offset_reset="latest"),
        )
