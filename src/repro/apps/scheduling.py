"""Online, energy-aware FaaS task scheduling (Section VI-C).

Each managed resource runs a monitor (RAPL + psutil) publishing power and
utilization samples to Octopus; the scheduler consumes those events to
maintain a model of every resource and place incoming tasks on the
resource expected to finish them with the best energy/performance
trade-off (the GreenFaaS-style scheduler the paper cites).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.sdk import OctopusClient
from repro.fabric.consumer import ConsumerConfig
from repro.monitoring.resources import ResourceUtilizationMonitor
from repro.services.compute import ComputeService, ComputeTask


@dataclass
class ResourceModel:
    """The scheduler's current belief about one resource."""

    name: str
    cpu_percent: float = 0.0
    power_watts: float = 0.0
    running_tasks: int = 0
    samples_seen: int = 0
    completed_tasks: int = 0
    total_runtime_seconds: float = 0.0
    total_energy_joules: float = 0.0

    @property
    def mean_task_runtime(self) -> float:
        if self.completed_tasks == 0:
            return 1.0
        return self.total_runtime_seconds / self.completed_tasks

    @property
    def energy_per_task(self) -> float:
        if self.completed_tasks == 0:
            return self.power_watts or 100.0
        return self.total_energy_joules / self.completed_tasks


class EnergyAwareScheduler:
    """Consumes monitoring events and places tasks on compute endpoints."""

    def __init__(
        self,
        client: OctopusClient,
        compute: ComputeService,
        *,
        topic: str = "resource-telemetry",
        power_weight: float = 0.5,
    ) -> None:
        if not 0.0 <= power_weight <= 1.0:
            raise ValueError("power_weight must be in [0, 1]")
        self.client = client
        self.compute = compute
        self.topic = topic
        self.power_weight = power_weight
        self.models: Dict[str, ResourceModel] = {}
        self.placements: List[dict] = []
        # One consumer group per telemetry topic: schedulers watching
        # different topics must not share a group, or a scheduler that
        # stops polling would hold the other's cooperative rebalance open.
        self._consumer = client.consumer(
            [topic],
            ConsumerConfig(
                group_id=f"faas-scheduler-{topic}", auto_offset_reset="earliest"
            ),
        )

    # ------------------------------------------------------------------ #
    # Telemetry ingestion
    # ------------------------------------------------------------------ #
    def ingest_telemetry(self) -> int:
        """Consume pending monitoring events; returns how many were applied."""
        applied = 0
        while True:
            records = self._consumer.poll_flat()
            if not records:
                break
            for record in records:
                sample = record.value
                model = self.models.setdefault(
                    sample["resource"], ResourceModel(name=sample["resource"])
                )
                model.cpu_percent = sample["cpu_percent"]
                model.power_watts = sample["power_watts"]
                model.running_tasks = sample["running_tasks"]
                model.samples_seen += 1
                applied += 1
        return applied

    def record_completion(self, task: ComputeTask) -> None:
        """Feed task outcomes back into the performance/energy model."""
        model = self.models.setdefault(task.endpoint, ResourceModel(name=task.endpoint))
        model.completed_tasks += 1
        model.total_runtime_seconds += task.runtime_seconds
        model.total_energy_joules += task.energy_joules

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def score(self, model: ResourceModel) -> float:
        """Lower is better: weighted blend of expected runtime and energy.

        Runtime expectation grows with current utilization; energy
        expectation follows the observed per-task energy.
        """
        load_penalty = 1.0 + model.cpu_percent / 100.0
        runtime_component = model.mean_task_runtime * load_penalty
        energy_component = model.energy_per_task * load_penalty
        return (
            (1.0 - self.power_weight) * runtime_component
            + self.power_weight * energy_component / 100.0
        )

    def choose_resource(self) -> str:
        """Pick the best resource according to the current models."""
        if not self.models:
            endpoints = self.compute.endpoints()
            if not endpoints:
                raise RuntimeError("no compute endpoints registered")
            return endpoints[0].name
        return min(self.models.values(), key=self.score).name

    def submit_task(self, function_name: str, payload=None, *,
                    estimated_seconds: float = 1.0) -> ComputeTask:
        """Place one task using fresh telemetry."""
        self.ingest_telemetry()
        resource = self.choose_resource()
        task = self.compute.submit(
            resource, function_name, payload, estimated_seconds=estimated_seconds
        )
        self.placements.append({
            "task_id": task.task_id,
            "resource": resource,
            "function": function_name,
        })
        return task

    def placement_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for placement in self.placements:
            counts[placement["resource"]] = counts.get(placement["resource"], 0) + 1
        return counts


class SchedulingApplication:
    """Wires monitors, the telemetry topic, the compute service and the scheduler."""

    def __init__(
        self,
        client: OctopusClient,
        *,
        resources: Optional[List[str]] = None,
        topic: str = "resource-telemetry",
        power_weight: float = 0.5,
    ) -> None:
        self.client = client
        self.topic = topic
        client.register_topic(topic, {"num_partitions": 4})
        self._producer = client.producer()
        self.compute = ComputeService()
        self.monitors: Dict[str, ResourceUtilizationMonitor] = {}
        for index, name in enumerate(resources or ["edge-node", "campus-cluster", "hpc-system"]):
            cores = 8 * (4 ** index)
            self.compute.register_endpoint(
                name, cores=cores, relative_speed=0.5 + 0.75 * index,
                power_watts_per_core=5.0 - 1.5 * index,
            )
            self.monitors[name] = ResourceUtilizationMonitor(
                name, num_cores=cores,
                sink=lambda sample, name=name: self._producer.send(
                    topic, sample, key=name
                ),
                seed=17 + index,
            )
        self.scheduler = EnergyAwareScheduler(
            client, self.compute, topic=topic, power_weight=power_weight
        )
        self.compute.on_task_complete = self._on_complete

    def _on_complete(self, task: ComputeTask) -> None:
        self.scheduler.record_completion(task)
        monitor = self.monitors.get(task.endpoint)
        if monitor is not None:
            monitor.task_finished()

    # ------------------------------------------------------------------ #
    def collect_telemetry(self, samples_per_resource: int = 1) -> int:
        """Every monitor publishes ``samples_per_resource`` samples."""
        published = 0
        for monitor in self.monitors.values():
            monitor.sample_window(samples_per_resource)
            published += samples_per_resource
        return published

    def run_workload(self, num_tasks: int, *, estimated_seconds: float = 1.0) -> List[ComputeTask]:
        """Submit a stream of tasks, interleaving telemetry and execution."""
        tasks: List[ComputeTask] = []
        for index in range(num_tasks):
            if index % 5 == 0:
                self.collect_telemetry()
            task = self.scheduler.submit_task(
                "analysis", {"index": index}, estimated_seconds=estimated_seconds
            )
            self.monitors[task.endpoint].task_started()
            tasks.append(task)
            self.compute.tick()
        self.compute.drain()
        return tasks
