"""Trigger management.

A trigger couples a topic, an optional EventBridge filter pattern and a
function; Octopus deploys the function, wires an event-source mapping with
its own consumer group, creates the IAM role/policy and log group, and
auto-scales invocations with processing pressure (Section IV-D).  The
manager here implements the ``PUT /trigger/``, ``GET /triggers/`` and
``POST /trigger/<trigger_id>`` routes and drives the mappings.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.auth.iam import IamService, PolicyStatement
from repro.coordination.metadata import ClusterMetadataRegistry
from repro.core.errors import NotAuthorizedError, NotFoundError, ValidationError
from repro.fabric.cluster import FabricCluster
from repro.faas.eventsource import EventSourceConfig, EventSourceMapping, MAX_BATCH_SIZE
from repro.faas.executor import InvocationResult, LambdaExecutor
from repro.faas.function import FunctionDefinition, FunctionRegistry
from repro.faas.logs import LogService
from repro.faas.patterns import EventPattern, PatternError
from repro.faas.scaling import ProcessingPressureScaler, ScalingPolicy

_trigger_ids = itertools.count(1)


@dataclass
class TriggerSpec:
    """User-supplied trigger definition."""

    topic: str
    function_name: str
    filter_pattern: Optional[dict] = None
    batch_size: int = 100
    batch_window_seconds: float = 0.0
    enabled: bool = True

    def validate(self) -> None:
        if not self.topic:
            raise ValidationError("trigger must name a topic")
        if not self.function_name:
            raise ValidationError("trigger must name a function")
        if not 1 <= self.batch_size <= MAX_BATCH_SIZE:
            raise ValidationError(f"batch_size must be in [1, {MAX_BATCH_SIZE}]")
        if self.batch_window_seconds < 0:
            raise ValidationError("batch_window_seconds must be >= 0")
        if self.filter_pattern is not None:
            try:
                EventPattern(self.filter_pattern)
            except PatternError as exc:
                raise ValidationError(f"invalid filter pattern: {exc}") from exc


@dataclass
class DeployedTrigger:
    """A registered trigger and its runtime resources."""

    trigger_id: str
    owner: str
    spec: TriggerSpec
    mapping: EventSourceMapping
    scaler: ProcessingPressureScaler
    iam_role: str
    log_group: str
    concurrency: int = 1
    invocations: List[InvocationResult] = field(default_factory=list)

    def describe(self) -> dict:
        return {
            "trigger_id": self.trigger_id,
            "owner": self.owner,
            "topic": self.spec.topic,
            "function": self.spec.function_name,
            "filter_pattern": self.spec.filter_pattern,
            "batch_size": self.spec.batch_size,
            "batch_window_seconds": self.spec.batch_window_seconds,
            "enabled": self.mapping.enabled,
            "iam_role": self.iam_role,
            "log_group": self.log_group,
            "concurrency": self.concurrency,
            "pending_events": self.mapping.pending_events(),
            "stats": vars(self.mapping.stats),
        }


class TriggerManager:
    """Registers triggers and drives their event-source mappings."""

    def __init__(
        self,
        cluster: FabricCluster,
        metadata: ClusterMetadataRegistry,
        iam: IamService,
        *,
        functions: Optional[FunctionRegistry] = None,
        executor: Optional[LambdaExecutor] = None,
        logs: Optional[LogService] = None,
        authorize: Optional[Callable[[str, str], bool]] = None,
        scaling_policy: Optional[ScalingPolicy] = None,
    ) -> None:
        self.cluster = cluster
        self.metadata = metadata
        self.iam = iam
        self.functions = functions or FunctionRegistry()
        self.logs = logs or LogService()
        self.executor = executor or LambdaExecutor(self.functions, self.logs)
        self._authorize = authorize or (lambda principal, topic: True)
        self.scaling_policy = scaling_policy or ScalingPolicy()
        self._triggers: Dict[str, DeployedTrigger] = {}

    # ------------------------------------------------------------------ #
    # Function deployment
    # ------------------------------------------------------------------ #
    def register_function(self, definition: FunctionDefinition) -> FunctionDefinition:
        """Deploy a function so triggers may reference it by name."""
        return self.functions.register(definition)

    # ------------------------------------------------------------------ #
    # Trigger lifecycle (OWS routes)
    # ------------------------------------------------------------------ #
    def create_trigger(self, principal: str, spec: TriggerSpec) -> DeployedTrigger:
        """``PUT /trigger/``: deploy a trigger for the caller."""
        spec.validate()
        if spec.function_name not in self.functions:
            raise NotFoundError(f"function {spec.function_name!r} is not deployed")
        if not self.cluster.has_topic(spec.topic):
            raise NotFoundError(f"topic {spec.topic!r} does not exist")
        if not self._authorize(principal, spec.topic):
            raise NotAuthorizedError(
                f"{principal!r} may not attach triggers to topic {spec.topic!r}"
            )
        trigger_id = f"trigger-{next(_trigger_ids):06d}"
        iam_role = f"octopus-trigger-role-{trigger_id}"
        self.iam.create_identity(iam_role, kind="role")
        self.iam.attach_policy(
            iam_role,
            PolicyStatement.allow(
                ["kafka-cluster:ReadData", "kafka-cluster:DescribeTopic"],
                [f"topic/{spec.topic}"],
            ),
        )
        self.iam.attach_policy(
            iam_role,
            PolicyStatement.allow(["logs:PutLogEvents"], [f"log-group/{trigger_id}"]),
        )
        log_group = f"/aws/lambda/{spec.function_name}"
        self.logs.group(log_group)
        mapping = EventSourceMapping(
            self.cluster,
            spec.topic,
            spec.function_name,
            self.executor,
            EventSourceConfig(
                batch_size=spec.batch_size,
                batch_window_seconds=spec.batch_window_seconds,
                filter_pattern=spec.filter_pattern,
            ),
            principal=principal,
            mapping_id=trigger_id,
        )
        if not spec.enabled:
            mapping.disable()
        num_partitions = self.cluster.topic(spec.topic).num_partitions
        deployed = DeployedTrigger(
            trigger_id=trigger_id,
            owner=principal,
            spec=spec,
            mapping=mapping,
            scaler=ProcessingPressureScaler(self.scaling_policy, partitions=num_partitions),
            iam_role=iam_role,
            log_group=log_group,
            concurrency=min(self.scaling_policy.initial_concurrency, num_partitions),
        )
        self._triggers[trigger_id] = deployed
        self.metadata.register_trigger(trigger_id, {
            "owner": principal,
            "topic": spec.topic,
            "function": spec.function_name,
            "batch_size": spec.batch_size,
            "filter_pattern": spec.filter_pattern,
        })
        return deployed

    def list_triggers(self, principal: Optional[str] = None) -> List[dict]:
        """``GET /triggers/``: describe the caller's triggers."""
        out = []
        for trigger in self._triggers.values():
            if principal is None or trigger.owner == principal:
                out.append(trigger.describe())
        return out

    def get_trigger(self, trigger_id: str) -> DeployedTrigger:
        try:
            return self._triggers[trigger_id]
        except KeyError:
            raise NotFoundError(f"trigger {trigger_id!r} does not exist") from None

    def update_trigger(self, principal: str, trigger_id: str, updates: dict) -> dict:
        """``POST /trigger/<trigger_id>``: change batch size/window/filter/enabled."""
        trigger = self.get_trigger(trigger_id)
        if trigger.owner != principal:
            raise NotAuthorizedError("only the trigger owner may update it")
        allowed = {"batch_size", "batch_window_seconds", "filter_pattern", "enabled"}
        unknown = set(updates) - allowed
        if unknown:
            raise ValidationError(f"unknown trigger settings: {sorted(unknown)}")
        # Validate a copy first: a rejected update must leave the deployed
        # trigger's spec untouched.
        spec = replace(trigger.spec, **updates)
        spec.validate()
        trigger.spec = spec
        mapping = trigger.mapping
        mapping.config = EventSourceConfig(
            batch_size=spec.batch_size,
            batch_window_seconds=spec.batch_window_seconds,
            filter_pattern=spec.filter_pattern,
        )
        mapping.pattern = EventPattern(spec.filter_pattern)
        mapping.config.validate()
        if spec.enabled:
            mapping.enable()
        else:
            mapping.disable()
        self.metadata.register_trigger(trigger_id, {
            "owner": trigger.owner,
            "topic": spec.topic,
            "function": spec.function_name,
            "batch_size": spec.batch_size,
            "filter_pattern": spec.filter_pattern,
        })
        return trigger.describe()

    def delete_trigger(self, principal: str, trigger_id: str) -> dict:
        trigger = self.get_trigger(trigger_id)
        if trigger.owner != principal:
            raise NotAuthorizedError("only the trigger owner may delete it")
        trigger.mapping.close()
        del self._triggers[trigger_id]
        self.metadata.unregister_trigger(trigger_id)
        return {"trigger_id": trigger_id, "status": "deleted"}

    # ------------------------------------------------------------------ #
    # Runtime
    # ------------------------------------------------------------------ #
    def process_pending(self, trigger_id: Optional[str] = None,
                        max_polls_per_trigger: int = 100) -> Dict[str, int]:
        """Drive event-source mappings until their backlogs drain.

        In the real system Lambda pollers run continuously; in this
        in-process reproduction the caller (application, test or benchmark)
        pumps them explicitly.  Returns the number of successful
        invocations per trigger.
        """
        targets = (
            [self.get_trigger(trigger_id)] if trigger_id else list(self._triggers.values())
        )
        invocations: Dict[str, int] = {}
        for trigger in targets:
            results = trigger.mapping.drain(max_polls=max_polls_per_trigger)
            trigger.invocations.extend(results)
            invocations[trigger.trigger_id] = sum(1 for r in results if r.success)
        return invocations

    def evaluate_scaling(self) -> Dict[str, int]:
        """Re-evaluate processing pressure for every trigger (the 1-minute tick).

        Decisions are applied to each mapping's poller fleet, not just
        recorded: scaling up joins consumers to the trigger's group and
        scaling down retires them, and the cooperative group coordinator
        moves only the minimal partition delta per event, so the pollers
        that stay keep draining their retained partitions throughout.
        A decision of 0 (no pending work) keeps one idle poller alive so
        the mapping notices new events without a cold join.
        """
        decisions: Dict[str, int] = {}
        for trigger in self._triggers.values():
            if not trigger.mapping.enabled:
                # A disabled mapping never polls, so spawned pollers could
                # not even acknowledge the rebalance — hold the fleet as
                # is until the trigger is re-enabled.
                decisions[trigger.trigger_id] = trigger.concurrency
                continue
            backlog = trigger.mapping.pending_events()
            decision = trigger.scaler.next_concurrency(
                backlog,
                in_flight=self.executor.in_flight_for(trigger.spec.function_name),
                current=max(trigger.concurrency, 1),
            )
            applied = trigger.mapping.set_concurrency(max(1, decision))
            # Record what actually runs (the mapping clamps to the live
            # partition count); 0 is preserved as the idle signal even
            # though one poller stays alive to notice new events.
            trigger.concurrency = applied if decision > 0 else 0
            decisions[trigger.trigger_id] = trigger.concurrency
        return decisions
