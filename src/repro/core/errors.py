"""Error types surfaced by the Octopus control plane and SDK."""

from __future__ import annotations


class OctopusError(Exception):
    """Base class for Octopus control-plane errors."""

    #: HTTP status the web service maps this error to.
    status_code: int = 500


class ValidationError(OctopusError):
    """The request payload or parameters are invalid."""

    status_code = 400


class NotAuthorizedError(OctopusError):
    """The caller's token is missing, invalid or lacks permission."""

    status_code = 403


class NotFoundError(OctopusError):
    """The referenced topic, trigger or key does not exist."""

    status_code = 404


class ConflictError(OctopusError):
    """The resource exists already and cannot be re-created."""

    status_code = 409
