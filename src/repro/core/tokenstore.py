"""Local SQLite-backed token and credential cache.

The Octopus SDK "includes a Globus Auth login manager to perform an
authentication flow and cache tokens on the user's behalf.  Tokens and MSK
secrets are stored in a local SQLite database and automatically refreshed
as needed" (Section IV-E).  :class:`TokenStore` is that database; it can
live on disk (``~/.octopus/storage.db`` equivalent) or in memory for
tests.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from typing import Any, Dict, Optional


class TokenStore:
    """Persistent key/value store for tokens and MSK credentials."""

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        # check_same_thread=False + our own lock lets producer/consumer
        # threads share the cache the way the SDK does.
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.RLock()
        with self._lock:
            self._conn.execute(
                """
                CREATE TABLE IF NOT EXISTS tokens (
                    principal TEXT NOT NULL,
                    resource_server TEXT NOT NULL,
                    access_token TEXT NOT NULL,
                    refresh_token TEXT,
                    expires_at REAL NOT NULL,
                    scopes TEXT NOT NULL,
                    PRIMARY KEY (principal, resource_server)
                )
                """
            )
            self._conn.execute(
                """
                CREATE TABLE IF NOT EXISTS credentials (
                    principal TEXT PRIMARY KEY,
                    payload TEXT NOT NULL,
                    created_at REAL NOT NULL
                )
                """
            )
            self._conn.commit()

    # ------------------------------------------------------------------ #
    # Tokens
    # ------------------------------------------------------------------ #
    def store_token(
        self,
        principal: str,
        resource_server: str,
        access_token: str,
        *,
        refresh_token: Optional[str] = None,
        expires_at: float,
        scopes: Optional[list] = None,
    ) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO tokens VALUES (?, ?, ?, ?, ?, ?)",
                (
                    principal,
                    resource_server,
                    access_token,
                    refresh_token,
                    float(expires_at),
                    json.dumps(scopes or []),
                ),
            )
            self._conn.commit()

    def get_token(self, principal: str, resource_server: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            row = self._conn.execute(
                "SELECT access_token, refresh_token, expires_at, scopes "
                "FROM tokens WHERE principal = ? AND resource_server = ?",
                (principal, resource_server),
            ).fetchone()
        if row is None:
            return None
        return {
            "access_token": row[0],
            "refresh_token": row[1],
            "expires_at": row[2],
            "scopes": json.loads(row[3]),
        }

    def token_is_fresh(
        self, principal: str, resource_server: str, *, margin_seconds: float = 60.0,
        now: Optional[float] = None,
    ) -> bool:
        """Whether a cached token exists and will stay valid past ``margin``."""
        entry = self.get_token(principal, resource_server)
        if entry is None:
            return False
        now = now if now is not None else time.time()
        return entry["expires_at"] - margin_seconds > now

    def delete_token(self, principal: str, resource_server: str) -> None:
        with self._lock:
            self._conn.execute(
                "DELETE FROM tokens WHERE principal = ? AND resource_server = ?",
                (principal, resource_server),
            )
            self._conn.commit()

    # ------------------------------------------------------------------ #
    # MSK credentials
    # ------------------------------------------------------------------ #
    def store_credentials(self, principal: str, credentials: Dict[str, Any]) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO credentials VALUES (?, ?, ?)",
                (principal, json.dumps(credentials), time.time()),
            )
            self._conn.commit()

    def get_credentials(self, principal: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM credentials WHERE principal = ?", (principal,)
            ).fetchone()
        return json.loads(row[0]) if row else None

    def delete_credentials(self, principal: str) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM credentials WHERE principal = ?", (principal,))
            self._conn.commit()

    # ------------------------------------------------------------------ #
    def principals(self) -> list:
        with self._lock:
            rows = self._conn.execute("SELECT DISTINCT principal FROM tokens").fetchall()
        return sorted(r[0] for r in rows)

    def close(self) -> None:
        with self._lock:
            self._conn.close()
