"""Login manager: authentication flow plus token caching and refresh.

The SDK's login manager performs the Globus Auth flow once, caches the
resulting tokens (and later the MSK key/secret) in the local SQLite store,
and transparently refreshes tokens as they approach expiry
(Section IV-E of the paper).
"""

from __future__ import annotations

import time
from typing import Optional

from repro.auth.oauth import AccessToken, AuthorizationServer, InvalidTokenError
from repro.core.service import OWS_SCOPE
from repro.core.tokenstore import TokenStore

RESOURCE_SERVER = "octopus"


class LoginManager:
    """Obtains and caches OWS access tokens for one user."""

    def __init__(
        self,
        auth: AuthorizationServer,
        store: Optional[TokenStore] = None,
        *,
        refresh_margin_seconds: float = 300.0,
    ) -> None:
        self.auth = auth
        self.store = store or TokenStore()
        self.refresh_margin_seconds = refresh_margin_seconds
        self._principal: Optional[str] = None

    # ------------------------------------------------------------------ #
    @property
    def principal(self) -> Optional[str]:
        return self._principal

    def login(self, username: str, domain: str) -> str:
        """Run the authentication flow (or reuse a cached token).

        Returns the access token to present to the OWS.
        """
        principal = f"{username}@{domain}"
        self._principal = principal
        cached = self.store.get_token(principal, RESOURCE_SERVER)
        if cached is not None and self.store.token_is_fresh(
            principal, RESOURCE_SERVER, margin_seconds=self.refresh_margin_seconds
        ):
            return cached["access_token"]
        if cached is not None and cached.get("refresh_token"):
            try:
                refreshed = self.auth.refresh(cached["refresh_token"])
                self._cache(principal, refreshed)
                return refreshed.token
            except InvalidTokenError:
                pass  # fall through to a fresh login
        token = self.auth.login(username, domain, [OWS_SCOPE])
        self._cache(principal, token)
        return token.token

    def get_token(self) -> str:
        """Return a currently valid token, refreshing if necessary."""
        if self._principal is None:
            raise RuntimeError("login() must be called before get_token()")
        cached = self.store.get_token(self._principal, RESOURCE_SERVER)
        if cached is None:
            raise RuntimeError("no cached token; call login() first")
        if cached["expires_at"] - self.refresh_margin_seconds > time.time():
            return cached["access_token"]
        if cached.get("refresh_token"):
            refreshed = self.auth.refresh(cached["refresh_token"])
            self._cache(self._principal, refreshed)
            return refreshed.token
        raise InvalidTokenError("cached token expired and no refresh token available")

    def logout(self) -> None:
        """Revoke and forget the cached token."""
        if self._principal is None:
            return
        cached = self.store.get_token(self._principal, RESOURCE_SERVER)
        if cached is not None:
            self.auth.revoke(cached["access_token"])
            self.store.delete_token(self._principal, RESOURCE_SERVER)
        self.store.delete_credentials(self._principal)

    # ------------------------------------------------------------------ #
    def _cache(self, principal: str, token: AccessToken) -> None:
        self.store.store_token(
            principal,
            RESOURCE_SERVER,
            token.token,
            refresh_token=token.refresh_token,
            expires_at=token.expires_at,
            scopes=token.scopes,
        )
