"""Topic provisioning and sharing.

Implements the topic half of the OWS API (Section IV-B): registering a
topic creates it on the fabric cluster, records its ownership in the
ZooKeeper-backed metadata registry, and grants the owner READ, WRITE and
DESCRIBE; owners can then re-configure, grow, share or release the topic.

Ownership is enforced *inside* the fabric control plane: every mutation
travels through a per-principal :class:`~repro.fabric.admin.FabricAdmin`
whose ``(principal, operation, resource)`` authorization hook consults
the metadata registry's ownership records.  The service layer no longer
pre-checks ownership itself, so SDK-less callers holding a
``FabricAdmin`` built by :meth:`TopicService.admin_for` are governed by
exactly the same rules as the REST routes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.auth.acl import AclStore, Operation
from repro.coordination.metadata import ClusterMetadataRegistry
from repro.core.errors import NotAuthorizedError, NotFoundError, ValidationError
from repro.fabric.admin import FabricAdmin
from repro.fabric.cluster import FabricCluster
from repro.fabric.errors import (
    AuthorizationError,
    InvalidConfigError,
    TopicAlreadyExistsError,
    UnknownTopicError,
)
from repro.fabric.topic import TopicConfig


class TopicService:
    """Provision, configure, share and release topics on behalf of users."""

    def __init__(
        self,
        cluster: FabricCluster,
        metadata: ClusterMetadataRegistry,
        acls: AclStore,
    ) -> None:
        self.cluster = cluster
        self.metadata = metadata
        self.acls = acls

    # ------------------------------------------------------------------ #
    # Control-plane authorization
    # ------------------------------------------------------------------ #
    def admin_for(self, principal: Optional[str]) -> FabricAdmin:
        """A control-plane client for ``principal``, governed by ownership.

        Admins are cheap per-principal views (see :class:`FabricAdmin`),
        so one is built per call; every operation it performs flows
        through :meth:`authorize_admin`.
        """
        return self.cluster.admin(principal=principal, authorizer=self.authorize_admin)

    def authorize_admin(
        self, principal: Optional[str], operation: str, resource: str
    ) -> bool:
        """The ``FabricAdmin`` hook: owners may manage their own topics.

        ``CREATE_TOPIC`` is allowed for unregistered names (registration
        claims ownership); every other topic operation requires the
        caller to be the registered owner.  Non-topic resources (brokers,
        cluster-wide operations) stay off-limits to user principals.
        """
        if principal is None or not resource.startswith("topic:"):
            return False
        topic = resource[len("topic:"):]
        if not self.metadata.topic_exists(topic):
            return operation == "CREATE_TOPIC"
        return self.metadata.topic_owner(topic) == principal

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register_topic(
        self, principal: str, topic: str, config: Optional[dict] = None
    ) -> dict:
        """``PUT /topic/<topic>``: create the topic and grant owner access.

        Idempotent for the owner: re-registering an owned topic returns its
        description; attempting to register someone else's topic fails.
        """
        self._validate_topic_name(topic)
        if self.metadata.topic_exists(topic):
            if self.metadata.topic_owner(topic) != principal:
                raise NotAuthorizedError(
                    f"topic {topic!r} is already owned by another identity"
                )
            return self.describe_topic(principal, topic)
        topic_config = self._parse_config(config)
        try:
            self.admin_for(principal).create_topic(topic, topic_config)
        except TopicAlreadyExistsError:
            # The fabric already has it (e.g. re-registration after metadata
            # loss); ownership is what matters, fall through.
            pass
        except AuthorizationError as exc:
            raise NotAuthorizedError(str(exc)) from exc
        self.metadata.register_topic(topic, owner=principal, config=topic_config.to_dict())
        self.metadata.grant(topic, principal, ["READ", "WRITE", "DESCRIBE"])
        self.acls.grant_owner(principal, topic)
        return self.describe_topic(principal, topic)

    def release_topic(self, principal: str, topic: str) -> dict:
        """``DELETE /topic/<topic>``: remove the topic and all grants.

        Ownership is enforced by the admin authorization hook (which runs
        before the fabric even looks the topic up), not by this layer.
        """
        if not self.metadata.topic_exists(topic):
            raise NotFoundError(f"topic {topic!r} is not registered")
        try:
            self.admin_for(principal).delete_topic(topic)
        except AuthorizationError as exc:
            raise NotAuthorizedError(f"only the owner may manage topic {topic!r}") from exc
        except UnknownTopicError:
            # Registered but absent from the fabric (metadata recovered
            # from a loss): nothing to delete there, ownership was still
            # checked by the hook above.
            pass
        self.metadata.unregister_topic(topic)
        self.acls.revoke_topic(topic)
        return {"topic": topic, "status": "deleted"}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def list_topics(self, principal: str) -> List[str]:
        """``GET /topics``: topics the caller may DESCRIBE."""
        return self.acls.topics_for(principal, Operation.DESCRIBE)

    def describe_topic(self, principal: str, topic: str) -> dict:
        """``GET /topic/<topic>``: configuration and status of one topic."""
        self._require_access(principal, topic, Operation.DESCRIBE)
        description = self.cluster.topic(topic).describe()
        description["owner"] = self.metadata.topic_owner(topic)
        description["acl"] = self.metadata.acl(topic)
        return description

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def configure_topic(self, principal: str, topic: str, updates: dict) -> dict:
        """``POST /topic/<topic>``: update replication/retention/etc."""
        if not self.metadata.topic_exists(topic):
            raise NotFoundError(f"topic {topic!r} is not registered")
        if not updates:
            raise ValidationError("no configuration updates supplied")
        try:
            config = self.admin_for(principal).update_topic_config(topic, **updates)
        except AuthorizationError as exc:
            raise NotAuthorizedError(f"only the owner may manage topic {topic!r}") from exc
        except UnknownTopicError as exc:
            # Registered in metadata but missing from the fabric (metadata
            # recovered from a loss): surface as the API's own 404.
            raise NotFoundError(str(exc)) from exc
        except (TypeError, InvalidConfigError) as exc:
            raise ValidationError(str(exc)) from exc
        self.metadata.set_topic_config(topic, config.to_dict())
        return {"topic": topic, "config": config.to_dict()}

    def set_partitions(self, principal: str, topic: str, num_partitions: int) -> dict:
        """``POST /topic/<topic>/partitions``."""
        if not self.metadata.topic_exists(topic):
            raise NotFoundError(f"topic {topic!r} is not registered")
        try:
            config = self.admin_for(principal).set_partitions(topic, int(num_partitions))
        except AuthorizationError as exc:
            raise NotAuthorizedError(f"only the owner may manage topic {topic!r}") from exc
        except UnknownTopicError as exc:
            raise NotFoundError(str(exc)) from exc
        except (ValueError, InvalidConfigError) as exc:
            raise ValidationError(str(exc)) from exc
        self.metadata.set_topic_config(topic, config.to_dict())
        return {"topic": topic, "num_partitions": config.num_partitions}

    # ------------------------------------------------------------------ #
    # Sharing
    # ------------------------------------------------------------------ #
    def grant_user(
        self, principal: str, topic: str, user: str,
        operations: Optional[List[str]] = None,
    ) -> Dict[str, List[str]]:
        """``POST /topic/<topic>/user`` with ``action=grant``.

        Sharing mutates the ACL/metadata stores, not fabric metadata, so
        it is the one management path that does not travel through a
        :class:`FabricAdmin`; ownership is checked directly.
        """
        self._require_owner(principal, topic)
        operations = operations or ["READ", "DESCRIBE"]
        acl = self.metadata.grant(topic, user, operations)
        self.acls.grant(user, topic, operations)
        return acl

    def revoke_user(
        self, principal: str, topic: str, user: str,
        operations: Optional[List[str]] = None,
    ) -> Dict[str, List[str]]:
        """``POST /topic/<topic>/user`` with ``action=revoke``."""
        self._require_owner(principal, topic)
        if user == self.metadata.topic_owner(topic):
            raise ValidationError("the topic owner's access cannot be revoked")
        acl = self.metadata.revoke(topic, user, operations)
        self.acls.revoke(user, topic, operations)
        return acl

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate_topic_name(topic: str) -> None:
        if not topic or len(topic) > 249:
            raise ValidationError("topic name must be 1-249 characters")
        allowed = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")
        if not set(topic) <= allowed:
            raise ValidationError(
                f"topic name {topic!r} may only contain alphanumerics, '.', '_' and '-'"
            )

    def _parse_config(self, config: Optional[dict]) -> TopicConfig:
        try:
            return TopicConfig.from_dict(config or {})
        except (TypeError, InvalidConfigError) as exc:
            raise ValidationError(str(exc)) from exc

    def _require_owner(self, principal: str, topic: str) -> None:
        if not self.metadata.topic_exists(topic):
            raise NotFoundError(f"topic {topic!r} is not registered")
        if self.metadata.topic_owner(topic) != principal:
            raise NotAuthorizedError(f"only the owner may manage topic {topic!r}")

    def _require_access(self, principal: str, topic: str, operation: Operation) -> None:
        if not self.metadata.topic_exists(topic):
            raise NotFoundError(f"topic {topic!r} is not registered")
        if self.metadata.topic_owner(topic) == principal:
            return
        if not self.acls.is_authorized(principal, operation, topic):
            raise NotAuthorizedError(
                f"{principal!r} may not {operation.value} topic {topic!r}"
            )
