"""One-call assembly of a complete Octopus deployment.

The paper's Figure 2 shows the full architecture: users authenticate
against Globus Auth, the web service brokers credentials and topics, the
MSK cluster moves events, triggers act on them, and events can be
persisted to cloud storage.  :class:`OctopusDeployment` builds that whole
stack in-process with a single call so that examples, applications, tests
and benchmarks all start from the same wiring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.auth.acl import AclStore
from repro.auth.iam import IamService
from repro.auth.identity import IdentityStore
from repro.auth.oauth import AuthorizationServer
from repro.coordination.metadata import ClusterMetadataRegistry
from repro.coordination.zookeeper import ZooKeeperEnsemble
from repro.core.sdk import OctopusClient
from repro.core.service import OctopusWebService
from repro.core.tokenstore import TokenStore
from repro.core.triggers import TriggerManager
from repro.faas.executor import LambdaExecutor
from repro.faas.function import FunctionRegistry
from repro.faas.logs import LogService
from repro.fabric.cluster import FabricCluster


@dataclass
class OctopusDeployment:
    """Every component of a running Octopus instance, wired together."""

    cluster: FabricCluster
    zookeeper: ZooKeeperEnsemble
    metadata: ClusterMetadataRegistry
    identities: IdentityStore
    auth: AuthorizationServer
    iam: IamService
    acls: AclStore
    functions: FunctionRegistry
    logs: LogService
    executor: LambdaExecutor
    triggers: TriggerManager
    service: OctopusWebService

    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls,
        *,
        num_brokers: int = 2,
        instance_type: str = "kafka.m5.large",
        vcpus_per_broker: int = 2,
        memory_gb_per_broker: int = 8,
        cluster_name: str = "octopus-msk",
        enforce_acls: bool = True,
    ) -> "OctopusDeployment":
        """Stand up a full deployment (the Table II *baseline* by default)."""
        identities = IdentityStore()
        auth = AuthorizationServer(identities)
        iam = IamService()
        zookeeper = ZooKeeperEnsemble()
        metadata = ClusterMetadataRegistry(zookeeper)
        acls = AclStore(group_resolver=identities.groups_for)
        cluster = FabricCluster(
            num_brokers=num_brokers,
            instance_type=instance_type,
            vcpus_per_broker=vcpus_per_broker,
            memory_gb_per_broker=memory_gb_per_broker,
            name=cluster_name,
        )
        functions = FunctionRegistry()
        logs = LogService()
        executor = LambdaExecutor(functions, logs)
        triggers = TriggerManager(
            cluster,
            metadata,
            iam,
            functions=functions,
            executor=executor,
            logs=logs,
            authorize=lambda principal, topic: acls.is_authorized(principal, "READ", topic)
            or (metadata.topic_exists(topic) and metadata.topic_owner(topic) == principal),
        )
        service = OctopusWebService(cluster, auth, iam, metadata, acls, triggers)
        if enforce_acls:
            cluster.admin().set_authorizer(service.authorize_data_access)
            # Grants/revocations through the ACL store must invalidate the
            # fetch sessions' epoch-scoped authorization caches.
            acls.add_invalidation_listener(cluster.bump_auth_epoch)
        return cls(
            cluster=cluster,
            zookeeper=zookeeper,
            metadata=metadata,
            identities=identities,
            auth=auth,
            iam=iam,
            acls=acls,
            functions=functions,
            logs=logs,
            executor=executor,
            triggers=triggers,
            service=service,
        )

    # ------------------------------------------------------------------ #
    def client(self, username: str, domain: str = "example.edu",
               *, token_store: Optional[TokenStore] = None) -> OctopusClient:
        """Log a user in and return their SDK client."""
        return OctopusClient.login(self.service, username, domain, token_store=token_store)

    def run_triggers(self) -> dict:
        """Drain every trigger's backlog once (the Lambda pollers' job)."""
        return self.triggers.process_pending()
