"""Credential brokering: Globus identities → IAM identities → access keys.

MSK only accepts IAM (or SCRAM) credentials, while Octopus users
authenticate with Globus Auth.  The ``GET /create_key`` route therefore
creates an IAM identity for the requesting user, registers it with the
MSK ZooKeeper (our metadata registry), and returns an access key and
secret the SDK can use with Kafka clients (Section IV-C of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.auth.iam import IamService, PolicyStatement
from repro.coordination.metadata import ClusterMetadataRegistry


@dataclass(frozen=True)
class IssuedCredentials:
    """What ``GET /create_key`` returns to the SDK."""

    principal: str
    iam_principal: str
    access_key_id: str
    secret_access_key: str
    endpoint: str

    def to_dict(self) -> dict:
        return {
            "username": self.iam_principal,
            "access_key": self.access_key_id,
            "secret_key": self.secret_access_key,
            "endpoint": self.endpoint,
        }


class CredentialBroker:
    """Creates and tracks per-user IAM identities and access keys."""

    def __init__(
        self,
        iam: IamService,
        metadata: ClusterMetadataRegistry,
        *,
        endpoint: str = "octopus-fabric.local:9092",
    ) -> None:
        self.iam = iam
        self.metadata = metadata
        self.endpoint = endpoint

    def iam_principal_for(self, globus_principal: str) -> str:
        """Deterministic IAM username for a Globus identity."""
        return "octopus-" + globus_principal.replace("@", ".")

    def create_key(self, globus_principal: str) -> IssuedCredentials:
        """Create (or reuse) the IAM identity and mint a fresh access key.

        The identity is mapped in the metadata registry so the fabric can
        resolve produced/consumed requests back to the Globus identity, and
        a baseline IAM policy allowing cluster connectivity is attached.
        """
        iam_principal = self.iam_principal_for(globus_principal)
        first_time = not self.iam.has_identity(iam_principal)
        self.iam.create_identity(iam_principal, tags={"globus_identity": globus_principal})
        if first_time:
            self.iam.attach_policy(
                iam_principal,
                PolicyStatement.allow(
                    ["kafka-cluster:Connect", "kafka-cluster:DescribeCluster"],
                    ["cluster/*"],
                ),
            )
        key = self.iam.create_access_key(iam_principal)
        self.metadata.map_identity(globus_principal, iam_principal)
        return IssuedCredentials(
            principal=globus_principal,
            iam_principal=iam_principal,
            access_key_id=key.access_key_id,
            secret_access_key=key.secret_access_key,
            endpoint=self.endpoint,
        )

    def authenticate_key(self, access_key_id: str, secret: str) -> Optional[str]:
        """Resolve an access key back to the owning Globus identity."""
        iam_principal = self.iam.authenticate(access_key_id, secret)
        tags = self.iam.identity(iam_principal).tags
        return tags.get("globus_identity")

    def revoke_keys(self, globus_principal: str) -> int:
        """Deactivate every key of a user; returns how many were disabled."""
        iam_principal = self.iam_principal_for(globus_principal)
        if not self.iam.has_identity(iam_principal):
            return 0
        keys = self.iam.keys_for(iam_principal)
        for key in keys:
            if key.active:
                self.iam.deactivate_key(key.access_key_id)
        return sum(1 for k in keys if not k.active)
