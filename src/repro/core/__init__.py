"""Octopus proper: the web service, trigger manager, credential broker and SDK.

This package is the paper's primary contribution (Section IV): a
multi-user, cloud-hosted control plane in front of the event fabric.

* :class:`~repro.core.octopus.OctopusDeployment` wires every substrate
  together (fabric cluster, ZooKeeper metadata, Globus-Auth-like OAuth,
  IAM, ACLs, the FaaS trigger substrate and the web service).
* :class:`~repro.core.service.OctopusWebService` exposes the REST routes
  of Section IV-B/IV-D.
* :class:`~repro.core.sdk.OctopusClient` is the Python SDK of
  Section IV-E: login manager, token cache, topic/trigger management and
  produce/consume helpers.
"""

from repro.core.errors import (
    OctopusError,
    NotAuthorizedError,
    NotFoundError,
    ValidationError,
)
from repro.core.octopus import OctopusDeployment
from repro.core.service import OctopusWebService
from repro.core.triggers import TriggerManager, TriggerSpec
from repro.core.sdk import OctopusClient
from repro.core.tokenstore import TokenStore

__all__ = [
    "OctopusError",
    "NotAuthorizedError",
    "NotFoundError",
    "ValidationError",
    "OctopusDeployment",
    "OctopusWebService",
    "TriggerManager",
    "TriggerSpec",
    "OctopusClient",
    "TokenStore",
]
