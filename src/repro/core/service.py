"""The Octopus Web Service (OWS).

OWS is the control plane users talk to (Section IV-B): a RESTful service
that provisions and shares topics, mints MSK credentials and manages
triggers.  Every request carries a Globus Auth bearer token; OWS validates
it, resolves the principal, performs the operation and answers with JSON.
All operations are idempotent so that client retries cannot corrupt state
(Section IV-F).

The HTTP layer is modelled by :meth:`OctopusWebService.handle`, which
dispatches ``(method, path, token, body)`` exactly like the deployed
service's routes; typed convenience methods are layered on top for the
SDK.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.auth.acl import AclStore, Operation
from repro.auth.iam import IamService
from repro.auth.oauth import AuthError, AuthorizationServer
from repro.coordination.metadata import ClusterMetadataRegistry
from repro.core.credentials import CredentialBroker, IssuedCredentials
from repro.core.errors import NotAuthorizedError, OctopusError, ValidationError
from repro.core.routes import Router
from repro.core.topics import TopicService
from repro.core.triggers import TriggerManager, TriggerSpec
from repro.fabric.cluster import FabricCluster

#: The OAuth scope the OWS requires on every request.
OWS_SCOPE = "octopus:all"


class OctopusWebService:
    """REST-style control plane over the fabric, IAM, metadata and triggers."""

    def __init__(
        self,
        cluster: FabricCluster,
        auth: AuthorizationServer,
        iam: IamService,
        metadata: ClusterMetadataRegistry,
        acls: AclStore,
        triggers: TriggerManager,
        *,
        endpoint: str = "octopus-fabric.local:9092",
    ) -> None:
        self.cluster = cluster
        self.auth = auth
        self.iam = iam
        self.metadata = metadata
        self.acls = acls
        self.topics = TopicService(cluster, metadata, acls)
        self.credentials = CredentialBroker(iam, metadata, endpoint=endpoint)
        self.triggers = triggers
        self.auth.register_resource_server("octopus", ["all"])
        self._router = Router()
        self._register_routes()

    # ------------------------------------------------------------------ #
    # HTTP-style entry point
    # ------------------------------------------------------------------ #
    def handle(
        self, method: str, path: str, *, token: Optional[str] = None,
        body: Optional[dict] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """Dispatch a request; returns ``(status_code, json_body)``."""
        try:
            principal = self._authenticate(token)
            route, params = self._router.resolve(method, path)
            response = route.handler(params, body or {}, principal)
            return 200, response if isinstance(response, dict) else {"result": response}
        except OctopusError as exc:
            return exc.status_code, {"error": type(exc).__name__, "detail": str(exc)}
        except AuthError as exc:
            return 401, {"error": "AuthenticationFailed", "detail": str(exc)}

    def routes(self) -> list[str]:
        return self._router.routes()

    def _authenticate(self, token: Optional[str]) -> str:
        if token is None:
            raise NotAuthorizedError("missing bearer token")
        validated = self.auth.validate(token, required_scope=OWS_SCOPE)
        return validated.principal

    # ------------------------------------------------------------------ #
    # Route table (Section IV-B and IV-D of the paper)
    # ------------------------------------------------------------------ #
    def _register_routes(self) -> None:
        add = self._router.add
        add("PUT", "/topic/<topic>", self._route_register_topic)
        add("GET", "/topics", self._route_list_topics)
        add("GET", "/topic/<topic>", self._route_get_topic)
        add("POST", "/topic/<topic>", self._route_configure_topic)
        add("POST", "/topic/<topic>/partitions", self._route_set_partitions)
        add("POST", "/topic/<topic>/user", self._route_topic_user)
        add("DELETE", "/topic/<topic>", self._route_release_topic)
        add("GET", "/create_key", self._route_create_key)
        add("PUT", "/trigger", self._route_create_trigger)
        add("GET", "/triggers", self._route_list_triggers)
        add("POST", "/trigger/<trigger_id>", self._route_update_trigger)
        add("DELETE", "/trigger/<trigger_id>", self._route_delete_trigger)

    # -- topic routes ---------------------------------------------------- #
    def _route_register_topic(self, params, body, principal):
        return self.topics.register_topic(principal, params["topic"], body.get("config"))

    def _route_list_topics(self, params, body, principal):
        return {"topics": self.topics.list_topics(principal)}

    def _route_get_topic(self, params, body, principal):
        return self.topics.describe_topic(principal, params["topic"])

    def _route_configure_topic(self, params, body, principal):
        return self.topics.configure_topic(principal, params["topic"], body)

    def _route_set_partitions(self, params, body, principal):
        if "num_partitions" not in body:
            raise ValidationError("body must include 'num_partitions'")
        return self.topics.set_partitions(principal, params["topic"], body["num_partitions"])

    def _route_topic_user(self, params, body, principal):
        action = body.get("action", "grant")
        user = body.get("user")
        if not user:
            raise ValidationError("body must include 'user'")
        operations = body.get("operations")
        if action == "grant":
            acl = self.topics.grant_user(principal, params["topic"], user, operations)
        elif action == "revoke":
            acl = self.topics.revoke_user(principal, params["topic"], user, operations)
        else:
            raise ValidationError("action must be 'grant' or 'revoke'")
        return {"topic": params["topic"], "acl": acl}

    def _route_release_topic(self, params, body, principal):
        return self.topics.release_topic(principal, params["topic"])

    # -- credential routes ------------------------------------------------ #
    def _route_create_key(self, params, body, principal):
        return self.create_key(principal).to_dict()

    # -- trigger routes ---------------------------------------------------- #
    def _route_create_trigger(self, params, body, principal):
        spec = TriggerSpec(
            topic=body.get("topic", ""),
            function_name=body.get("function", ""),
            filter_pattern=body.get("filter_pattern"),
            batch_size=int(body.get("batch_size", 100)),
            batch_window_seconds=float(body.get("batch_window_seconds", 0.0)),
            enabled=bool(body.get("enabled", True)),
        )
        return self.triggers.create_trigger(principal, spec).describe()

    def _route_list_triggers(self, params, body, principal):
        return {"triggers": self.triggers.list_triggers(principal)}

    def _route_update_trigger(self, params, body, principal):
        return self.triggers.update_trigger(principal, params["trigger_id"], body)

    def _route_delete_trigger(self, params, body, principal):
        return self.triggers.delete_trigger(principal, params["trigger_id"])

    # ------------------------------------------------------------------ #
    # Typed API used by the SDK
    # ------------------------------------------------------------------ #
    def create_key(self, principal: str) -> IssuedCredentials:
        """Create MSK credentials for a user (``GET /create_key``)."""
        return self.credentials.create_key(principal)

    def authorize_data_access(
        self, principal: Optional[str], operation: str, topic: str
    ) -> bool:
        """Authorizer installed on the fabric cluster (per-topic ACLs)."""
        if principal is None:
            return False
        if self.metadata.topic_exists(topic) and self.metadata.topic_owner(topic) == principal:
            return True
        return self.acls.is_authorized(principal, Operation.parse(operation), topic)
