"""The Octopus Python SDK.

The SDK (Section IV-E, published as ``diaspora-event-sdk``) is how
applications and services integrate with Octopus: it logs the user in,
caches tokens and MSK credentials locally, talks to the OWS REST routes,
and hands out Kafka-style producers and consumers bound to the user's
identity.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.errors import OctopusError, NotAuthorizedError, NotFoundError, ValidationError
from repro.core.login import LoginManager
from repro.core.service import OctopusWebService
from repro.core.tokenstore import TokenStore
from repro.fabric.consumer import ConsumerConfig, FabricConsumer
from repro.fabric.producer import FabricProducer, ProducerConfig

_STATUS_TO_ERROR = {
    400: ValidationError,
    401: NotAuthorizedError,
    403: NotAuthorizedError,
    404: NotFoundError,
    409: OctopusError,
}


class OctopusClient:
    """High-level client: one authenticated user's view of Octopus."""

    def __init__(
        self,
        service: OctopusWebService,
        login_manager: LoginManager,
        *,
        token_store: Optional[TokenStore] = None,
    ) -> None:
        self.service = service
        self.login_manager = login_manager
        self.store = token_store or login_manager.store
        self._credentials: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------ #
    # Authentication
    # ------------------------------------------------------------------ #
    @classmethod
    def login(
        cls,
        service: OctopusWebService,
        username: str,
        domain: str,
        *,
        token_store: Optional[TokenStore] = None,
    ) -> "OctopusClient":
        """Authenticate ``username@domain`` and return a ready client."""
        manager = LoginManager(service.auth, token_store or TokenStore())
        manager.login(username, domain)
        return cls(service, manager)

    @property
    def principal(self) -> str:
        principal = self.login_manager.principal
        if principal is None:
            raise RuntimeError("client is not logged in")
        return principal

    def logout(self) -> None:
        self.login_manager.logout()
        self._credentials = None

    # ------------------------------------------------------------------ #
    # REST plumbing
    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        token = self.login_manager.get_token()
        status, payload = self.service.handle(method, path, token=token, body=body)
        if status >= 400:
            error_cls = _STATUS_TO_ERROR.get(status, OctopusError)
            raise error_cls(payload.get("detail", f"request failed with status {status}"))
        return payload

    # ------------------------------------------------------------------ #
    # Topic management (Section IV-B routes)
    # ------------------------------------------------------------------ #
    def register_topic(self, topic: str, config: Optional[dict] = None) -> dict:
        return self._request("PUT", f"/topic/{topic}", {"config": config or {}})

    def list_topics(self) -> List[str]:
        return self._request("GET", "/topics")["topics"]

    def get_topic(self, topic: str) -> dict:
        return self._request("GET", f"/topic/{topic}")

    def configure_topic(self, topic: str, **updates) -> dict:
        return self._request("POST", f"/topic/{topic}", updates)

    def set_partitions(self, topic: str, num_partitions: int) -> dict:
        return self._request(
            "POST", f"/topic/{topic}/partitions", {"num_partitions": num_partitions}
        )

    def grant_user(self, topic: str, user: str, operations: Optional[List[str]] = None) -> dict:
        return self._request(
            "POST", f"/topic/{topic}/user",
            {"action": "grant", "user": user, "operations": operations},
        )

    def revoke_user(self, topic: str, user: str, operations: Optional[List[str]] = None) -> dict:
        return self._request(
            "POST", f"/topic/{topic}/user",
            {"action": "revoke", "user": user, "operations": operations},
        )

    def release_topic(self, topic: str) -> dict:
        return self._request("DELETE", f"/topic/{topic}")

    # ------------------------------------------------------------------ #
    # Credentials (Section IV-C)
    # ------------------------------------------------------------------ #
    def create_key(self, *, refresh: bool = False) -> Dict[str, Any]:
        """Fetch (and cache) MSK credentials for the fabric."""
        if not refresh:
            if self._credentials is not None:
                return self._credentials
            cached = self.store.get_credentials(self.principal)
            if cached is not None:
                self._credentials = cached
                return cached
        credentials = self._request("GET", "/create_key")
        self.store.store_credentials(self.principal, credentials)
        self._credentials = credentials
        return credentials

    # ------------------------------------------------------------------ #
    # Triggers (Section IV-D)
    # ------------------------------------------------------------------ #
    def create_trigger(
        self,
        topic: str,
        function: str,
        *,
        filter_pattern: Optional[dict] = None,
        batch_size: int = 100,
        batch_window_seconds: float = 0.0,
        enabled: bool = True,
    ) -> dict:
        return self._request("PUT", "/trigger", {
            "topic": topic,
            "function": function,
            "filter_pattern": filter_pattern,
            "batch_size": batch_size,
            "batch_window_seconds": batch_window_seconds,
            "enabled": enabled,
        })

    def list_triggers(self) -> List[dict]:
        return self._request("GET", "/triggers")["triggers"]

    def update_trigger(self, trigger_id: str, **updates) -> dict:
        return self._request("POST", f"/trigger/{trigger_id}", updates)

    def delete_trigger(self, trigger_id: str) -> dict:
        return self._request("DELETE", f"/trigger/{trigger_id}")

    # ------------------------------------------------------------------ #
    # Data plane: producers and consumers bound to this identity
    # ------------------------------------------------------------------ #
    def producer(self, config: Optional[ProducerConfig] = None) -> FabricProducer:
        """A producer authenticated as this user (kafka-python equivalent)."""
        self.create_key()
        return FabricProducer(self.service.cluster, config, principal=self.principal)

    def consumer(
        self, topics: Sequence[str], config: Optional[ConsumerConfig] = None
    ) -> FabricConsumer:
        """A consumer authenticated as this user."""
        self.create_key()
        config = config or ConsumerConfig(group_id=f"{self.principal}-group")
        return FabricConsumer(self.service.cluster, topics, config, principal=self.principal)

    # ------------------------------------------------------------------ #
    # Convenience helpers used throughout the examples
    # ------------------------------------------------------------------ #
    def publish(self, topic: str, value: Any, *, key: Any = None,
                headers: Optional[Dict[str, str]] = None) -> dict:
        """One-shot publish without holding a producer open."""
        producer = self.producer()
        metadata = producer.send(topic, value, key=key, headers=headers)
        return {
            "topic": metadata.topic,
            "partition": metadata.partition,
            "offset": metadata.offset,
        }

    def read_all(self, topic: str, *, group_id: Optional[str] = None) -> List[Any]:
        """Read every retained event value of a topic from the beginning."""
        consumer = self.consumer(
            [topic],
            ConsumerConfig(
                group_id=group_id or f"{self.principal}-readall",
                auto_offset_reset="earliest",
                enable_auto_commit=False,
            ),
        )
        values: List[Any] = []
        while True:
            batch = consumer.poll_flat()
            if not batch:
                break
            values.extend(record.value for record in batch)
        consumer.close()
        return values
