"""A minimal REST-style router.

The Octopus Web Service is a RESTful service on AWS Lightsail; here routes
are dispatched in-process.  Path templates use ``<name>`` placeholders
(e.g. ``/topic/<topic>/user``) and handlers receive the extracted path
parameters plus the request body.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import NotFoundError

#: Handler signature: (path_params, body, principal) -> response dict.
RouteHandler = Callable[[Dict[str, str], dict, str], Any]


@dataclass(frozen=True)
class Route:
    """One registered route."""

    method: str
    template: str
    handler: RouteHandler
    pattern: re.Pattern

    def match(self, path: str) -> Optional[Dict[str, str]]:
        matched = self.pattern.fullmatch(path)
        if matched is None:
            return None
        return dict(matched.groupdict())


def _compile_template(template: str) -> re.Pattern:
    parts = []
    for segment in template.strip("/").split("/"):
        if segment.startswith("<") and segment.endswith(">"):
            name = segment[1:-1]
            parts.append(f"(?P<{name}>[^/]+)")
        else:
            parts.append(re.escape(segment))
    return re.compile("/" + "/".join(parts) + "/?")


class Router:
    """Registers routes and dispatches (method, path) pairs to handlers."""

    def __init__(self) -> None:
        self._routes: List[Route] = []

    def add(self, method: str, template: str, handler: RouteHandler) -> Route:
        route = Route(
            method=method.upper(),
            template=template,
            handler=handler,
            pattern=_compile_template(template),
        )
        self._routes.append(route)
        return route

    def resolve(self, method: str, path: str) -> Tuple[Route, Dict[str, str]]:
        if not path.startswith("/"):
            path = "/" + path
        for route in self._routes:
            if route.method != method.upper():
                continue
            params = route.match(path)
            if params is not None:
                return route, params
        raise NotFoundError(f"no route for {method.upper()} {path}")

    def routes(self) -> List[str]:
        """Human-readable list of registered routes."""
        return sorted(f"{r.method} {r.template}" for r in self._routes)
