"""CloudWatch-like log groups and metrics.

When OWS registers a trigger it also creates "the appropriate IAM policy,
IAM role, and CloudWatch log group to manage and monitor the Lambda
function" (Section IV-D).  The log service here provides per-function log
groups (invocation start/end/error lines) and simple metric aggregation
(invocations, errors, duration percentiles) that the admin consoles in
Figure 2 would display.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class LogEvent:
    """One log line in a log group."""

    timestamp: float
    message: str
    level: str = "INFO"
    fields: dict = field(default_factory=dict)


@dataclass
class LogGroup:
    """An append-only group of log events for one function/component."""

    name: str
    events: List[LogEvent] = field(default_factory=list)
    retention_days: int = 7

    def put(self, message: str, *, level: str = "INFO",
            timestamp: Optional[float] = None, **fields) -> LogEvent:
        event = LogEvent(
            timestamp=timestamp if timestamp is not None else time.time(),
            message=message,
            level=level,
            fields=dict(fields),
        )
        self.events.append(event)
        return event

    def filter(self, *, level: Optional[str] = None, contains: Optional[str] = None) -> List[LogEvent]:
        out = self.events
        if level is not None:
            out = [e for e in out if e.level == level]
        if contains is not None:
            out = [e for e in out if contains in e.message]
        return list(out)

    def __len__(self) -> int:
        return len(self.events)


class LogService:
    """Holds log groups and per-function invocation metrics."""

    def __init__(self) -> None:
        self._groups: Dict[str, LogGroup] = {}
        self._durations: Dict[str, List[float]] = {}
        self._errors: Dict[str, int] = {}
        self._invocations: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    def group(self, name: str) -> LogGroup:
        if name not in self._groups:
            self._groups[name] = LogGroup(name=name)
        return self._groups[name]

    def groups(self) -> List[str]:
        return sorted(self._groups)

    # ------------------------------------------------------------------ #
    def record_invocation(
        self, function_name: str, duration_seconds: float, *, error: bool = False
    ) -> None:
        self._invocations[function_name] = self._invocations.get(function_name, 0) + 1
        self._durations.setdefault(function_name, []).append(duration_seconds)
        if error:
            self._errors[function_name] = self._errors.get(function_name, 0) + 1

    def metrics(self, function_name: str) -> dict:
        """Aggregate invocation metrics for one function."""
        durations = np.asarray(self._durations.get(function_name, ()), dtype=float)
        invocations = self._invocations.get(function_name, 0)
        errors = self._errors.get(function_name, 0)
        if durations.size == 0:
            return {
                "invocations": invocations,
                "errors": errors,
                "duration_mean_s": 0.0,
                "duration_p50_s": 0.0,
                "duration_p99_s": 0.0,
            }
        return {
            "invocations": invocations,
            "errors": errors,
            "duration_mean_s": float(durations.mean()),
            "duration_p50_s": float(np.percentile(durations, 50)),
            "duration_p99_s": float(np.percentile(durations, 99)),
        }
