"""Event-source mappings: topic → filter → function.

Each Octopus trigger is implemented as an AWS Lambda fed by an MSK
event-source mapping: the mapping owns a dedicated consumer group on the
target topic (so many trigger instances can drain events without
disturbing other consumers), accumulates events into batches of up to
10,000 records or 6 MB, optionally filters them with an EventBridge
pattern, and invokes the function once per batch (Section IV-D).

The mapping runs a *fleet* of pollers — one fabric consumer per unit of
concurrency — in that consumer group.  :meth:`EventSourceMapping.set_concurrency`
grows or shrinks the fleet as the processing-pressure autoscaler directs,
and because the group coordinator rebalances cooperatively (sticky
assignment, revoke-then-assign), a scale event only moves the minimal
partition delta: surviving pollers keep fetching their retained
partitions and their prefetch buffers stay warm while the fleet resizes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.fabric.cluster import FabricCluster
from repro.fabric.consumer import ConsumerConfig, FabricConsumer
from repro.fabric.errors import IllegalGenerationError
from repro.fabric.record import StoredRecord
from repro.faas.executor import InvocationResult, LambdaExecutor
from repro.faas.patterns import EventPattern

#: Hard limits from the paper / AWS: batches of up to 10,000 events or 6 MB.
MAX_BATCH_SIZE = 10_000
MAX_BATCH_BYTES = 6 * 1024 * 1024

_mapping_ids = itertools.count(1)


@dataclass(frozen=True)
class EventSourceConfig:
    """User-tunable event-source settings (batch size, window, filter).

    ``prefetch`` pipelines the next batch fetch while the function runs,
    using the consumer's background prefetch thread — the polling loop then
    overlaps broker I/O with function execution, as Lambda pollers do.
    """

    batch_size: int = 100
    batch_window_seconds: float = 0.0
    filter_pattern: Optional[dict] = None
    starting_position: str = "earliest"
    prefetch: bool = False

    def validate(self) -> None:
        if not 1 <= self.batch_size <= MAX_BATCH_SIZE:
            raise ValueError(f"batch_size must be in [1, {MAX_BATCH_SIZE}]")
        if self.batch_window_seconds < 0:
            raise ValueError("batch_window_seconds must be >= 0")
        if self.starting_position not in ("earliest", "latest"):
            raise ValueError("starting_position must be 'earliest' or 'latest'")


@dataclass
class MappingStats:
    """Counters for one event-source mapping."""

    polls: int = 0
    records_read: int = 0
    records_matched: int = 0
    records_filtered_out: int = 0
    invocations: int = 0
    failed_invocations: int = 0
    scale_events: int = 0


class EventSourceMapping:
    """Polls a topic with a dedicated consumer group and invokes a function."""

    def __init__(
        self,
        cluster: FabricCluster,
        topic: str,
        function_name: str,
        executor: LambdaExecutor,
        config: Optional[EventSourceConfig] = None,
        *,
        principal: Optional[str] = None,
        mapping_id: Optional[str] = None,
    ) -> None:
        self.config = config or EventSourceConfig()
        self.config.validate()
        self.cluster = cluster
        self.topic = topic
        self.function_name = function_name
        self.executor = executor
        self.mapping_id = mapping_id or f"esm-{next(_mapping_ids):06d}"
        self.principal = principal
        self.pattern = EventPattern(self.config.filter_pattern)
        self.stats = MappingStats()
        self._poller_ids = itertools.count(1)
        self._consumers: List[FabricConsumer] = [self._new_poller()]
        self._enabled = True

    def _new_poller(self) -> FabricConsumer:
        """One unit of concurrency: a consumer joining the mapping's group."""
        consumer = FabricConsumer(
            self.cluster,
            [self.topic],
            ConsumerConfig(
                group_id=f"trigger-{self.mapping_id}",
                client_id=f"lambda-{self.function_name}-{next(self._poller_ids)}",
                auto_offset_reset=self.config.starting_position,
                enable_auto_commit=False,
                max_poll_records=self.config.batch_size,
                # Batch fetches ride the cluster's fetch-session data plane,
                # byte-capped across the whole session at the Lambda
                # event-source limit.
                receive_buffer_bytes=MAX_BATCH_BYTES,
                prefetch=self.config.prefetch,
            ),
            principal=self.principal,
        )
        # Pin the initial assignment now, then let the listener pin every
        # partition this poller gains in later cooperative rebalances.
        self._pin_positions(consumer, consumer.assignment())
        consumer.set_rebalance_listeners(
            on_partitions_assigned=lambda added: self._pin_positions(consumer, added)
        )
        return consumer

    def _pin_positions(self, consumer: FabricConsumer, partitions) -> None:
        """Commit seed positions for partitions with no committed offset.

        ``starting_position`` is evaluated once, when a partition first
        enters the mapping's group, and pinned by committing it — exactly
        how Lambda anchors an event-source mapping at creation.  Without
        the pin, a cooperative move of a never-polled partition (fleet
        scale-up, topic growth) would re-evaluate ``latest`` on the *new*
        owner at a later log end and silently skip everything in between.
        """
        to_pin = {
            tp: consumer.position(*tp)
            for tp in partitions
            if self.cluster.offsets.committed(self.consumer_group, *tp) is None
        }
        if not to_pin:
            return
        try:
            self.cluster.commit_group(
                self.consumer_group,
                to_pin,
                generation=consumer.generation,
                member_id=consumer.member_id,
            )
        except IllegalGenerationError:
            pass  # a racing rebalance: whoever owns the partition next pins it

    # ------------------------------------------------------------------ #
    @property
    def consumer_group(self) -> str:
        return f"trigger-{self.mapping_id}"

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def concurrency(self) -> int:
        """Current poller-fleet size (concurrent invocation capacity)."""
        return len(self._consumers)

    def set_concurrency(self, concurrency: int) -> int:
        """Resize the poller fleet; returns the effective concurrency.

        The requested value is clamped to ``[1, partition count]`` (Kafka
        semantics: extra group members beyond the partition count would
        sit idle).  Growth joins new consumers to the mapping's group and
        shrink closes the newest ones — either way the coordinator
        rebalances *cooperatively*, so the surviving pollers keep serving
        their retained partitions (prefetch buffers included) while only
        the minimal partition delta moves.
        """
        partitions = self.cluster.topic(self.topic).num_partitions
        concurrency = max(1, min(concurrency, partitions))
        if concurrency == len(self._consumers):
            return concurrency
        self.stats.scale_events += 1
        while len(self._consumers) < concurrency:
            self._consumers.append(self._new_poller())
        while len(self._consumers) > concurrency:
            self._consumers.pop().close()
        return concurrency

    def disable(self) -> None:
        self._enabled = False

    def enable(self) -> None:
        self._enabled = True

    def pending_events(self) -> int:
        """Processing pressure: events published but not yet committed.

        Walks every partition's end offset on the cluster — accurate but
        relatively expensive; the drain loop uses the cheaper
        position-based :meth:`lag` instead.
        """
        return self.cluster.total_lag(self.consumer_group, self.topic)

    def lag(self) -> int:
        """Events published but not yet *read* by this mapping's fleet.

        Position-based: O(assigned partitions) single-partition end-offset
        lookups per poller, no committed-offset reads on the steady path —
        the cheap signal the drain loop polls between batches.  Partitions
        momentarily owned by no poller (mid-rebalance, between the revoke
        and assign phases) are counted from their committed offset so a
        scale event can never make backlog invisible.
        """
        total = 0
        covered: set = set()
        for consumer in self._consumers:
            total += consumer.lag()
            covered.update(consumer.assignment())
        if not self._consumers:
            return total  # closed mapping: nothing will ever drain this
        # Reuse the consumers' own committed-offset/reset-policy fallback
        # for uncovered partitions, so the two can never drift.
        probe = self._consumers[0]
        for tp in self.cluster.partitions_for(self.topic):
            if tp not in covered:
                total += max(
                    0, self.cluster.end_offset(*tp) - probe.reset_position(*tp)
                )
        return total

    # ------------------------------------------------------------------ #
    @staticmethod
    def _record_to_event(record: StoredRecord, topic: str, partition: int) -> dict:
        """Shape one fabric record the way Lambda presents Kafka records."""
        return {
            "topic": topic,
            "partition": partition,
            "offset": record.offset,
            "timestamp": record.timestamp,
            "key": record.key,
            "value": record.value,
            "headers": dict(record.record.headers),
        }

    def poll_once(self) -> List[InvocationResult]:
        """One poll/filter/invoke cycle per poller; returns the results.

        Each poller in the fleet polls its own partition slice and, when
        records match, triggers its own invocation — concurrency N means
        up to N invocations per cycle, exactly how Lambda runs one poller
        per sub-batch.  Offsets are committed only after the invocation
        returns: a crash mid-batch redelivers it (at-least-once), while a
        *failed* invocation — the executor has already exhausted its
        internal retries by then — is committed past and discarded
        (counted in ``failed_invocations``), Lambda's no-DLQ on-failure
        policy, so one poisoned batch cannot wedge the partition.  Each
        commit rides the batched :meth:`FabricCluster.commit_group` path:
        one generation check and one offset-store lock per poller.
        """
        if not self._enabled:
            return []
        results: List[InvocationResult] = []
        for consumer in list(self._consumers):
            batches = consumer.poll(max_records=self.config.batch_size)
            self.stats.polls += 1
            matched_events: List[dict] = []
            for (topic, partition), records in batches.items():
                for record in records:
                    self.stats.records_read += 1
                    event = self._record_to_event(record, topic, partition)
                    if self.pattern.matches(event):
                        self.stats.records_matched += 1
                        matched_events.append(event)
                    else:
                        self.stats.records_filtered_out += 1
            if matched_events:
                payload = {
                    "eventSource": "octopus:fabric",
                    "topic": self.topic,
                    "records": matched_events,
                }
                result = self.executor.invoke(self.function_name, payload)
                self.stats.invocations += 1
                if not result.success:
                    self.stats.failed_invocations += 1
                results.append(result)
            if batches:
                consumer.commit()
        return results

    def drain(self, max_polls: int = 10_000) -> List[InvocationResult]:
        """Poll until the topic is exhausted (or ``max_polls`` is reached).

        Driven by the consumer's position-based :meth:`lag` — one
        single-partition end-offset lookup per assigned partition per
        iteration — instead of :meth:`pending_events`, which re-reads
        committed offsets across a full end-offsets walk between every
        poll.
        """
        results: List[InvocationResult] = []
        if not self._enabled:
            return results
        for _ in range(max_polls):
            if self.lag() == 0:
                break
            results.extend(self.poll_once())
        return results

    def close(self) -> None:
        for consumer in self._consumers:
            consumer.close()
        self._consumers = []

    def describe(self) -> Dict[str, Any]:
        return {
            "mapping_id": self.mapping_id,
            "topic": self.topic,
            "function": self.function_name,
            "consumer_group": self.consumer_group,
            "batch_size": self.config.batch_size,
            "batch_window_seconds": self.config.batch_window_seconds,
            "filter_pattern": self.config.filter_pattern,
            "enabled": self._enabled,
            "concurrency": len(self._consumers),
            "stats": vars(self.stats),
        }
