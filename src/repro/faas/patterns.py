"""EventBridge-compatible event pattern matching.

Octopus triggers accept an optional filter expressed in the Amazon
EventBridge pattern language (Listing 1 of the paper shows the pattern
``{"value": {"event_type": ["created"]}}`` used by the data-automation
application).  A pattern is a JSON object mirroring the event's structure;
leaf values are lists of alternatives, where each alternative is either a
literal or a *content filter* such as ``{"prefix": ...}``,
``{"numeric": [">", 0, "<=", 100]}``, ``{"exists": true}`` or
``{"anything-but": [...]}``.  An event matches when every key in the
pattern matches; keys absent from the pattern are unconstrained.
"""

from __future__ import annotations

import json
from typing import Any, List, Mapping, Sequence, Union

__all__ = ["EventPattern", "PatternError", "matches_pattern"]


class PatternError(ValueError):
    """The pattern is structurally invalid."""


_NUMERIC_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
}


def _match_content_filter(filter_spec: Mapping[str, Any], value: Any) -> bool:
    """Evaluate one content filter against a value."""
    if len(filter_spec) != 1:
        raise PatternError(f"content filter must have exactly one key: {filter_spec!r}")
    kind, arg = next(iter(filter_spec.items()))
    if kind == "prefix":
        return isinstance(value, str) and value.startswith(str(arg))
    if kind == "suffix":
        return isinstance(value, str) and value.endswith(str(arg))
    if kind == "exists":
        exists = value is not _MISSING
        return exists if arg else not exists
    if kind == "anything-but":
        alternatives = arg if isinstance(arg, list) else [arg]
        return value is not _MISSING and value not in alternatives
    if kind == "numeric":
        if value is _MISSING or not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        if not isinstance(arg, Sequence) or len(arg) % 2 != 0 or not arg:
            raise PatternError(f"numeric filter needs op/operand pairs: {arg!r}")
        for op, operand in zip(arg[0::2], arg[1::2]):
            if op not in _NUMERIC_OPS:
                raise PatternError(f"unknown numeric operator {op!r}")
            if not _NUMERIC_OPS[op](value, operand):
                return False
        return True
    if kind == "equals-ignore-case":
        return isinstance(value, str) and value.lower() == str(arg).lower()
    raise PatternError(f"unknown content filter {kind!r}")


class _Missing:
    """Sentinel for keys absent from the event."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<missing>"


_MISSING = _Missing()


def _match_leaf(alternatives: Sequence[Any], value: Any) -> bool:
    """A leaf matches when any alternative literal/content filter matches."""
    for alternative in alternatives:
        if isinstance(alternative, Mapping):
            if _match_content_filter(alternative, value):
                return True
        elif value is not _MISSING and value == alternative:
            return True
        elif alternative is None and value is None:
            return True
    return False


def _match_node(pattern: Mapping[str, Any], event: Any) -> bool:
    for key, expected in pattern.items():
        value = event.get(key, _MISSING) if isinstance(event, Mapping) else _MISSING
        if isinstance(expected, Mapping):
            # Nested object pattern: descend.
            if value is _MISSING or not isinstance(value, Mapping):
                # An {"exists": false} filter nested deeper can still match a
                # missing subtree; handle by descending with an empty dict.
                if not _match_node(expected, {}):
                    return False
            elif not _match_node(expected, value):
                return False
        elif isinstance(expected, list):
            if isinstance(value, list):
                # Event arrays match when any element matches any alternative.
                if not any(_match_leaf(expected, item) for item in value):
                    return False
            elif not _match_leaf(expected, value):
                return False
        else:
            raise PatternError(
                f"pattern values must be lists or nested objects, got {expected!r} for {key!r}"
            )
    return True


def matches_pattern(pattern: Union[str, Mapping[str, Any], None], event: Mapping[str, Any]) -> bool:
    """Return whether ``event`` satisfies ``pattern``.

    ``pattern`` may be a dict, a JSON string, or ``None``/empty (matches
    everything, i.e. an unfiltered trigger).
    """
    if pattern is None:
        return True
    if isinstance(pattern, str):
        try:
            pattern = json.loads(pattern)
        except json.JSONDecodeError as exc:
            raise PatternError(f"pattern is not valid JSON: {exc}") from exc
    if not isinstance(pattern, Mapping):
        raise PatternError("pattern must be a JSON object")
    if not pattern:
        return True
    return _match_node(pattern, event)


class EventPattern:
    """A compiled, reusable pattern with validation at construction time."""

    def __init__(self, pattern: Union[str, Mapping[str, Any], None]) -> None:
        if isinstance(pattern, str):
            try:
                pattern = json.loads(pattern)
            except json.JSONDecodeError as exc:
                raise PatternError(f"pattern is not valid JSON: {exc}") from exc
        if pattern is not None and not isinstance(pattern, Mapping):
            raise PatternError("pattern must be a JSON object or None")
        self._pattern = dict(pattern) if pattern else None
        # Validate eagerly against an empty event so malformed filters fail
        # at trigger registration time, not on the first event.
        if self._pattern is not None:
            _match_node(self._pattern, {})

    @property
    def pattern(self) -> Union[Mapping[str, Any], None]:
        return self._pattern

    def matches(self, event: Mapping[str, Any]) -> bool:
        return matches_pattern(self._pattern, event)

    def filter(self, events: Sequence[Mapping[str, Any]]) -> List[Mapping[str, Any]]:
        return [event for event in events if self.matches(event)]

    def to_json(self) -> str:
        return json.dumps(self._pattern or {}, sort_keys=True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EventPattern({self.to_json()})"
