"""Function definitions and the function registry.

A trigger's action is a function: the user supplies the handler code and
an execution environment (memory size, timeout, environment variables),
and Octopus deploys it as a managed Lambda (Section IV-D).  Handlers
follow the Lambda signature ``handler(event, context)`` where ``event``
carries the batch of fabric records and ``context`` describes the
invocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

Handler = Callable[[dict, "InvocationContext"], Any]


@dataclass(frozen=True)
class InvocationContext:
    """Runtime information passed to every handler invocation."""

    function_name: str
    invocation_id: str
    invoked_at: float
    memory_mb: int
    timeout_seconds: float
    attempt: int = 1


@dataclass
class FunctionDefinition:
    """A deployable function and its execution environment.

    ``simulated_duration_seconds`` lets benchmark workloads declare how
    long an invocation takes (e.g. the 30 s sleep tasks in the paper's
    trigger-scaling experiment) without actually sleeping.
    """

    name: str
    handler: Handler
    memory_mb: int = 128
    timeout_seconds: float = 300.0
    environment: Dict[str, str] = field(default_factory=dict)
    description: str = ""
    simulated_duration_seconds: Optional[float] = None

    def validate(self) -> None:
        if not callable(self.handler):
            raise TypeError("handler must be callable")
        if self.memory_mb < 128 or self.memory_mb > 10_240:
            raise ValueError("memory_mb must be between 128 and 10240")
        if self.timeout_seconds <= 0 or self.timeout_seconds > 900:
            raise ValueError("timeout_seconds must be in (0, 900]")

    def describe(self) -> dict:
        return {
            "name": self.name,
            "memory_mb": self.memory_mb,
            "timeout_seconds": self.timeout_seconds,
            "environment": dict(self.environment),
            "description": self.description,
        }


class FunctionRegistry:
    """Registry of deployed functions."""

    def __init__(self) -> None:
        self._functions: Dict[str, FunctionDefinition] = {}

    def register(self, definition: FunctionDefinition) -> FunctionDefinition:
        definition.validate()
        self._functions[definition.name] = definition
        return definition

    def get(self, name: str) -> FunctionDefinition:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"function {name!r} is not registered") from None

    def unregister(self, name: str) -> None:
        self._functions.pop(name, None)

    def list(self) -> List[str]:
        return sorted(self._functions)

    def __contains__(self, name: str) -> bool:
        return name in self._functions
