"""Serverless trigger substrate (AWS Lambda / EventBridge / CloudWatch stand-in).

Octopus Triggers (Section IV-D of the paper) are managed functions that
consume events from a topic through an event-source mapping, optionally
filter them with EventBridge JSON patterns, and invoke arbitrary actions.
This package provides every piece of that machinery:

* :mod:`repro.faas.patterns` — the EventBridge pattern language.
* :mod:`repro.faas.function` — function definitions and the registry.
* :mod:`repro.faas.executor` — the invocation engine with concurrency
  accounting, retries and error capture.
* :mod:`repro.faas.eventsource` — event-source mappings that poll a topic
  with a dedicated consumer group and invoke a function per batch.
* :mod:`repro.faas.scaling` — the processing-pressure autoscaler and the
  trigger-scaling simulator used to reproduce Figures 4 and 7.
* :mod:`repro.faas.logs` — CloudWatch-like log groups and metrics.
"""

from repro.faas.patterns import EventPattern, PatternError, matches_pattern
from repro.faas.function import FunctionDefinition, FunctionRegistry
from repro.faas.executor import InvocationResult, LambdaExecutor
from repro.faas.eventsource import EventSourceMapping, EventSourceConfig
from repro.faas.scaling import (
    ProcessingPressureScaler,
    ScalingPolicy,
    TriggerScalingSimulator,
    ScalingSample,
)
from repro.faas.logs import LogEvent, LogGroup, LogService

__all__ = [
    "EventPattern",
    "PatternError",
    "matches_pattern",
    "FunctionDefinition",
    "FunctionRegistry",
    "InvocationResult",
    "LambdaExecutor",
    "EventSourceMapping",
    "EventSourceConfig",
    "ProcessingPressureScaler",
    "ScalingPolicy",
    "TriggerScalingSimulator",
    "ScalingSample",
    "LogEvent",
    "LogGroup",
    "LogService",
]
