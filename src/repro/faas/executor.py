"""Invocation engine for deployed functions.

Octopus triggers must be *robust* (failures detected, actions retried) and
*scalable* (many triggers at once) — Section IV-D.  The executor invokes a
registered function synchronously, records duration and errors in the log
service, retries failed invocations up to a configurable limit, and tracks
concurrency so the autoscaler can reason about in-flight work.
"""

from __future__ import annotations

import itertools
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.common.clock import Clock, SystemClock
from repro.faas.function import FunctionDefinition, FunctionRegistry, InvocationContext
from repro.faas.logs import LogService


@dataclass(frozen=True)
class InvocationResult:
    """Outcome of one function invocation (after retries)."""

    function_name: str
    invocation_id: str
    success: bool
    response: Any
    error: Optional[str]
    duration_seconds: float
    attempts: int
    billed_duration_seconds: float


@dataclass
class ExecutorStats:
    """Aggregate executor counters."""

    invocations: int = 0
    errors: int = 0
    retries: int = 0
    throttles: int = 0
    total_billed_seconds: float = 0.0


class LambdaExecutor:
    """Invokes functions with retry, concurrency accounting and logging."""

    def __init__(
        self,
        registry: Optional[FunctionRegistry] = None,
        logs: Optional[LogService] = None,
        *,
        max_retries: int = 2,
        reserved_concurrency: Optional[int] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.registry = registry or FunctionRegistry()
        self.logs = logs or LogService()
        self.max_retries = max_retries
        self.reserved_concurrency = reserved_concurrency
        self.clock = clock or SystemClock()
        self.stats = ExecutorStats()
        self._invocation_ids = itertools.count(1)
        self._in_flight = 0
        self._in_flight_by_function: Dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def in_flight_for(self, function_name: str) -> int:
        """In-flight invocations of one function (per-trigger autoscaling)."""
        with self._lock:
            return self._in_flight_by_function.get(function_name, 0)

    def _acquire_slot(self, function_name: str) -> bool:
        with self._lock:
            if (
                self.reserved_concurrency is not None
                and self._in_flight >= self.reserved_concurrency
            ):
                self.stats.throttles += 1
                return False
            self._in_flight += 1
            self._in_flight_by_function[function_name] = (
                self._in_flight_by_function.get(function_name, 0) + 1
            )
            return True

    def _release_slot(self, function_name: str) -> None:
        with self._lock:
            self._in_flight -= 1
            self._in_flight_by_function[function_name] -= 1

    # ------------------------------------------------------------------ #
    def invoke(self, function_name: str, event: dict) -> InvocationResult:
        """Invoke ``function_name`` with ``event``; retry on handler errors."""
        definition = self.registry.get(function_name)
        if not self._acquire_slot(function_name):
            return InvocationResult(
                function_name=function_name,
                invocation_id="throttled",
                success=False,
                response=None,
                error="Throttled: reserved concurrency exhausted",
                duration_seconds=0.0,
                attempts=0,
                billed_duration_seconds=0.0,
            )
        try:
            return self._invoke_with_retries(definition, event)
        finally:
            self._release_slot(function_name)

    def invoke_batch(self, function_name: str, events: List[dict]) -> List[InvocationResult]:
        return [self.invoke(function_name, event) for event in events]

    # ------------------------------------------------------------------ #
    def _invoke_with_retries(
        self, definition: FunctionDefinition, event: dict
    ) -> InvocationResult:
        invocation_id = f"inv-{next(self._invocation_ids):08d}"
        group = self.logs.group(f"/aws/lambda/{definition.name}")
        last_error: Optional[str] = None
        attempts = 0
        total_duration = 0.0
        for attempt in range(1, self.max_retries + 2):
            attempts = attempt
            context = InvocationContext(
                function_name=definition.name,
                invocation_id=invocation_id,
                invoked_at=self.clock.now(),
                memory_mb=definition.memory_mb,
                timeout_seconds=definition.timeout_seconds,
                attempt=attempt,
            )
            group.put(
                f"START RequestId: {invocation_id} attempt={attempt}",
                timestamp=context.invoked_at,
            )
            started = time.perf_counter()
            try:
                response = definition.handler(event, context)
            except Exception as exc:  # noqa: BLE001 - handler errors are data here
                duration = self._measured_duration(definition, started)
                total_duration += duration
                last_error = f"{type(exc).__name__}: {exc}"
                group.put(
                    f"ERROR RequestId: {invocation_id} {last_error}",
                    level="ERROR",
                    timestamp=self.clock.now(),
                    traceback=traceback.format_exc(limit=3),
                )
                self.logs.record_invocation(definition.name, duration, error=True)
                self.stats.invocations += 1
                self.stats.errors += 1
                if attempt <= self.max_retries:
                    self.stats.retries += 1
                    continue
                # Failed final attempts are billed too (Lambda semantics).
                self.stats.total_billed_seconds += total_duration
                return InvocationResult(
                    function_name=definition.name,
                    invocation_id=invocation_id,
                    success=False,
                    response=None,
                    error=last_error,
                    duration_seconds=total_duration,
                    attempts=attempts,
                    billed_duration_seconds=total_duration,
                )
            duration = self._measured_duration(definition, started)
            total_duration += duration
            group.put(
                f"END RequestId: {invocation_id} duration={duration * 1000:.2f}ms",
                timestamp=self.clock.now(),
            )
            self.logs.record_invocation(definition.name, duration, error=False)
            self.stats.invocations += 1
            self.stats.total_billed_seconds += total_duration
            return InvocationResult(
                function_name=definition.name,
                invocation_id=invocation_id,
                success=True,
                response=response,
                error=None,
                duration_seconds=total_duration,
                attempts=attempts,
                billed_duration_seconds=total_duration,
            )
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    def _measured_duration(definition: FunctionDefinition, started: float) -> float:
        if definition.simulated_duration_seconds is not None:
            return definition.simulated_duration_seconds
        return time.perf_counter() - started
