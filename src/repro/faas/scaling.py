"""Processing-pressure autoscaling of trigger consumers.

Lambda "evaluates the processing pressure at 1 min intervals, and scales
concurrent invocations of the function dynamically when warranted"
(Section IV-D).  The paper's trigger-scaling experiment (Figure 4) buffers
5000+ thirty-second tasks across 128 partitions and observes the number of
concurrent trigger invocations rise from 3 to 128 within four minutes,
then fall shortly before the workload completes.

Two pieces live here:

* :class:`ProcessingPressureScaler` — the pure scaling policy: given the
  backlog and current concurrency, decide the next concurrency.
* :class:`TriggerScalingSimulator` — a deterministic time-stepped
  simulator that combines the policy with an invocation-duration model to
  produce the (time, queue depth, concurrent invocations) series of
  Figures 4 and 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence


@dataclass(frozen=True)
class ScalingPolicy:
    """Tunable knobs of the processing-pressure policy."""

    #: Seconds between scaling evaluations (Lambda uses one minute).
    evaluation_interval_seconds: float = 60.0
    #: Concurrency at mapping creation time.
    initial_concurrency: int = 3
    #: Hard cap on concurrent invocations (also capped by partition count).
    max_concurrency: int = 128
    #: Multiplicative scale-up factor applied when backlog warrants it.
    scale_up_factor: float = 3.0
    #: Backlog (events per current consumer) above which we scale up.
    backlog_per_consumer_threshold: float = 2.0
    #: Minimum concurrency while there is any backlog at all.
    min_concurrency: int = 1

    def validate(self) -> None:
        if self.evaluation_interval_seconds <= 0:
            raise ValueError("evaluation_interval_seconds must be > 0")
        if self.initial_concurrency < 1:
            raise ValueError("initial_concurrency must be >= 1")
        if self.max_concurrency < self.initial_concurrency:
            raise ValueError("max_concurrency must be >= initial_concurrency")
        if self.scale_up_factor <= 1.0:
            raise ValueError("scale_up_factor must be > 1")


class ProcessingPressureScaler:
    """The scaling decision function."""

    def __init__(self, policy: Optional[ScalingPolicy] = None, *, partitions: int = 1) -> None:
        self.policy = policy or ScalingPolicy()
        self.policy.validate()
        self.partitions = max(1, partitions)

    @property
    def concurrency_ceiling(self) -> int:
        """Concurrency can never exceed the partition count (Kafka semantics)."""
        return min(self.policy.max_concurrency, self.partitions)

    def next_concurrency(self, backlog: int, in_flight: int, current: int) -> int:
        """Decide the concurrency for the next evaluation window.

        * Backlog well above what the current consumers can absorb →
          multiply concurrency by ``scale_up_factor``.
        * Little or no pending work → shrink towards what is strictly
          needed (the scale-down "shortly before all tasks are complete"
          visible in Figure 4).
        """
        current = max(self.policy.min_concurrency, current)
        pending = backlog + in_flight
        if pending == 0:
            return 0
        per_consumer = backlog / max(1, current)
        if per_consumer > self.policy.backlog_per_consumer_threshold:
            scaled = int(math.ceil(current * self.policy.scale_up_factor))
        else:
            # Enough capacity: target just the work that remains.
            scaled = int(math.ceil(pending / max(1.0, self.policy.backlog_per_consumer_threshold)))
        scaled = max(self.policy.min_concurrency, scaled)
        return min(self.concurrency_ceiling, scaled)


@dataclass(frozen=True)
class ScalingSample:
    """One point of the Figure 4 / Figure 7 time series."""

    time_seconds: float
    queue_depth: int
    concurrent_invocations: int
    completed: int


@dataclass
class TriggerScalingSimulator:
    """Deterministic simulation of trigger scaling under a task backlog.

    Parameters
    ----------
    num_tasks:
        Number of buffered events (tasks) at time zero, plus whatever an
        optional ``arrival_fn`` adds over time.
    task_duration_seconds:
        How long each trigger invocation takes (30 s in Figure 4).
    partitions:
        Partition count of the topic (128 in Figure 4) — the concurrency
        ceiling.
    batch_size:
        Events consumed per invocation (1 in Figure 4).
    policy:
        Autoscaler policy; evaluation interval defaults to one minute.
    arrival_fn:
        Optional ``f(t) -> int`` giving the number of *new* events arriving
        during the time step ending at ``t`` (used for Figure 7, where FS
        events stream in rather than being pre-buffered).
    rebalance_pause_seconds:
        Consumer-group rebalance cost charged when a scaling evaluation
        changes the concurrency (0 disables the model, the default and
        the paper-calibrated behaviour).  Under *eager* rebalancing every
        in-flight invocation stalls for this long — the whole group stops
        while partitions reshuffle.  Under *cooperative* rebalancing only
        invocations whose partitions actually move stall: one per unit of
        concurrency delta.
    cooperative:
        Selects the cooperative (sticky, revoke-then-assign) rebalance
        cost model over the eager stop-the-world one.
    """

    num_tasks: int
    task_duration_seconds: float = 30.0
    partitions: int = 128
    batch_size: int = 1
    policy: ScalingPolicy = field(default_factory=ScalingPolicy)
    arrival_fn: Optional[Callable[[float], int]] = None
    time_step_seconds: float = 1.0
    rebalance_pause_seconds: float = 0.0
    cooperative: bool = True

    def run(self, max_seconds: float = 7200.0) -> List[ScalingSample]:
        """Run until the backlog is drained (or ``max_seconds``)."""
        scaler = ProcessingPressureScaler(self.policy, partitions=self.partitions)
        queue = int(self.num_tasks)
        completed = 0
        concurrency = min(self.policy.initial_concurrency, scaler.concurrency_ceiling)
        # Remaining processing time of each in-flight invocation.
        in_flight: List[float] = []
        samples: List[ScalingSample] = []
        t = 0.0
        next_evaluation = self.policy.evaluation_interval_seconds
        samples.append(ScalingSample(0.0, queue, len(in_flight), 0))
        while t < max_seconds:
            t += self.time_step_seconds
            if self.arrival_fn is not None:
                queue += max(0, int(self.arrival_fn(t)))
            # Progress in-flight work.
            still_running: List[float] = []
            for remaining in in_flight:
                remaining -= self.time_step_seconds
                if remaining > 1e-9:
                    still_running.append(remaining)
                else:
                    completed += self.batch_size
            in_flight = still_running
            # Start new invocations up to the current concurrency allowance.
            while queue > 0 and len(in_flight) < concurrency:
                take = min(self.batch_size, queue)
                queue -= take
                in_flight.append(self.task_duration_seconds)
            # Periodic scaling evaluation.
            if t >= next_evaluation:
                decided = scaler.next_concurrency(queue, len(in_flight), max(concurrency, 1))
                if (
                    decided != concurrency
                    and self.rebalance_pause_seconds > 0
                    and in_flight
                ):
                    # A scale event rebalances the trigger's consumer
                    # group: eager reshuffling stalls every in-flight
                    # invocation, cooperative stalls only those whose
                    # partitions move (at most the concurrency delta).
                    if self.cooperative:
                        stalled = min(abs(decided - concurrency), len(in_flight))
                    else:
                        stalled = len(in_flight)
                    for i in range(stalled):
                        in_flight[i] += self.rebalance_pause_seconds
                concurrency = decided
                next_evaluation += self.policy.evaluation_interval_seconds
            samples.append(ScalingSample(t, queue, len(in_flight), completed))
            if queue == 0 and not in_flight and (
                self.arrival_fn is None or t > max_seconds / 2
            ):
                break
        return samples

    # ------------------------------------------------------------------ #
    @staticmethod
    def peak_concurrency(samples: Sequence[ScalingSample]) -> int:
        return max(s.concurrent_invocations for s in samples)

    @staticmethod
    def time_to_reach(samples: Sequence[ScalingSample], concurrency: int) -> Optional[float]:
        for sample in samples:
            if sample.concurrent_invocations >= concurrency:
                return sample.time_seconds
        return None

    @staticmethod
    def completion_time(samples: Sequence[ScalingSample]) -> float:
        return samples[-1].time_seconds
