"""OAuth 2.0-style authorization server (Globus Auth stand-in).

The Octopus Web Service is registered as an OAuth resource server; users
authenticate against Globus Auth (which federates institutional identity
providers), obtain access tokens scoped to the OWS API, and present them
on every request (Section IV-B/IV-C).  Globus Auth's *dependent token*
delegation — letting a service obtain tokens to call other services on a
user's behalf — is what empowers triggers to invoke external actions; it
is modelled here by :meth:`AuthorizationServer.dependent_token`.
"""

from __future__ import annotations

import secrets
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.auth.identity import IdentityStore


class AuthError(Exception):
    """Base class for authentication/authorization failures."""


class InvalidTokenError(AuthError):
    """The token is unknown, expired or revoked."""


class InsufficientScopeError(AuthError):
    """The token does not carry the scope required by the resource server."""


@dataclass(frozen=True)
class Scope:
    """A named OAuth scope owned by a resource server."""

    resource_server: str
    name: str

    @property
    def scope_string(self) -> str:
        return f"{self.resource_server}:{self.name}"


@dataclass
class AccessToken:
    """A bearer token issued to a client for a set of scopes."""

    token: str
    principal: str
    scopes: List[str]
    issued_at: float
    expires_at: float
    refresh_token: Optional[str] = None
    delegated_from: Optional[str] = None
    revoked: bool = False

    def is_valid(self, now: Optional[float] = None) -> bool:
        now = now if now is not None else time.time()
        return not self.revoked and now < self.expires_at

    def has_scope(self, scope: str) -> bool:
        return scope in self.scopes


@dataclass
class ResourceServer:
    """A registered resource server (OWS, transfer service, compute service...)."""

    name: str
    scopes: List[str] = field(default_factory=list)


class AuthorizationServer:
    """Issues, validates, refreshes, delegates and revokes access tokens."""

    def __init__(
        self,
        identities: Optional[IdentityStore] = None,
        *,
        default_token_lifetime: float = 48 * 3600.0,
    ) -> None:
        self.identities = identities or IdentityStore()
        self.default_token_lifetime = default_token_lifetime
        self._resource_servers: Dict[str, ResourceServer] = {}
        self._tokens: Dict[str, AccessToken] = {}
        self._refresh_tokens: Dict[str, str] = {}  # refresh token -> access token

    # ------------------------------------------------------------------ #
    # Resource server / scope registration
    # ------------------------------------------------------------------ #
    def register_resource_server(self, name: str, scopes: List[str]) -> ResourceServer:
        server = self._resource_servers.get(name)
        if server is None:
            server = ResourceServer(name=name)
            self._resource_servers[name] = server
        for scope in scopes:
            if scope not in server.scopes:
                server.scopes.append(scope)
        return server

    def resource_server(self, name: str) -> ResourceServer:
        try:
            return self._resource_servers[name]
        except KeyError:
            raise AuthError(f"resource server {name!r} is not registered") from None

    def scope_strings(self, name: str) -> List[str]:
        server = self.resource_server(name)
        return [Scope(name, s).scope_string for s in server.scopes]

    # ------------------------------------------------------------------ #
    # Authentication flows
    # ------------------------------------------------------------------ #
    def login(
        self,
        username: str,
        domain: str,
        requested_scopes: List[str],
        *,
        lifetime: Optional[float] = None,
    ) -> AccessToken:
        """Authorization-code-style login: authenticate and issue a token.

        ``requested_scopes`` use the ``resource_server:scope`` form; each
        one must belong to a registered resource server.
        """
        identity = self.identities.create_identity(username, domain)
        self._validate_scopes(requested_scopes)
        return self._issue(identity.principal, requested_scopes, lifetime, with_refresh=True)

    def client_credentials_grant(
        self, client_id: str, requested_scopes: List[str], *, lifetime: Optional[float] = None
    ) -> AccessToken:
        """Service-to-service authentication (confidential client)."""
        self._validate_scopes(requested_scopes)
        return self._issue(client_id, requested_scopes, lifetime, with_refresh=False)

    def refresh(self, refresh_token: str) -> AccessToken:
        """Exchange a refresh token for a fresh access token."""
        access_token = self._refresh_tokens.get(refresh_token)
        if access_token is None:
            raise InvalidTokenError("unknown refresh token")
        old = self._tokens[access_token]
        old.revoked = True
        new = self._issue(old.principal, old.scopes, None, with_refresh=True)
        del self._refresh_tokens[refresh_token]
        return new

    def dependent_token(
        self, token: str, resource_server: str, scopes: Optional[List[str]] = None
    ) -> AccessToken:
        """Issue a delegated token for ``resource_server`` on behalf of the user.

        This models Globus Auth's dependent-token grant: a service holding
        a user's token for itself can obtain tokens to call *other*
        services as that user — for example, an Octopus trigger calling the
        transfer service.
        """
        source = self.validate(token)
        server = self.resource_server(resource_server)
        scope_names = scopes if scopes is not None else server.scopes
        delegated_scopes = [Scope(resource_server, s).scope_string for s in scope_names]
        issued = self._issue(source.principal, delegated_scopes, None, with_refresh=False)
        issued.delegated_from = source.token
        return issued

    # ------------------------------------------------------------------ #
    # Validation / revocation
    # ------------------------------------------------------------------ #
    def validate(
        self, token: str, required_scope: Optional[str] = None, now: Optional[float] = None
    ) -> AccessToken:
        """Validate a bearer token and (optionally) a required scope."""
        entry = self._tokens.get(token)
        if entry is None:
            raise InvalidTokenError("unknown access token")
        if not entry.is_valid(now=now):
            raise InvalidTokenError("token expired or revoked")
        if required_scope is not None and not entry.has_scope(required_scope):
            raise InsufficientScopeError(
                f"token lacks required scope {required_scope!r} (has {entry.scopes})"
            )
        return entry

    def introspect(self, token: str) -> dict:
        """RFC 7662-style introspection response."""
        entry = self._tokens.get(token)
        if entry is None or not entry.is_valid():
            return {"active": False}
        return {
            "active": True,
            "sub": entry.principal,
            "scope": " ".join(entry.scopes),
            "exp": entry.expires_at,
            "iat": entry.issued_at,
        }

    def revoke(self, token: str) -> None:
        entry = self._tokens.get(token)
        if entry is not None:
            entry.revoked = True

    def revoke_all_for(self, principal: str) -> int:
        count = 0
        for entry in self._tokens.values():
            if entry.principal == principal and not entry.revoked:
                entry.revoked = True
                count += 1
        return count

    # ------------------------------------------------------------------ #
    def _validate_scopes(self, scopes: List[str]) -> None:
        if not scopes:
            raise AuthError("at least one scope must be requested")
        for scope in scopes:
            if ":" not in scope:
                raise AuthError(f"malformed scope {scope!r}; expected 'server:scope'")
            server, name = scope.split(":", 1)
            registered = self.resource_server(server)
            if name not in registered.scopes:
                raise AuthError(f"scope {name!r} is not offered by {server!r}")

    def _issue(
        self,
        principal: str,
        scopes: List[str],
        lifetime: Optional[float],
        *,
        with_refresh: bool,
    ) -> AccessToken:
        lifetime = lifetime if lifetime is not None else self.default_token_lifetime
        now = time.time()
        token = AccessToken(
            token=secrets.token_urlsafe(32),
            principal=principal,
            scopes=list(scopes),
            issued_at=now,
            expires_at=now + lifetime,
            refresh_token=secrets.token_urlsafe(32) if with_refresh else None,
        )
        self._tokens[token.token] = token
        if token.refresh_token:
            self._refresh_tokens[token.refresh_token] = token.token
        return token
