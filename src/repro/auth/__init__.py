"""Authentication and authorization substrates.

The paper builds Octopus' security model on Globus Auth (an OAuth 2.0
identity and access-management platform federating thousands of identity
providers) and maps authenticated users to AWS IAM identities whose keys
authorize access to MSK topics.  This package provides both halves:

* :mod:`repro.auth.identity` — identity providers and user identities.
* :mod:`repro.auth.oauth` — an OAuth 2.0-style authorization server with
  access tokens, scopes, refresh and dependent-token delegation.
* :mod:`repro.auth.iam` — IAM identities, access keys and policies.
* :mod:`repro.auth.acl` — per-topic access control lists.
"""

from repro.auth.identity import Identity, IdentityProvider, IdentityStore
from repro.auth.oauth import (
    AccessToken,
    AuthorizationServer,
    AuthError,
    InvalidTokenError,
    Scope,
)
from repro.auth.iam import AccessKey, IamIdentity, IamService, PolicyStatement
from repro.auth.acl import AclEntry, AclStore, Operation

__all__ = [
    "Identity",
    "IdentityProvider",
    "IdentityStore",
    "AccessToken",
    "AuthorizationServer",
    "AuthError",
    "InvalidTokenError",
    "Scope",
    "AccessKey",
    "IamIdentity",
    "IamService",
    "PolicyStatement",
    "AclEntry",
    "AclStore",
    "Operation",
]
