"""Per-topic access control lists.

Fine-grained access control is one of the paper's core requirements
(Section III-B): a user or group may only produce to and consume from the
topics they have been granted, and owners self-manage sharing through the
``POST /topic/<topic>/user`` route.  The ACL store keeps an entry per
(principal, topic) pair with the set of allowed operations, and the fabric
cluster consults it on every produce/fetch via its authorizer hook.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple


class Operation(str, Enum):
    """Topic-level operations, mirroring Kafka ACL operation names."""

    READ = "READ"
    WRITE = "WRITE"
    DESCRIBE = "DESCRIBE"

    @classmethod
    def parse(cls, value: "str | Operation") -> "Operation":
        if isinstance(value, Operation):
            return value
        try:
            return cls(value.upper())
        except ValueError:
            raise ValueError(f"unknown ACL operation {value!r}") from None


#: The grants an owner receives when registering a topic (Section IV-B).
OWNER_OPERATIONS: Tuple[Operation, ...] = (
    Operation.READ,
    Operation.WRITE,
    Operation.DESCRIBE,
)


@dataclass(frozen=True)
class AclEntry:
    """One principal's permissions on one topic."""

    principal: str
    topic: str
    operations: frozenset

    def allows(self, operation: "str | Operation") -> bool:
        return Operation.parse(operation) in self.operations


class AclStore:
    """Thread-safe ACL storage with grant/revoke and a fabric authorizer hook."""

    def __init__(self, group_resolver=None) -> None:
        """``group_resolver(principal) -> list[str]`` may map users to groups."""
        self._entries: Dict[Tuple[str, str], Set[Operation]] = {}
        self._lock = threading.RLock()
        self._group_resolver = group_resolver
        self._invalidation_listeners: List[Callable[[], None]] = []

    # ------------------------------------------------------------------ #
    def add_invalidation_listener(self, listener: Callable[[], None]) -> None:
        """Call ``listener()`` after every mutation (grant/revoke).

        This is the invalidation hook the fabric's epoch-scoped ACL caching
        needs: wiring :meth:`repro.fabric.cluster.FabricCluster.bump_auth_epoch`
        here makes standing fetch sessions re-authorize their topics on the
        first fetch after any ACL change, instead of on every fetch.
        Registering the same listener twice is a no-op, so re-installing an
        :meth:`as_authorizer` adapter does not stack duplicate bumps.
        """
        if listener not in self._invalidation_listeners:
            self._invalidation_listeners.append(listener)

    def _notify_invalidation(self) -> None:
        for listener in self._invalidation_listeners:
            listener()

    # ------------------------------------------------------------------ #
    def grant(
        self, principal: str, topic: str, operations: Iterable["str | Operation"]
    ) -> AclEntry:
        ops = {Operation.parse(op) for op in operations}
        with self._lock:
            current = self._entries.setdefault((principal, topic), set())
            current.update(ops)
            entry = AclEntry(principal, topic, frozenset(current))
        self._notify_invalidation()
        return entry

    def grant_owner(self, principal: str, topic: str) -> AclEntry:
        """Grant the full owner set (READ, WRITE, DESCRIBE)."""
        return self.grant(principal, topic, OWNER_OPERATIONS)

    def revoke(
        self,
        principal: str,
        topic: str,
        operations: Optional[Iterable["str | Operation"]] = None,
    ) -> Optional[AclEntry]:
        with self._lock:
            key = (principal, topic)
            if key not in self._entries:
                return None
            if operations is None:
                del self._entries[key]
                entry = None
            else:
                remaining = self._entries[key] - {
                    Operation.parse(op) for op in operations
                }
                if remaining:
                    self._entries[key] = remaining
                    entry = AclEntry(principal, topic, frozenset(remaining))
                else:
                    del self._entries[key]
                    entry = None
        self._notify_invalidation()
        return entry

    def revoke_topic(self, topic: str) -> int:
        """Remove every entry for a topic (topic deletion); returns count."""
        with self._lock:
            keys = [k for k in self._entries if k[1] == topic]
            for key in keys:
                del self._entries[key]
        self._notify_invalidation()
        return len(keys)

    # ------------------------------------------------------------------ #
    def is_authorized(
        self, principal: Optional[str], operation: "str | Operation", topic: str
    ) -> bool:
        """Check a principal (or any group it belongs to) for an operation."""
        if principal is None:
            return False
        op = Operation.parse(operation)
        with self._lock:
            if op in self._entries.get((principal, topic), set()):
                return True
        if self._group_resolver is not None:
            for group in self._group_resolver(principal):
                with self._lock:
                    if op in self._entries.get((group, topic), set()):
                        return True
        return False

    def operations(self, principal: str, topic: str) -> Set[Operation]:
        with self._lock:
            return set(self._entries.get((principal, topic), set()))

    def topics_for(self, principal: str, operation: "str | Operation" = Operation.DESCRIBE) -> List[str]:
        """Topics on which ``principal`` holds ``operation`` (``GET /topics``)."""
        op = Operation.parse(operation)
        with self._lock:
            direct = {t for (p, t), ops in self._entries.items() if p == principal and op in ops}
        if self._group_resolver is not None:
            for group in self._group_resolver(principal):
                with self._lock:
                    direct |= {
                        t for (p, t), ops in self._entries.items() if p == group and op in ops
                    }
        return sorted(direct)

    def principals_for(self, topic: str) -> Dict[str, Set[Operation]]:
        with self._lock:
            return {
                p: set(ops) for (p, t), ops in self._entries.items() if t == topic and ops
            }

    def as_authorizer(self):
        """Adapter usable as :class:`repro.fabric.cluster.FabricCluster` authorizer.

        The returned callable carries this store's
        :meth:`add_invalidation_listener` hook, so a cluster it is installed
        on auto-wires its auth-epoch bump to ACL mutations — standing fetch
        sessions then see grants/revocations on their next fetch without any
        manual wiring at the call site.
        """
        def authorize(principal: Optional[str], operation: str, topic: str) -> bool:
            return self.is_authorized(principal, operation, topic)

        authorize.add_invalidation_listener = self.add_invalidation_listener
        return authorize
