"""IAM-like identities, access keys, policies and roles.

MSK only understands AWS IAM (or SCRAM) credentials, so the Octopus Web
Service creates one IAM identity per Globus user and returns an access
key/secret pair from ``GET /create_key`` (Section IV-C).  Triggers also
need IAM roles and policies so the Lambda function may read from the
event-source topic and write logs (Section IV-D).
"""

from __future__ import annotations

import fnmatch
import secrets
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class IamError(Exception):
    """Base class for IAM failures."""


class NoSuchEntityError(IamError):
    """The referenced IAM identity, role or key does not exist."""


class AccessDeniedError(IamError):
    """Policy evaluation denied the requested action."""


@dataclass(frozen=True)
class PolicyStatement:
    """A single Allow/Deny statement over actions and resources.

    Actions and resources support trailing-``*`` glob patterns, the subset
    of IAM syntax the Octopus control plane uses (e.g.
    ``kafka-cluster:WriteData`` on ``topic/diaspora/*``).
    """

    effect: str
    actions: tuple
    resources: tuple

    def __post_init__(self) -> None:
        if self.effect not in ("Allow", "Deny"):
            raise ValueError("effect must be 'Allow' or 'Deny'")

    def matches(self, action: str, resource: str) -> bool:
        return any(fnmatch.fnmatch(action, pattern) for pattern in self.actions) and any(
            fnmatch.fnmatch(resource, pattern) for pattern in self.resources
        )

    @classmethod
    def allow(cls, actions: List[str], resources: List[str]) -> "PolicyStatement":
        return cls("Allow", tuple(actions), tuple(resources))

    @classmethod
    def deny(cls, actions: List[str], resources: List[str]) -> "PolicyStatement":
        return cls("Deny", tuple(actions), tuple(resources))


@dataclass
class AccessKey:
    """An access key/secret pair bound to an IAM identity."""

    access_key_id: str
    secret_access_key: str
    principal: str
    created_at: float = field(default_factory=time.time)
    active: bool = True


@dataclass
class IamIdentity:
    """An IAM user or role."""

    principal: str
    kind: str = "user"  # "user" or "role"
    policies: List[PolicyStatement] = field(default_factory=list)
    tags: Dict[str, str] = field(default_factory=dict)


class IamService:
    """Manages IAM identities, keys and policy evaluation."""

    def __init__(self) -> None:
        self._identities: Dict[str, IamIdentity] = {}
        self._keys: Dict[str, AccessKey] = {}

    # ------------------------------------------------------------------ #
    # Identities
    # ------------------------------------------------------------------ #
    def create_identity(
        self, principal: str, *, kind: str = "user", tags: Optional[Dict[str, str]] = None
    ) -> IamIdentity:
        """Create an IAM identity; idempotent for an existing principal."""
        if kind not in ("user", "role"):
            raise ValueError("kind must be 'user' or 'role'")
        identity = self._identities.get(principal)
        if identity is None:
            identity = IamIdentity(principal=principal, kind=kind, tags=dict(tags or {}))
            self._identities[principal] = identity
        return identity

    def identity(self, principal: str) -> IamIdentity:
        try:
            return self._identities[principal]
        except KeyError:
            raise NoSuchEntityError(f"IAM identity {principal!r} does not exist") from None

    def has_identity(self, principal: str) -> bool:
        return principal in self._identities

    def delete_identity(self, principal: str) -> None:
        self._identities.pop(principal, None)
        for key_id in [k for k, v in self._keys.items() if v.principal == principal]:
            del self._keys[key_id]

    def list_identities(self) -> List[str]:
        return sorted(self._identities)

    # ------------------------------------------------------------------ #
    # Access keys
    # ------------------------------------------------------------------ #
    def create_access_key(self, principal: str) -> AccessKey:
        """Create a key/secret for ``principal`` (auto-creating the identity)."""
        self.create_identity(principal)
        key = AccessKey(
            access_key_id="AKIA" + secrets.token_hex(8).upper(),
            secret_access_key=secrets.token_urlsafe(30),
            principal=principal,
        )
        self._keys[key.access_key_id] = key
        return key

    def keys_for(self, principal: str) -> List[AccessKey]:
        return [k for k in self._keys.values() if k.principal == principal]

    def deactivate_key(self, access_key_id: str) -> None:
        key = self._keys.get(access_key_id)
        if key is None:
            raise NoSuchEntityError(f"access key {access_key_id!r} does not exist")
        key.active = False

    def authenticate(self, access_key_id: str, secret_access_key: str) -> str:
        """Return the principal for a valid key/secret pair."""
        key = self._keys.get(access_key_id)
        if key is None or not key.active or key.secret_access_key != secret_access_key:
            raise AccessDeniedError("invalid or inactive access key")
        return key.principal

    # ------------------------------------------------------------------ #
    # Policies
    # ------------------------------------------------------------------ #
    def attach_policy(self, principal: str, statement: PolicyStatement) -> None:
        self.identity(principal).policies.append(statement)

    def detach_all_policies(self, principal: str) -> None:
        self.identity(principal).policies.clear()

    def is_allowed(self, principal: str, action: str, resource: str) -> bool:
        """Evaluate policies: explicit Deny wins, otherwise any Allow."""
        identity = self._identities.get(principal)
        if identity is None:
            return False
        allowed = False
        for statement in identity.policies:
            if statement.matches(action, resource):
                if statement.effect == "Deny":
                    return False
                allowed = True
        return allowed

    def check(self, principal: str, action: str, resource: str) -> None:
        if not self.is_allowed(principal, action, resource):
            raise AccessDeniedError(
                f"{principal!r} may not {action} on {resource}"
            )
