"""Identities and identity providers.

Globus Auth federates a large number of institutional identity providers;
a user authenticates with their home institution and receives a Globus
identity.  :class:`IdentityStore` models that federation: providers are
registered by domain, and users are identified by ``username@domain``
pairs mapped to stable identity ids.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class IdentityProvider:
    """An institutional identity provider (e.g. a university or lab)."""

    domain: str
    display_name: str
    provider_id: str = field(default_factory=lambda: str(uuid.uuid4()))


@dataclass(frozen=True)
class Identity:
    """A user identity issued by one provider."""

    username: str
    provider: IdentityProvider
    identity_id: str = field(default_factory=lambda: str(uuid.uuid4()))

    @property
    def principal(self) -> str:
        """Canonical ``user@domain`` form used across Octopus."""
        return f"{self.username}@{self.provider.domain}"


class IdentityStore:
    """Registry of identity providers and the identities they have issued."""

    def __init__(self) -> None:
        self._providers: Dict[str, IdentityProvider] = {}
        self._identities: Dict[str, Identity] = {}
        self._groups: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------ #
    def register_provider(self, domain: str, display_name: Optional[str] = None) -> IdentityProvider:
        if domain in self._providers:
            return self._providers[domain]
        provider = IdentityProvider(domain=domain, display_name=display_name or domain)
        self._providers[domain] = provider
        return provider

    def providers(self) -> List[IdentityProvider]:
        return list(self._providers.values())

    def provider(self, domain: str) -> IdentityProvider:
        try:
            return self._providers[domain]
        except KeyError:
            raise KeyError(f"identity provider {domain!r} is not registered") from None

    # ------------------------------------------------------------------ #
    def create_identity(self, username: str, domain: str) -> Identity:
        """Create (or return) the identity for ``username@domain``."""
        provider = self.register_provider(domain)
        principal = f"{username}@{domain}"
        if principal in self._identities:
            return self._identities[principal]
        identity = Identity(username=username, provider=provider)
        self._identities[principal] = identity
        return identity

    def lookup(self, principal: str) -> Optional[Identity]:
        return self._identities.get(principal)

    def identities(self) -> List[Identity]:
        return list(self._identities.values())

    # ------------------------------------------------------------------ #
    # Groups (used to share topics with collaborations)
    # ------------------------------------------------------------------ #
    def create_group(self, name: str, members: Optional[List[str]] = None) -> List[str]:
        self._groups.setdefault(name, [])
        for member in members or []:
            self.add_to_group(name, member)
        return list(self._groups[name])

    def add_to_group(self, name: str, principal: str) -> None:
        if self.lookup(principal) is None:
            raise KeyError(f"unknown principal {principal!r}")
        members = self._groups.setdefault(name, [])
        if principal not in members:
            members.append(principal)

    def remove_from_group(self, name: str, principal: str) -> None:
        members = self._groups.get(name, [])
        if principal in members:
            members.remove(principal)

    def group_members(self, name: str) -> List[str]:
        return list(self._groups.get(name, []))

    def groups_for(self, principal: str) -> List[str]:
        return sorted(g for g, members in self._groups.items() if principal in members)
