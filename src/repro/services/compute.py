"""funcX / Globus-Compute-like federated function execution service.

The scheduling and epidemic applications dispatch work to remote compute
endpoints (edge devices up to supercomputers).  Endpoints register with a
capacity; tasks are submitted against an endpoint and executed when the
service is ticked, reporting runtime and energy so the scheduler can learn
from them.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

_task_ids = itertools.count(1)


@dataclass
class ComputeEndpoint:
    """A registered execution endpoint (one managed resource)."""

    name: str
    cores: int = 32
    relative_speed: float = 1.0
    power_watts_per_core: float = 3.0
    running: int = 0

    @property
    def available_cores(self) -> int:
        return max(0, self.cores - self.running)


@dataclass
class ComputeTask:
    """One function execution request."""

    task_id: str
    endpoint: str
    function_name: str
    payload: Any
    estimated_seconds: float
    status: str = "PENDING"          # PENDING -> RUNNING -> COMPLETED | FAILED
    result: Any = None
    runtime_seconds: float = 0.0
    energy_joules: float = 0.0
    submitted_at: float = field(default_factory=time.time)


class ComputeService:
    """Registers endpoints, queues tasks and executes them on ``tick``."""

    def __init__(self, *, on_task_complete: Optional[Callable[[ComputeTask], None]] = None) -> None:
        self._endpoints: Dict[str, ComputeEndpoint] = {}
        self._tasks: Dict[str, ComputeTask] = {}
        self._queue: List[str] = []
        self._handlers: Dict[str, Callable[[Any], Any]] = {}
        self.on_task_complete = on_task_complete

    # ------------------------------------------------------------------ #
    # Endpoints and functions
    # ------------------------------------------------------------------ #
    def register_endpoint(self, name: str, *, cores: int = 32, relative_speed: float = 1.0,
                          power_watts_per_core: float = 3.0) -> ComputeEndpoint:
        endpoint = ComputeEndpoint(
            name=name, cores=cores, relative_speed=relative_speed,
            power_watts_per_core=power_watts_per_core,
        )
        self._endpoints[name] = endpoint
        return endpoint

    def endpoints(self) -> List[ComputeEndpoint]:
        return list(self._endpoints.values())

    def endpoint(self, name: str) -> ComputeEndpoint:
        return self._endpoints[name]

    def register_function(self, name: str, handler: Callable[[Any], Any]) -> None:
        self._handlers[name] = handler

    # ------------------------------------------------------------------ #
    # Task lifecycle
    # ------------------------------------------------------------------ #
    def submit(self, endpoint: str, function_name: str, payload: Any = None,
               *, estimated_seconds: float = 1.0) -> ComputeTask:
        if endpoint not in self._endpoints:
            raise KeyError(f"endpoint {endpoint!r} is not registered")
        task = ComputeTask(
            task_id=f"task-{next(_task_ids):08d}",
            endpoint=endpoint,
            function_name=function_name,
            payload=payload,
            estimated_seconds=estimated_seconds,
        )
        self._tasks[task.task_id] = task
        self._queue.append(task.task_id)
        return task

    def tick(self) -> List[ComputeTask]:
        """Run every queued task whose endpoint has a free core."""
        completed: List[ComputeTask] = []
        remaining: List[str] = []
        for task_id in self._queue:
            task = self._tasks[task_id]
            endpoint = self._endpoints[task.endpoint]
            if endpoint.available_cores <= 0:
                remaining.append(task_id)
                continue
            endpoint.running += 1
            task.status = "RUNNING"
            handler = self._handlers.get(task.function_name)
            try:
                task.result = handler(task.payload) if handler is not None else None
                task.status = "COMPLETED"
            except Exception as exc:  # noqa: BLE001 - task failures are data
                task.result = f"{type(exc).__name__}: {exc}"
                task.status = "FAILED"
            task.runtime_seconds = task.estimated_seconds / endpoint.relative_speed
            task.energy_joules = (
                task.runtime_seconds * endpoint.power_watts_per_core
            )
            endpoint.running -= 1
            completed.append(task)
            if self.on_task_complete is not None:
                self.on_task_complete(task)
        self._queue = remaining
        return completed

    def drain(self, max_ticks: int = 1000) -> List[ComputeTask]:
        """Tick until the queue is empty."""
        completed: List[ComputeTask] = []
        for _ in range(max_ticks):
            if not self._queue:
                break
            completed.extend(self.tick())
        return completed

    # ------------------------------------------------------------------ #
    def task(self, task_id: str) -> ComputeTask:
        return self._tasks[task_id]

    def tasks(self, *, status: Optional[str] = None) -> List[ComputeTask]:
        out = list(self._tasks.values())
        if status is not None:
            out = [t for t in out if t.status == status]
        return out

    def queued(self) -> int:
        return len(self._queue)
