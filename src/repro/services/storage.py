"""S3-like object store used for event persistence.

Figure 2 shows events optionally persisted to reliable cloud storage (the
red arrows).  The object store here is the persistence sink the fabric
cluster calls for topics configured with ``persist_to_store=True``, and it
doubles as generic blob storage for the applications (model artefacts,
epidemic data snapshots).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.fabric.record import StoredRecord


@dataclass(frozen=True)
class StoredObject:
    """One object version in a bucket."""

    bucket: str
    key: str
    data: bytes
    content_type: str
    stored_at: float

    @property
    def size_bytes(self) -> int:
        return len(self.data)


class ObjectStore:
    """Versioned, bucketed blob storage."""

    def __init__(self) -> None:
        self._objects: Dict[str, Dict[str, List[StoredObject]]] = {}

    # ------------------------------------------------------------------ #
    def create_bucket(self, bucket: str) -> None:
        self._objects.setdefault(bucket, {})

    def buckets(self) -> List[str]:
        return sorted(self._objects)

    def put(self, bucket: str, key: str, data: "bytes | str | dict",
            *, content_type: Optional[str] = None) -> StoredObject:
        self.create_bucket(bucket)
        if isinstance(data, dict):
            payload = json.dumps(data, sort_keys=True, default=str).encode("utf-8")
            content_type = content_type or "application/json"
        elif isinstance(data, str):
            payload = data.encode("utf-8")
            content_type = content_type or "text/plain"
        else:
            payload = bytes(data)
            content_type = content_type or "application/octet-stream"
        obj = StoredObject(
            bucket=bucket, key=key, data=payload, content_type=content_type,
            stored_at=time.time(),
        )
        self._objects[bucket].setdefault(key, []).append(obj)
        return obj

    def get(self, bucket: str, key: str) -> StoredObject:
        versions = self._objects.get(bucket, {}).get(key)
        if not versions:
            raise KeyError(f"s3://{bucket}/{key} does not exist")
        return versions[-1]

    def get_json(self, bucket: str, key: str) -> dict:
        return json.loads(self.get(bucket, key).data.decode("utf-8"))

    def exists(self, bucket: str, key: str) -> bool:
        return bool(self._objects.get(bucket, {}).get(key))

    def list(self, bucket: str, prefix: str = "") -> List[str]:
        return sorted(k for k in self._objects.get(bucket, {}) if k.startswith(prefix))

    def versions(self, bucket: str, key: str) -> int:
        return len(self._objects.get(bucket, {}).get(key, ()))

    def delete(self, bucket: str, key: str) -> bool:
        bucket_objects = self._objects.get(bucket, {})
        return bucket_objects.pop(key, None) is not None

    # ------------------------------------------------------------------ #
    def persistence_sink(self, bucket: str = "octopus-events"):
        """Adapter for :meth:`repro.fabric.admin.FabricAdmin.add_persistence_sink`."""
        self.create_bucket(bucket)

        def sink(topic: str, partition: int, record: StoredRecord) -> None:
            key = f"{topic}/{partition}/{record.offset:012d}.json"
            self.put(bucket, key, record.record.to_dict())

        return sink

    def total_bytes(self, bucket: str) -> int:
        return sum(
            version.size_bytes
            for versions in self._objects.get(bucket, {}).values()
            for version in versions
        )
