"""Globus-Transfer-like data movement service.

The data-automation trigger responds to file-creation events by submitting
a transfer request from the source filesystem to the destination
(Section VI-B).  The service is asynchronous: ``submit`` returns a task id
immediately and the transfer completes when the service is ``advance``-d
(or instantly when ``auto_complete`` is on, which keeps simple examples
simple).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

_task_ids = itertools.count(1)


@dataclass
class TransferTask:
    """One submitted transfer."""

    task_id: str
    source_endpoint: str
    destination_endpoint: str
    source_path: str
    destination_path: str
    size_bytes: int
    status: str = "ACTIVE"           # ACTIVE -> SUCCEEDED | FAILED
    submitted_at: float = field(default_factory=time.time)
    completed_at: Optional[float] = None
    principal: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "task_id": self.task_id,
            "source": f"{self.source_endpoint}:{self.source_path}",
            "destination": f"{self.destination_endpoint}:{self.destination_path}",
            "size": self.size_bytes,
            "status": self.status,
        }


class TransferService:
    """Accepts transfer requests and tracks their lifecycle."""

    def __init__(
        self,
        *,
        bandwidth_mbps: float = 10_000.0,
        auto_complete: bool = True,
        on_complete: Optional[Callable[[TransferTask], None]] = None,
    ) -> None:
        self.bandwidth_mbps = bandwidth_mbps
        self.auto_complete = auto_complete
        self.on_complete = on_complete
        self._tasks: Dict[str, TransferTask] = {}
        self._failures: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    def submit(
        self,
        *,
        source_endpoint: str,
        destination_endpoint: str,
        source_path: str,
        destination_path: Optional[str] = None,
        size_bytes: int = 0,
        principal: Optional[str] = None,
    ) -> TransferTask:
        """Submit a transfer; returns the task (ACTIVE or already SUCCEEDED)."""
        task = TransferTask(
            task_id=f"transfer-{next(_task_ids):08d}",
            source_endpoint=source_endpoint,
            destination_endpoint=destination_endpoint,
            source_path=source_path,
            destination_path=destination_path or source_path,
            size_bytes=size_bytes,
            principal=principal,
        )
        self._tasks[task.task_id] = task
        if self.auto_complete:
            self._complete(task)
        return task

    def inject_failure(self, source_path: str, reason: str = "endpoint unreachable") -> None:
        """Make the next transfer of ``source_path`` fail (failure injection)."""
        self._failures[source_path] = reason

    def advance(self) -> List[TransferTask]:
        """Complete every ACTIVE transfer (one service 'tick')."""
        finished = []
        for task in self._tasks.values():
            if task.status == "ACTIVE":
                self._complete(task)
                finished.append(task)
        return finished

    def _complete(self, task: TransferTask) -> None:
        if task.source_path in self._failures:
            task.status = "FAILED"
            task.completed_at = time.time()
            del self._failures[task.source_path]
        else:
            task.status = "SUCCEEDED"
            task.completed_at = time.time()
        if self.on_complete is not None:
            self.on_complete(task)

    # ------------------------------------------------------------------ #
    def status(self, task_id: str) -> str:
        return self._tasks[task_id].status

    def task(self, task_id: str) -> TransferTask:
        return self._tasks[task_id]

    def tasks(self, *, status: Optional[str] = None) -> List[TransferTask]:
        out = list(self._tasks.values())
        if status is not None:
            out = [t for t in out if t.status == status]
        return out

    def transfer_time_seconds(self, size_bytes: int) -> float:
        """Estimated duration of a transfer at the configured bandwidth."""
        return (size_bytes * 8.0) / (self.bandwidth_mbps * 1e6)
