"""Simulated external science services Octopus triggers act upon.

Octopus actions are calls to remote web services: Globus Transfer for data
movement, a funcX/Globus-Compute-like service for remote function
execution, and cloud object storage for event persistence.  These
stand-ins expose the same call patterns (submit → task id → status) so
trigger handlers exercise realistic control flow.
"""

from repro.services.transfer import TransferService, TransferTask
from repro.services.compute import ComputeService, ComputeTask
from repro.services.storage import ObjectStore

__all__ = [
    "TransferService",
    "TransferTask",
    "ComputeService",
    "ComputeTask",
    "ObjectStore",
]
