"""Partition replication and in-sync replica (ISR) tracking.

Each topic partition is assigned to ``replication_factor`` brokers; one of
them is the leader.  After every leader append the replication manager
pushes the new records to the online followers and recomputes the ISR.
``acks=all`` produces succeed only when the ISR (leader included) is at
least ``min.insync.replicas``.

Replication is zero-copy: the leader fetch returns a packed batch view
over the log's storage chunks, and the follower adopts those very chunks
by reference (``PartitionLog.append_stored`` recognises packed runs) — no
record is decoded or re-encoded on the leader → follower path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.sync import create_rlock
from repro.fabric.broker import Broker
from repro.fabric.errors import (
    CorruptBatchError,
    NotEnoughReplicasError,
    UnknownPartitionError,
)
from repro.fabric.record import PackedRecordBatch, PackedView


@dataclass
class PartitionAssignment:
    """Replica placement and leadership for one topic partition."""

    topic: str
    partition: int
    replicas: List[int]
    leader: int
    isr: List[int] = field(default_factory=list)
    leader_epoch: int = 0

    def __post_init__(self) -> None:
        if self.leader not in self.replicas:
            raise ValueError("leader must be one of the assigned replicas")
        if not self.isr:
            self.isr = list(self.replicas)

    def describe(self) -> dict:
        return {
            "topic": self.topic,
            "partition": self.partition,
            "replicas": list(self.replicas),
            "leader": self.leader,
            "isr": list(self.isr),
            "leader_epoch": self.leader_epoch,
        }


class ReplicationManager:
    """Propagates leader appends to followers and maintains ISRs."""

    def __init__(self, brokers: Dict[int, Broker]) -> None:
        self._brokers = brokers
        self._assignments: Dict[tuple[str, int], PartitionAssignment] = {}  #: guarded_by _lock
        self._lock = create_rlock("ReplicationManager")

    # ------------------------------------------------------------------ #
    # Assignment bookkeeping
    # ------------------------------------------------------------------ #
    def register(self, assignment: PartitionAssignment) -> None:
        with self._lock:
            self._assignments[(assignment.topic, assignment.partition)] = assignment

    def unregister_topic(self, topic: str) -> None:
        with self._lock:
            for key in [k for k in self._assignments if k[0] == topic]:
                del self._assignments[key]

    def assignment(self, topic: str, partition: int) -> PartitionAssignment:
        with self._lock:
            try:
                return self._assignments[(topic, partition)]
            except KeyError:
                raise UnknownPartitionError(
                    f"no replica assignment for {topic}-{partition}"
                ) from None

    def assignments_for_topic(self, topic: str) -> List[PartitionAssignment]:
        with self._lock:
            return [a for (t, _), a in self._assignments.items() if t == topic]

    def all_assignments(self) -> Sequence[PartitionAssignment]:
        with self._lock:
            return tuple(self._assignments.values())

    # ------------------------------------------------------------------ #
    # Replication data path
    # ------------------------------------------------------------------ #
    def replicate_from_leader(self, topic: str, partition: int) -> List[int]:
        """Push any records missing on followers; return the new ISR."""
        with self._lock:
            assignment = self._assignments[(topic, partition)]
        leader_broker = self._brokers[assignment.leader]
        if not leader_broker.online:
            return assignment.isr
        leader_log = leader_broker.replica(topic, partition)
        leader_end = leader_log.log_end_offset
        new_isr = [assignment.leader]
        for broker_id in assignment.replicas:
            if broker_id == assignment.leader:
                continue
            follower = self._brokers[broker_id]
            if not follower.online:
                continue
            # Create-if-missing inherits the leader log's storage config so
            # a replica first materialized here rolls segments exactly like
            # one placed by FabricAdmin (which passes TopicConfig.log_kwargs).
            follower_log = follower.create_replica(
                topic,
                partition,
                max_message_bytes=leader_log.max_message_bytes,
                segment_records=leader_log.segment_records,
                segment_bytes=leader_log.segment_bytes,
            )
            start = follower_log.log_end_offset
            if start < leader_end:
                # ``missing`` is a packed view sharing the leader's sealed
                # chunks; the follower adopts them by reference.
                missing = leader_log.fetch(
                    start, max_records=leader_end - start, max_bytes=None
                )
                try:
                    follower.replicate(topic, partition, missing)
                except CorruptBatchError:
                    # The follower's ingress CRC rejected a leader chunk.
                    # Leave this follower out of the round's ISR (it did
                    # not advance) rather than adopting damaged bytes; an
                    # operator heals the partition via recover_replica
                    # (after leader re-election if the leader is at fault).
                    continue
            if follower_log.log_end_offset >= leader_end:
                new_isr.append(broker_id)
        with self._lock:
            assignment.isr = new_isr
        return new_isr

    def recover_replica(self, topic: str, partition: int, broker_id: int) -> int:
        """Rebuild one follower replica from the leader's intact copy.

        The corruption recovery path: when a replica's stored chunks fail
        CRC verification (at fetch-decode or while serving), the damaged
        log is discarded wholesale and re-fetched from the current leader —
        the CRC travels with the bytes, so the rebuilt replica re-verifies
        everything it adopts.  Returns the recovered replica's log end
        offset.  Raises :class:`CorruptBatchError` if the leader's own copy
        is damaged too (then leadership must move first, see
        :meth:`elect_leader`).
        """
        with self._lock:
            assignment = self._assignments[(topic, partition)]
        if broker_id == assignment.leader:
            raise ValueError(
                f"cannot recover {topic}-{partition} on broker {broker_id}: "
                "it is the leader (elect a new leader first)"
            )
        leader_log = self._brokers[assignment.leader].replica(topic, partition)
        follower = self._brokers[broker_id]
        leader_end = leader_log.log_end_offset
        start = leader_log.log_start_offset
        missing = (
            leader_log.fetch(start, max_records=leader_end - start, max_bytes=None)
            if start < leader_end
            else []
        )
        # Force-verify the leader's chunks *before* discarding the
        # follower's log: a memoized ingress pass must not mask leader-side
        # damage that happened after its own ingress.
        if isinstance(missing, PackedView):
            for source, _, _ in missing.runs():
                if isinstance(source, PackedRecordBatch):
                    source.verify_crc(force=True)
        fresh = follower.reset_replica(
            topic,
            partition,
            max_message_bytes=leader_log.max_message_bytes,
            segment_records=leader_log.segment_records,
            segment_bytes=leader_log.segment_bytes,
            log_start_offset=start,
        )
        if missing:
            fresh.append_stored(missing)
        with self._lock:
            if follower.online and fresh.log_end_offset >= leader_end:
                if broker_id not in assignment.isr:
                    assignment.isr.append(broker_id)
        return fresh.log_end_offset

    def check_min_isr(self, topic: str, partition: int, min_insync: int) -> None:
        """Raise :class:`NotEnoughReplicasError` if the ISR is too small."""
        isr = self.replicate_from_leader(topic, partition)
        if len(isr) < min_insync:
            raise NotEnoughReplicasError(
                f"{topic}-{partition}: ISR={isr} below min.insync.replicas={min_insync}"
            )

    # ------------------------------------------------------------------ #
    # Leader election
    # ------------------------------------------------------------------ #
    def elect_leader(self, topic: str, partition: int) -> Optional[int]:
        """Elect a new leader from the ISR when the current leader is offline.

        Prefers in-sync replicas; falls back to any online replica (unclean
        election) so the partition stays available, mirroring the paper's
        emphasis on availability for scientific workloads.  Returns the new
        leader id, or ``None`` if every replica is offline.
        """
        with self._lock:
            assignment = self._assignments[(topic, partition)]
            current = self._brokers[assignment.leader]
            if current.online:
                return assignment.leader
            candidates = [b for b in assignment.isr if self._brokers[b].online]
            if not candidates:
                candidates = [b for b in assignment.replicas if self._brokers[b].online]
            if not candidates:
                return None
            assignment.leader = candidates[0]
            assignment.leader_epoch += 1
            assignment.isr = [b for b in assignment.replicas if self._brokers[b].online]
            return assignment.leader

    def handle_broker_failure(self, broker_id: int) -> List[PartitionAssignment]:
        """Re-elect leaders for every partition led by a failed broker."""
        affected: List[PartitionAssignment] = []
        with self._lock:
            assignments = list(self._assignments.values())
        for assignment in assignments:
            if assignment.leader == broker_id:
                self.elect_leader(assignment.topic, assignment.partition)
                affected.append(assignment)
        return affected

    def under_replicated_partitions(self) -> List[PartitionAssignment]:
        """Partitions whose ISR is smaller than their replica set."""
        out = []
        for assignment in self.all_assignments():
            self.replicate_from_leader(assignment.topic, assignment.partition)
            if len(assignment.isr) < len(assignment.replicas):
                out.append(assignment)
        return out
