"""Partition replication and in-sync replica (ISR) tracking.

Each topic partition is assigned to ``replication_factor`` brokers; one of
them is the leader.  After every leader append the replication manager
pushes the new records to the online followers and recomputes the ISR.
``acks=all`` produces succeed only when the ISR (leader included) is at
least ``min.insync.replicas``.

Replication is zero-copy: the leader fetch returns a packed batch view
over the log's storage chunks, and the follower adopts those very chunks
by reference (``PartitionLog.append_stored`` recognises packed runs) — no
record is decoded or re-encoded on the leader → follower path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.common.clock import Clock
from repro.common.retry import RetryPolicy
from repro.common.sync import create_rlock
from repro.fabric.broker import Broker
from repro.fabric.errors import (
    BrokerUnavailableError,
    CorruptBatchError,
    FencedLeaderError,
    NotEnoughReplicasError,
    UnknownPartitionError,
)
from repro.fabric.partition import PartitionLog
from repro.fabric.record import PackedRecordBatch, PackedView

#: Verdicts a replication link filter may return for one leader->follower
#: push: ``"ok"`` delivers, ``"drop"`` loses the round (the follower
#: falls out of the ISR until the link heals), ``"duplicate"`` delivers
#: twice (the follower's offset-dedup adoption must make this harmless).
LINK_VERDICTS = ("ok", "drop", "duplicate")

#: Default budget for :meth:`ReplicationManager.recover_replica` when the
#: leader is transiently offline: three attempts, 50 ms doubling backoff.
DEFAULT_RECOVERY_POLICY = RetryPolicy(
    max_attempts=3, base_backoff=0.05, multiplier=2.0, max_backoff=1.0
)


def _transient(exc: BaseException) -> bool:
    """Recovery retries only transient unavailability.

    ``CorruptBatchError`` is retriable for *fetch* clients (re-fetch from
    an intact replica) but not here: a rotten leader copy will be rotten
    on every attempt — leadership must move first.
    """
    return isinstance(exc, BrokerUnavailableError)


@dataclass(frozen=True)
class ReplicaRecovery:
    """Structured outcome of a :meth:`ReplicationManager.recover_replica`.

    ``recovered`` is False when every attempt found the leader offline —
    the caller schedules another pass instead of unwinding on the first
    miss.  ``log_end_offset`` is the follower's end offset either way.
    """

    topic: str
    partition: int
    broker_id: int
    recovered: bool
    log_end_offset: int
    attempts: int
    error: Optional[str] = None


@dataclass
class PartitionAssignment:
    """Replica placement and leadership for one topic partition."""

    topic: str
    partition: int
    replicas: List[int]
    leader: int
    isr: List[int] = field(default_factory=list)
    leader_epoch: int = 0

    def __post_init__(self) -> None:
        if self.leader not in self.replicas:
            raise ValueError("leader must be one of the assigned replicas")
        if not self.isr:
            self.isr = list(self.replicas)

    def describe(self) -> dict:
        return {
            "topic": self.topic,
            "partition": self.partition,
            "replicas": list(self.replicas),
            "leader": self.leader,
            "isr": list(self.isr),
            "leader_epoch": self.leader_epoch,
        }


class ReplicationManager:
    """Propagates leader appends to followers and maintains ISRs."""

    def __init__(
        self, brokers: Dict[int, Broker], *, clock: Optional[Clock] = None
    ) -> None:
        self._brokers = brokers
        self._assignments: Dict[tuple[str, int], PartitionAssignment] = {}  #: guarded_by _lock
        self._lock = create_rlock("ReplicationManager")
        self._clock = clock
        #: Chaos seam: ``filter(leader_id, follower_id, topic, partition)``
        #: -> one of :data:`LINK_VERDICTS`, consulted before each
        #: leader->follower push.  ``None`` = every link healthy.
        self._link_filter: Optional[Callable[[int, int, str, int], str]] = None

    def set_link_filter(
        self, link_filter: Optional[Callable[[int, int, str, int], str]]
    ) -> None:
        """Install (or clear) the replication link filter (chaos seam)."""
        self._link_filter = link_filter

    # ------------------------------------------------------------------ #
    # Assignment bookkeeping
    # ------------------------------------------------------------------ #
    def register(self, assignment: PartitionAssignment) -> None:
        with self._lock:
            self._assignments[(assignment.topic, assignment.partition)] = assignment

    def unregister_topic(self, topic: str) -> None:
        with self._lock:
            for key in [k for k in self._assignments if k[0] == topic]:
                del self._assignments[key]

    def assignment(self, topic: str, partition: int) -> PartitionAssignment:
        with self._lock:
            try:
                return self._assignments[(topic, partition)]
            except KeyError:
                raise UnknownPartitionError(
                    f"no replica assignment for {topic}-{partition}"
                ) from None

    def assignments_for_topic(self, topic: str) -> List[PartitionAssignment]:
        with self._lock:
            return [a for (t, _), a in self._assignments.items() if t == topic]

    def all_assignments(self) -> Sequence[PartitionAssignment]:
        with self._lock:
            return tuple(self._assignments.values())

    # ------------------------------------------------------------------ #
    # Replication data path
    # ------------------------------------------------------------------ #
    def replicate_from_leader(self, topic: str, partition: int) -> List[int]:
        """Push any records missing on followers; return the new ISR.

        Pushes carry the assignment's leader epoch snapshot: a follower
        that has already adopted a newer epoch (concurrent election)
        fences this round, which is then abandoned without touching the
        ISR — the *new* leader's replication supersedes it.  A completed
        round advances the high watermark on the leader and every ISR
        member to the round's leader end offset (everything the full ISR
        now holds is committed).
        """
        with self._lock:
            assignment = self._assignments[(topic, partition)]
            leader_id = assignment.leader
            epoch = assignment.leader_epoch
        leader_broker = self._brokers[leader_id]
        if not leader_broker.online:
            return assignment.isr
        leader_log = leader_broker.replica(topic, partition)
        leader_end = leader_log.log_end_offset
        new_isr = [leader_id]
        link = self._link_filter
        for broker_id in assignment.replicas:
            if broker_id == leader_id:
                continue
            follower = self._brokers[broker_id]
            if not follower.online:
                continue
            verdict = (
                "ok" if link is None
                else link(leader_id, broker_id, topic, partition)
            )
            if verdict == "drop":
                # Link down: the round is lost, the follower lags and
                # leaves the ISR until the link heals and it catches up.
                continue
            # Create-if-missing inherits the leader log's storage config so
            # a replica first materialized here rolls segments exactly like
            # one placed by FabricAdmin (which passes TopicConfig.log_kwargs).
            follower_log = follower.create_replica(
                topic,
                partition,
                max_message_bytes=leader_log.max_message_bytes,
                segment_records=leader_log.segment_records,
                segment_bytes=leader_log.segment_bytes,
            )
            if follower_log.leader_epoch < epoch and (
                follower_log.log_end_offset
                > self._fork_point(leader_log, follower_log.leader_epoch)
            ):
                # The follower missed at least one election and its log
                # runs past the point where the first epoch it never saw
                # began: that suffix was written by a deposed leader and
                # conflicts with this leader's history offset for offset,
                # even though end-offset catch-up alone would line the
                # logs up (a silent fork).  Suffixes live inside sealed
                # packed chunks, which cannot be split, so rebuild the
                # replica wholesale from the leader's copy.
                follower_log = follower.reset_replica(
                    topic,
                    partition,
                    max_message_bytes=leader_log.max_message_bytes,
                    segment_records=leader_log.segment_records,
                    segment_bytes=leader_log.segment_bytes,
                    log_start_offset=leader_log.log_start_offset,
                )
                follower_log.note_leader_epoch(epoch)
            start = follower_log.log_end_offset
            if start < leader_end:
                # ``missing`` is a packed view sharing the leader's sealed
                # chunks; the follower adopts them by reference.  Followers
                # catch up on exactly the records that are not yet fully
                # replicated, so the leader read is uncommitted.
                missing = leader_log.fetch(
                    start, max_records=leader_end - start, max_bytes=None,
                    isolation="uncommitted",
                )
                try:
                    follower.replicate(
                        topic, partition, missing, leader_epoch=epoch
                    )
                    if verdict == "duplicate":
                        # Duplicated delivery: the follower's offset-dedup
                        # adoption must absorb the replay byte-for-byte.
                        follower.replicate(
                            topic, partition, missing, leader_epoch=epoch
                        )
                except CorruptBatchError:  # lint: ignore[SWALLOWED-ERROR]
                    # The follower's ingress CRC rejected a leader chunk.
                    # Leave this follower out of the round's ISR (it did
                    # not advance) rather than adopting damaged bytes; an
                    # operator heals the partition via recover_replica
                    # (after leader re-election if the leader is at fault).
                    continue
                except FencedLeaderError:
                    # The follower has seen a newer epoch: this whole
                    # round is stale.  Abandon it without touching the ISR.
                    return list(assignment.isr)
            if follower_log.log_end_offset >= leader_end:
                new_isr.append(broker_id)
        with self._lock:
            if assignment.leader != leader_id or assignment.leader_epoch != epoch:
                # A concurrent election moved leadership mid-round; the
                # new leader's rounds own the ISR now.
                return list(assignment.isr)
            assignment.isr = new_isr
        # Commit point: every ISR member holds [.., leader_end) — advance
        # the high watermark so committed readers may see those records.
        leader_log.advance_high_watermark(leader_end)
        for broker_id in new_isr:
            if broker_id == leader_id:
                continue
            follower = self._brokers[broker_id]
            if follower.online and follower.has_replica(topic, partition):
                follower.replica(topic, partition).advance_high_watermark(
                    leader_end
                )
        return new_isr

    @staticmethod
    def _fork_point(leader_log: PartitionLog, follower_epoch: int) -> int:
        """First offset a follower last synced at ``follower_epoch`` may not share.

        The leader's ``(epoch, start_offset)`` checkpoint history records
        where each new leadership began writing.  Everything the leader
        holds *below* the start of the first epoch newer than the
        follower's is single-writer history the follower replicated from
        the same source; everything at or above it was written by a
        leadership the follower never heard from, so a follower log
        reaching past it has forked.  A leader history with no newer
        epoch means no election was missed — nothing can have forked, so
        the leader's log end (an unreachable bound) is returned.
        """
        for epoch, start in leader_log.leader_epoch_history():
            if epoch > follower_epoch:
                return start
        return leader_log.log_end_offset

    def recover_replica(
        self,
        topic: str,
        partition: int,
        broker_id: int,
        *,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> ReplicaRecovery:
        """Rebuild one follower replica from the leader's intact copy.

        The corruption recovery path: when a replica's stored chunks fail
        CRC verification (at fetch-decode or while serving), the damaged
        log is discarded wholesale and re-fetched from the current leader —
        the CRC travels with the bytes, so the rebuilt replica re-verifies
        everything it adopts.

        A transiently offline leader (or follower) is retried under
        ``retry_policy`` (default :data:`DEFAULT_RECOVERY_POLICY`) and —
        when every attempt misses — reported as a structured
        :class:`ReplicaRecovery` with ``recovered=False`` rather than an
        exception, so a heal loop schedules another pass instead of
        unwinding.  Raises :class:`CorruptBatchError` if the leader's own
        copy is damaged (then leadership must move first, see
        :meth:`elect_leader`) and ``ValueError`` when asked to recover
        the leader itself — neither gets better by retrying.
        """
        with self._lock:
            assignment = self._assignments[(topic, partition)]
        if broker_id == assignment.leader:
            raise ValueError(
                f"cannot recover {topic}-{partition} on broker {broker_id}: "
                "it is the leader (elect a new leader first)"
            )
        policy = retry_policy if retry_policy is not None else DEFAULT_RECOVERY_POLICY
        attempts = 0

        def attempt() -> int:
            nonlocal attempts
            attempts += 1
            return self._recover_once(topic, partition, broker_id, assignment)

        try:
            end = policy.call(attempt, clock=self._clock, retriable=_transient)
        except BrokerUnavailableError as exc:
            follower = self._brokers[broker_id]
            current_end = (
                follower.replica(topic, partition).log_end_offset
                if follower.online and follower.has_replica(topic, partition)
                else 0
            )
            return ReplicaRecovery(
                topic=topic,
                partition=partition,
                broker_id=broker_id,
                recovered=False,
                log_end_offset=current_end,
                attempts=attempts,
                error=str(exc),
            )
        return ReplicaRecovery(
            topic=topic,
            partition=partition,
            broker_id=broker_id,
            recovered=True,
            log_end_offset=end,
            attempts=attempts,
        )

    def _recover_once(
        self,
        topic: str,
        partition: int,
        broker_id: int,
        assignment: PartitionAssignment,
    ) -> int:
        """One recovery attempt; raises on an offline leader/follower."""
        leader_broker = self._brokers[assignment.leader]
        leader_log = leader_broker.replica(topic, partition)
        follower = self._brokers[broker_id]
        leader_end = leader_log.log_end_offset
        start = leader_log.log_start_offset
        missing = (
            leader_log.fetch(
                start, max_records=leader_end - start, max_bytes=None,
                isolation="uncommitted",
            )
            if start < leader_end
            else []
        )
        # Force-verify the leader's chunks *before* discarding the
        # follower's log: a memoized ingress pass must not mask leader-side
        # damage that happened after its own ingress.
        if isinstance(missing, PackedView):
            for source, _, _ in missing.runs():
                if isinstance(source, PackedRecordBatch):
                    source.verify_crc(force=True)
        fresh = follower.reset_replica(
            topic,
            partition,
            max_message_bytes=leader_log.max_message_bytes,
            segment_records=leader_log.segment_records,
            segment_bytes=leader_log.segment_bytes,
            log_start_offset=start,
        )
        if missing:
            fresh.append_stored(missing)
        # The rebuilt log adopts the leader's epoch and (committed) high
        # watermark so its committed reads match the leader's.
        fresh.note_leader_epoch(leader_log.leader_epoch)
        fresh.advance_high_watermark(
            min(leader_log.high_watermark, fresh.log_end_offset)
        )
        with self._lock:
            if follower.online and fresh.log_end_offset >= leader_end:
                if broker_id not in assignment.isr:
                    assignment.isr.append(broker_id)
        return fresh.log_end_offset

    def check_min_isr(self, topic: str, partition: int, min_insync: int) -> None:
        """Raise :class:`NotEnoughReplicasError` if the ISR is too small."""
        isr = self.replicate_from_leader(topic, partition)
        if len(isr) < min_insync:
            raise NotEnoughReplicasError(
                f"{topic}-{partition}: ISR={isr} below min.insync.replicas={min_insync}"
            )

    # ------------------------------------------------------------------ #
    # Leader election
    # ------------------------------------------------------------------ #
    def elect_leader(self, topic: str, partition: int) -> Optional[int]:
        """Elect a new leader from the ISR when the current leader is offline.

        Prefers in-sync replicas; falls back to any online replica (unclean
        election) so the partition stays available, mirroring the paper's
        emphasis on availability for scientific workloads.  Returns the new
        leader id, or ``None`` if every replica is offline.
        """
        with self._lock:
            assignment = self._assignments[(topic, partition)]
            current = self._brokers[assignment.leader]
            if current.online:
                return assignment.leader
            candidates = [b for b in assignment.isr if self._brokers[b].online]
            if not candidates:
                candidates = [b for b in assignment.replicas if self._brokers[b].online]
            if not candidates:
                return None
            assignment.leader = candidates[0]
            assignment.leader_epoch += 1
            assignment.isr = [b for b in assignment.replicas if self._brokers[b].online]
            # Fence immediately: stamp the new epoch onto every online
            # replica's log so a deposed leader that comes back (or kept
            # a stale view) is rejected on its first write, not on the
            # next replication round.
            new_leader = self._brokers[assignment.leader]
            leader_log = (
                new_leader.replica(topic, partition)
                if new_leader.has_replica(topic, partition)
                else None
            )
            for b in assignment.replicas:
                broker = self._brokers[b]
                if not broker.online or not broker.has_replica(topic, partition):
                    continue
                log = broker.replica(topic, partition)
                log.note_leader_epoch(assignment.leader_epoch)
                if (
                    b != assignment.leader
                    and leader_log is not None
                    and log.log_end_offset > leader_log.log_end_offset
                ):
                    # This replica outran the elected leader: its extra
                    # records are a deposed leader's uncommitted suffix
                    # that the new leadership will overwrite offset for
                    # offset.  The suffix sits inside sealed chunks (no
                    # mid-chunk truncation), so rebuild from scratch; the
                    # next replication round repopulates it.
                    fresh = broker.reset_replica(
                        topic,
                        partition,
                        max_message_bytes=leader_log.max_message_bytes,
                        segment_records=leader_log.segment_records,
                        segment_bytes=leader_log.segment_bytes,
                        log_start_offset=leader_log.log_start_offset,
                    )
                    fresh.note_leader_epoch(assignment.leader_epoch)
            return assignment.leader

    def handle_broker_failure(self, broker_id: int) -> List[PartitionAssignment]:
        """Re-elect leaders for every partition led by a failed broker."""
        affected: List[PartitionAssignment] = []
        with self._lock:
            assignments = list(self._assignments.values())
        for assignment in assignments:
            if assignment.leader == broker_id:
                self.elect_leader(assignment.topic, assignment.partition)
                affected.append(assignment)
        return affected

    def under_replicated_partitions(self) -> List[PartitionAssignment]:
        """Partitions whose ISR is smaller than their replica set."""
        out = []
        for assignment in self.all_assignments():
            self.replicate_from_leader(assignment.topic, assignment.partition)
            if len(assignment.isr) < len(assignment.replicas):
                out.append(assignment)
        return out
