"""Event records, record batches and produce metadata.

Events in Octopus are Kafka records: an optional key, a value payload,
optional headers and a timestamp.  Scientific events (Section III of the
paper) range from 32 B telemetry samples to multi-kilobyte instrument
snapshots, so the record type tracks its serialized size explicitly — the
performance model and the broker quotas are driven by it.

Packed batch layout
-------------------
:class:`PackedRecordBatch` is the one-encode representation shared by the
whole data plane: the producer seals a wire batch into packed form once,
the partition log adopts the same object as a sealed segment chunk,
fetch responses expose slices of it (:class:`PackedView`), and
replication/MirrorMaker forward it by reference — a record is encoded at
most once (and compressed at most once) between produce and delivery.

Wire format (v1)
----------------
The sealed image :meth:`PackedRecordBatch.to_bytes` emits — and
:meth:`~PackedRecordBatch.from_bytes` parses zero-copy over a
``memoryview`` — is a 16-byte header followed by the stored body::

    magic   : u8   0xB4
    version : u8   1
    codec   : u8   codec id (see the registry below)
    pad     : u8   reserved, 0
    crc32   : u32  zlib.crc32 over the stored body (post-compression)
    count   : u32  logical record count
    usize   : u32  uncompressed payload size in bytes

The body is the concatenated record frames, passed through the named
codec.  Because the CRC covers the *stored* bytes, every hop that
forwards the batch (broker ingress, replication, mirroring) can verify
integrity without decompressing; a mismatch raises
:class:`~repro.fabric.errors.CorruptBatchError`.  Decompression happens
once, memoized, on the first consumer-side record access.  Legacy v0
images (bare ``count: u32`` + raw payload, no codec/CRC) are still
parsed.  Each record frame is::

    timestamp   : f64 big-endian
    key frame   : tag u8 | length u32 | body
    value frame : tag u8 | length u32 | body
    headers     : count u16, then per header
                  name length u16 | name utf-8 | value frame

Frame tags: ``0`` None (empty body), ``1`` raw bytes, ``2`` utf-8 text,
``3`` canonical JSON (:func:`repro.fabric.serde.serialize`).

Codec registry: ``none`` (0), ``gzip`` (1, zlib), ``lzma`` (2) are
always available from the stdlib; ``lz4`` (3) and ``zstd`` (4) register
automatically when their packages are importable, and
:func:`register_codec` accepts process-local additions.

Alongside the payload a decoded batch carries the columns the storage
layer serves from without touching the body: a base offset plus
per-record offset table (elided while offsets are contiguous),
per-record append times (elided while uniform), per-record serialized
sizes with their prefix sums (byte-budget fetches bisect instead of
walking), and min/max append-time covers for retention and timestamp
lookup.  Batches parsed from wire build these columns lazily — a
forwarded batch never pays the frame scan.
"""

from __future__ import annotations

import bisect
import itertools
import json
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.fabric.errors import CorruptBatchError, UnknownCodecError
from repro.fabric.serde import serialize, serialize_with_size, serialized_size

_record_counter = itertools.count()


def _next_record_id() -> int:
    return next(_record_counter)


@dataclass(frozen=True)
class EventRecord:
    """A single event published to (or fetched from) the fabric.

    Parameters
    ----------
    value:
        The event payload.  Any JSON-serializable object, ``bytes`` or
        ``str``.
    key:
        Optional partitioning key.  Records with the same key are routed
        to the same partition and therefore totally ordered.
    headers:
        Optional string-to-string metadata (e.g. ``source``, schema id).
    timestamp:
        Producer-side timestamp in seconds since the epoch.
    """

    value: Any
    key: Any = None
    headers: Mapping[str, str] = field(default_factory=dict)
    # Record construction has no clock to inject at this API depth; the
    # producer passes Clock-derived timestamps explicitly, so this default
    # only covers hand-built records.
    timestamp: float = field(default_factory=time.time)  # lint: ignore[RAW-CLOCK]
    record_id: int = field(default_factory=_next_record_id)

    def size_bytes(self) -> int:
        """Approximate on-the-wire size of the record in bytes.

        Computed once and cached: the produce hot path consults the size
        repeatedly (batch accounting, broker quota, replication budget) and
        re-serializing the value each time dominated the batched profile.
        When sizing a JSON value forces an encode, the encoded bytes are
        cached alongside the size so the wire packer reuses them — one
        encode pass covers both (see :func:`serialize_with_size`).
        """
        cached = self.__dict__.get("_cached_size")
        if cached is not None:
            return cached
        encoded_value, size = serialize_with_size(self.value)
        if encoded_value is not None:
            object.__setattr__(self, "_cached_value_body", encoded_value)
        if self.key is not None:
            encoded_key, key_size = serialize_with_size(self.key)
            size += key_size
            if encoded_key is not None:
                object.__setattr__(self, "_cached_key_body", encoded_key)
        for name, val in self.headers.items():
            size += len(name) + serialized_size(val)
        # Fixed per-record framing overhead (offset, length, crc, attrs).
        size += 24
        object.__setattr__(self, "_cached_size", size)
        return size

    def with_headers(self, **headers: str) -> "EventRecord":
        """Return a copy of the record with additional headers merged in."""
        merged = dict(self.headers)
        merged.update(headers)
        return EventRecord(
            value=self.value,
            key=self.key,
            headers=merged,
            timestamp=self.timestamp,
            record_id=self.record_id,
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict view used by the trigger substrate and persistence."""
        return {
            "key": self.key,
            "value": self.value,
            "headers": dict(self.headers),
            "timestamp": self.timestamp,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EventRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            value=data.get("value"),
            key=data.get("key"),
            headers=dict(data.get("headers", {})),
            # Wire decode of a record missing its timestamp — no clock in
            # scope at serde depth.
            timestamp=float(data.get("timestamp", time.time())),  # lint: ignore[RAW-CLOCK]
        )

    def to_json(self) -> str:
        """JSON representation (used by the persistence connector)."""
        return json.dumps(self.to_dict(), sort_keys=True, default=str)


class StoredRecord(NamedTuple):
    """A record as it sits in a partition log: record plus assigned offset.

    A NamedTuple rather than a dataclass: the produce/replicate hot path
    creates one per appended record, and tuple construction is several
    times cheaper than frozen-dataclass ``__init__``.
    """

    offset: int
    record: EventRecord
    append_time: float

    @property
    def value(self) -> Any:
        return self.record.value

    @property
    def key(self) -> Any:
        return self.record.key

    @property
    def timestamp(self) -> float:
        return self.record.timestamp

    def size_bytes(self) -> int:
        return self.record.size_bytes()


class RecordMetadata(NamedTuple):
    """Metadata returned to a producer after a successful append."""

    topic: str
    partition: int
    offset: int
    timestamp: float
    serialized_size: int


_TS = struct.Struct(">d")
_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")

_TAG_NONE = 0
_TAG_BYTES = 1
_TAG_STR = 2
_TAG_JSON = 3


# --------------------------------------------------------------------- #
# Compression codecs
# --------------------------------------------------------------------- #
class Codec(NamedTuple):
    """A batch compression codec: a stable wire id plus the two passes."""

    name: str
    codec_id: int
    compress: Callable[[bytes], bytes]
    decompress: Callable[[bytes], bytes]


_codec_lock = threading.Lock()
_CODECS_BY_NAME: dict = {}
_CODECS_BY_ID: dict = {}


def register_codec(
    name: str,
    codec_id: int,
    compress: Callable[[bytes], bytes],
    decompress: Callable[[bytes], bytes],
) -> Codec:
    """Register a batch compression codec under a stable wire id.

    The stdlib codecs (``none``/``gzip``/``lzma``) are registered at
    import; deployments with ``lz4``/``zstd`` installed plug them in here
    (ids ``3``/``4`` are reserved for them below).  Re-registering a name
    with the same id is idempotent; claiming a taken id for a different
    name raises.
    """
    codec = Codec(name, int(codec_id), compress, decompress)
    with _codec_lock:
        existing = _CODECS_BY_ID.get(codec.codec_id)
        if existing is not None and existing.name != name:
            raise ValueError(
                f"codec id {codec.codec_id} is already registered as {existing.name!r}"
            )
        _CODECS_BY_NAME[name] = codec
        _CODECS_BY_ID[codec.codec_id] = codec
    return codec


def get_codec(name: str) -> Codec:
    try:
        return _CODECS_BY_NAME[name]
    except KeyError:
        raise UnknownCodecError(
            f"codec {name!r} is not registered (known: {sorted(_CODECS_BY_NAME)})"
        ) from None


def codec_for_id(codec_id: int) -> Codec:
    try:
        return _CODECS_BY_ID[codec_id]
    except KeyError:
        raise UnknownCodecError(
            f"codec id {codec_id} is not registered (known: {sorted(_CODECS_BY_ID)})"
        ) from None


def registered_codecs() -> Tuple[str, ...]:
    """Names of every codec this process can decode (sorted by wire id)."""
    with _codec_lock:
        return tuple(c.name for _, c in sorted(_CODECS_BY_ID.items()))


def _identity(data: bytes) -> bytes:
    return data


register_codec("none", 0, _identity, _identity)
register_codec("gzip", 1, zlib.compress, zlib.decompress)


def _lzma_compress(data: bytes) -> bytes:
    import lzma

    return lzma.compress(data, preset=1)


def _lzma_decompress(data: bytes) -> bytes:
    import lzma

    return lzma.decompress(data)


register_codec("lzma", 2, _lzma_compress, _lzma_decompress)

# Optional codecs: wire ids 3/4 are reserved; registered only when the
# (non-baked-in) packages are importable, so compressed batches stay
# decodable exactly where they are encodable.
try:  # pragma: no cover - depends on the environment
    import lz4.frame as _lz4frame

    register_codec("lz4", 3, _lz4frame.compress, _lz4frame.decompress)
except ImportError:  # pragma: no cover, lint: ignore[SWALLOWED-ERROR]
    pass
try:  # pragma: no cover - depends on the environment
    import zstandard as _zstd

    register_codec(
        "zstd",
        4,
        lambda data: _zstd.ZstdCompressor().compress(data),
        lambda data: _zstd.ZstdDecompressor().decompress(data),
    )
except ImportError:  # pragma: no cover, lint: ignore[SWALLOWED-ERROR]
    pass


# --------------------------------------------------------------------- #
# Versioned batch wire header (v1)
#
#   magic   u8   0xB4 ("batch")
#   version u8   1
#   codec   u8   wire id from the codec registry
#   (pad)   u8   reserved, 0
#   crc32   u32  zlib.crc32 over the body (the possibly-compressed bytes)
#   count   u32  logical record count
#   usize   u32  uncompressed payload size in bytes
#
# followed by the body.  v0 (legacy, PR 6) was a bare count u32 + payload
# and is still readable.
# --------------------------------------------------------------------- #
_WIRE_MAGIC = 0xB4
_WIRE_VERSION = 1
_HEADER = struct.Struct(">BBBxIII")
WIRE_HEADER_BYTES = _HEADER.size


def _pack_frame(value: Any, pieces: list, cached_body: Optional[bytes] = None) -> None:
    if value is None:
        pieces.append(b"\x00\x00\x00\x00\x00")
        return
    if isinstance(value, (bytes, bytearray)):
        tag, body = _TAG_BYTES, bytes(value)
    else:
        # ``cached_body`` is the encode the sizing pass already paid for
        # (see EventRecord.size_bytes): JSON values are serialized exactly
        # once between produce and wire.
        body = cached_body if cached_body is not None else serialize(value)
        tag = _TAG_STR if isinstance(value, str) else _TAG_JSON
    pieces.append(_U8.pack(tag))
    pieces.append(_U32.pack(len(body)))
    pieces.append(body)


def _unpack_frame(buffer, position: int) -> tuple:
    """Decode one tagged frame from ``buffer`` (bytes or memoryview).

    Zero-copy on the scan: the body is taken as a slice, which for a
    memoryview references the underlying batch payload without copying;
    bytes are only materialised for the value itself (``bytes``/``str``/
    JSON objects all need owned storage anyway).
    """
    tag = buffer[position]
    (length,) = _U32.unpack_from(buffer, position + 1)
    position += 5
    body = buffer[position : position + length]
    position += length
    if tag == _TAG_NONE:
        return None, position
    if tag == _TAG_BYTES:
        return bytes(body), position
    if tag == _TAG_STR:
        return str(body, "utf-8"), position
    return json.loads(bytes(body)), position


def _skip_frame(buffer, position: int) -> tuple:
    """Advance past one frame without materialising it; returns
    ``(next_position, body_length)``."""
    (length,) = _U32.unpack_from(buffer, position + 1)
    return position + 5 + length, length


#: A header overlay: ``(fn, source_base, source_offsets)``.  ``fn`` maps a
#: record's *source* offset (captured when the overlay was attached, so
#: restamping under new offsets keeps the provenance intact) to extra
#: headers merged in at decode time.
_Overlay = Tuple[Callable[[int], Mapping[str, str]], int, Optional[Tuple[int, ...]]]


class PackedRecordBatch:
    """An immutable, offset-stamped run of records packed as one unit.

    See the module docstring for the wire layout.  Instances are created
    once (producer seal, tail seal, follower adoption) and then shared by
    reference across the leader log, the canonical partition, every
    follower replica and any fetch view — nothing downstream re-encodes
    or copies the records.  All derived forms (:meth:`slice`,
    :meth:`with_offsets`, :meth:`with_header_overlay`) share the decoded
    record tuple, the size columns and the payload bytes of the parent.

    The decoded-record cache means an in-process round trip returns the
    *same* :class:`EventRecord` objects that were produced; the byte
    payload (:meth:`to_bytes`/:meth:`from_bytes`) is only materialised
    when something actually needs wire bytes, and at most once.
    """

    __slots__ = (
        "base_offset",
        "end_offset",
        "contiguous",
        "min_append_time",
        "max_append_time",
        "codec",
        "crc32",
        "_offsets",
        "_append_times",
        "_records",
        "_sizes",
        "_cum",
        "_max_size",
        "_payload",
        "_frames",
        "_overlay",
        "_decoded",
        "_wire",
        "_usize",
        "_count",
        "_crc_verified",
    )

    def __init__(
        self,
        *,
        base_offset: int,
        end_offset: int,
        contiguous: bool,
        min_append_time: float,
        max_append_time: float,
        offsets: Optional[Tuple[int, ...]],
        append_times: Optional[Tuple[float, ...]],
        records: Optional[Tuple[EventRecord, ...]],
        sizes: Optional[Tuple[int, ...]],
        payload: Optional[bytes] = None,
        frames: Optional[Tuple[int, ...]] = None,
        overlay: Optional[_Overlay] = None,
        codec: str = "none",
        crc32: Optional[int] = None,
        wire=None,
        count: Optional[int] = None,
        uncompressed_size: Optional[int] = None,
    ) -> None:
        self.base_offset = base_offset
        self.end_offset = end_offset
        self.contiguous = contiguous
        self.min_append_time = min_append_time
        self.max_append_time = max_append_time
        self.codec = codec
        self.crc32 = crc32
        self._offsets = offsets
        self._append_times = append_times
        self._records = records
        if sizes is not None:
            self._sizes = sizes
            cum = [0] * (len(sizes) + 1)
            total = 0
            for i, size in enumerate(sizes):
                total += size
                cum[i + 1] = total
            self._cum = tuple(cum)
            self._max_size = max(sizes) if sizes else 0
            self._count = len(sizes)
        else:
            # Wire-decoded batch: the size column is built lazily from a
            # frame scan, so forwarding a (possibly compressed) batch never
            # pays a decode or decompression.
            if count is None:
                raise ValueError("count is required when sizes are lazy")
            self._sizes = None
            self._cum = None
            self._max_size = 0
            self._count = count
        self._payload = payload
        self._frames = frames
        self._overlay = overlay
        self._decoded: Optional[list] = None
        self._wire = wire
        self._usize = uncompressed_size
        self._crc_verified = False

    # -- logical / physical size accounting ----------------------------- #
    @property
    def size_bytes(self) -> int:
        """Total *logical* (uncompressed, per-record accounted) bytes.

        For a wire-decoded batch whose size column has not been
        materialised yet this answers from the header's uncompressed size
        (close — it differs from the per-record sum only by framing
        constants) so byte metrics never force a decompression.
        """
        cum = self._cum
        if cum is not None:
            return cum[-1]
        return self._usize if self._usize is not None else 0

    @property
    def physical_size_bytes(self) -> int:
        """Bytes this batch actually occupies: the sealed (possibly
        compressed) wire body when one exists, the logical size otherwise.
        Segment byte accounting and size retention charge this."""
        wire = self._wire
        if wire is not None:
            return len(wire)
        return self.size_bytes

    def physical_size_range(self, start: int, stop: int) -> int:
        """Physical bytes attributed to records ``[start:stop)``.

        Inside a compressed batch individual records have no exact
        physical size; the range is charged its proportional share of the
        compressed body (exact at the whole-batch extent)."""
        wire = self._wire
        if wire is None:
            return self.size_range(start, stop)
        if start == 0 and stop == self._count:
            return len(wire)
        logical = self.size_range(start, stop)
        total = self._cum[-1]
        if total <= 0:
            return 0
        return (logical * len(wire)) // total

    # -- lazy wire decode ------------------------------------------------ #
    def verify_crc(self, *, force: bool = False) -> None:
        """Check the sealed body against the stamped CRC32.

        No-op for batches without a sealed wire body or CRC (in-process
        batches).  The result is memoized — broker ingress and the
        canonical-mirror adoption together verify once — unless ``force``
        is given, which the first-decode path uses so corruption that
        happened *after* ingress is still caught before any record is
        served.  Raises :class:`CorruptBatchError` on mismatch.
        """
        wire = self._wire
        if wire is None or self.crc32 is None:
            return
        if self._crc_verified and not force:
            return
        actual = zlib.crc32(wire) & 0xFFFFFFFF
        if actual != self.crc32:
            raise CorruptBatchError(
                f"batch crc mismatch: stored {self.crc32:#010x}, "
                f"computed {actual:#010x} over {len(wire)} {self.codec} bytes "
                f"(base_offset={self.base_offset}, records={self._count})"
            )
        self._crc_verified = True

    def check_max_record_size(self, limit: int) -> Optional[int]:
        """Largest record size if any record exceeds ``limit``, else None.

        Proves the cheap case without touching the payload: when the whole
        batch's uncompressed size fits under ``limit`` no single record can
        exceed it, so a compressed wire batch is not inflated just to be
        admitted by ``max.message.bytes``.
        """
        if self._sizes is None and self._usize is not None and self._usize <= limit:
            return None
        self._ensure_sizes()
        if self._max_size <= limit:
            return None
        return self._max_size

    def _ensure_sizes(self) -> None:
        if self._sizes is None:
            self._scan_frames()

    def _scan_frames(self) -> None:
        """Build the frame table and per-record size column from the
        payload in one pass — no record objects are materialised.  The
        first structural touch of a wire-decoded batch, so the CRC is
        (re-)checked here even if ingress already verified it."""
        if self._payload is None:
            payload = self.ensure_payload()  # verifies CRC, decompresses once
        else:
            self.verify_crc(force=True)
            payload = self._payload
        count = self._count
        frames = [0]
        sizes = []
        position = 0
        try:
            for _ in range(count):
                cursor = position + 8
                cursor, key_length = _skip_frame(payload, cursor)
                cursor, value_length = _skip_frame(payload, cursor)
                (header_count,) = _U16.unpack_from(payload, cursor)
                cursor += 2
                size = key_length + value_length + 24
                for _ in range(header_count):
                    (name_length,) = _U16.unpack_from(payload, cursor)
                    cursor += 2 + name_length
                    cursor, header_value_length = _skip_frame(payload, cursor)
                    size += name_length + header_value_length
                sizes.append(size)
                frames.append(cursor)
                position = cursor
        except (struct.error, IndexError) as exc:
            raise CorruptBatchError(
                f"batch payload is structurally invalid at byte {position} "
                f"(base_offset={self.base_offset}, records={count})"
            ) from exc
        if position > len(payload):
            raise CorruptBatchError(
                f"batch payload truncated: frames need {position} bytes, "
                f"got {len(payload)} (base_offset={self.base_offset})"
            )
        self._frames = tuple(frames)
        self._sizes = tuple(sizes)
        cum = [0] * (count + 1)
        total = 0
        for i, size in enumerate(sizes):
            total += size
            cum[i + 1] = total
        self._cum = tuple(cum)
        self._max_size = max(sizes) if sizes else 0

    # -- constructors -------------------------------------------------- #
    @classmethod
    def from_events(
        cls,
        records: Sequence[EventRecord],
        *,
        base_offset: int = 0,
        append_time: float = 0.0,
    ) -> "PackedRecordBatch":
        """Seal a producer wire batch: contiguous offsets, uniform time."""
        records = tuple(records)
        return cls(
            base_offset=base_offset,
            end_offset=base_offset + len(records),
            contiguous=True,
            min_append_time=append_time,
            max_append_time=append_time,
            offsets=None,
            append_times=None,
            records=records,
            sizes=tuple(record.size_bytes() for record in records),
        )

    @classmethod
    def from_stored(cls, stored: Sequence[StoredRecord]) -> "PackedRecordBatch":
        """Pack an offset-ordered run of already-stored records (tail seal,
        compaction rebuild, adoption of a replicated per-record run)."""
        stored = tuple(stored)
        if not stored:
            return cls.from_events(())
        base = stored[0].offset
        last = stored[-1].offset
        contiguous = last - base == len(stored) - 1
        offsets = None if contiguous else tuple(s.offset for s in stored)
        times = tuple(s.append_time for s in stored)
        low = min(times)
        high = max(times)
        uniform = low == high
        return cls(
            base_offset=base,
            end_offset=last + 1,
            contiguous=contiguous,
            min_append_time=low,
            max_append_time=high,
            offsets=offsets,
            append_times=None if uniform else times,
            records=tuple(s.record for s in stored),
            sizes=tuple(s.size_bytes() for s in stored),
        )

    @classmethod
    def from_bytes(
        cls,
        data,
        *,
        base_offset: int = 0,
        append_time: float = 0.0,
    ) -> "PackedRecordBatch":
        """Parse the wire image produced by :meth:`to_bytes` — zero-copy.

        ``data`` may be ``bytes``, ``bytearray`` or a ``memoryview``; the
        batch keeps a memoryview slice over it and decodes nothing here:
        no record objects, no size column, no decompression.  Forwarding
        the batch (:meth:`to_bytes` again, replication, mirroring) reuses
        the stored body verbatim; only a consumer-side record access pays
        the frame scan — and, for compressed batches, one decompression.
        Record ids are process-local and not part of the wire format, so
        decoded records carry fresh ones.
        """
        view = data if isinstance(data, memoryview) else memoryview(data)
        if len(view) < 4:
            raise CorruptBatchError(f"batch wire image too short: {len(view)} bytes")
        if view[0] == _WIRE_MAGIC and view[1] == _WIRE_VERSION:
            if len(view) < WIRE_HEADER_BYTES:
                raise CorruptBatchError(
                    f"batch wire image truncated inside the v1 header: "
                    f"{len(view)} of {WIRE_HEADER_BYTES} bytes"
                )
            _, _, codec_id, crc, count, usize = _HEADER.unpack_from(view, 0)
            codec = codec_for_id(codec_id).name
            body = view[WIRE_HEADER_BYTES:]
            return cls(
                base_offset=base_offset,
                end_offset=base_offset + count,
                contiguous=True,
                min_append_time=append_time,
                max_append_time=append_time,
                offsets=None,
                append_times=None,
                records=None,
                sizes=None,
                payload=body if codec == "none" else None,
                codec=codec,
                crc32=crc,
                wire=body,
                count=count,
                uncompressed_size=usize,
            )
        # Legacy v0 image (PR 6): bare count u32 + uncompressed payload,
        # no codec byte, no CRC.
        (count,) = _U32.unpack_from(view, 0)
        body = view[4:]
        return cls(
            base_offset=base_offset,
            end_offset=base_offset + count,
            contiguous=True,
            min_append_time=append_time,
            max_append_time=append_time,
            offsets=None,
            append_times=None,
            records=None,
            sizes=None,
            payload=body,
            count=count,
            uncompressed_size=len(body),
        )

    # -- derived forms (all share records/sizes/payload by reference) -- #
    def with_offsets(self, base_offset: int, append_time: float) -> "PackedRecordBatch":
        """Restamp under fresh contiguous offsets and one append time —
        the leader assigning offsets at append, or a mirror destination
        re-homing a source batch.  Shares every column with the parent."""
        stamped = PackedRecordBatch.__new__(PackedRecordBatch)
        stamped.base_offset = base_offset
        stamped.end_offset = base_offset + self._count
        stamped.contiguous = True
        stamped.min_append_time = append_time
        stamped.max_append_time = append_time
        stamped.codec = self.codec
        stamped.crc32 = self.crc32
        stamped._offsets = None
        stamped._append_times = None
        stamped._records = self._records
        stamped._sizes = self._sizes
        stamped._cum = self._cum
        stamped._max_size = self._max_size
        stamped._payload = self._payload
        stamped._frames = self._frames
        stamped._overlay = self._overlay
        stamped._decoded = self._decoded
        stamped._wire = self._wire
        stamped._usize = self._usize
        stamped._count = self._count
        stamped._crc_verified = self._crc_verified
        return stamped

    def with_header_overlay(
        self, fn: Callable[[int], Mapping[str, str]]
    ) -> "PackedRecordBatch":
        """Attach per-record extra headers computed from the record's
        *current* offset, merged lazily at decode time.  This is how
        MirrorMaker forwards provenance without touching the payload:
        the packed bytes stay byte-identical, the overlay rides alongside
        and survives restamping on the destination."""
        shadowed = PackedRecordBatch.__new__(PackedRecordBatch)
        shadowed.base_offset = self.base_offset
        shadowed.end_offset = self.end_offset
        shadowed.contiguous = self.contiguous
        shadowed.min_append_time = self.min_append_time
        shadowed.max_append_time = self.max_append_time
        shadowed.codec = self.codec
        shadowed.crc32 = self.crc32
        shadowed._offsets = self._offsets
        shadowed._append_times = self._append_times
        shadowed._records = self._records
        shadowed._sizes = self._sizes
        shadowed._cum = self._cum
        shadowed._max_size = self._max_size
        shadowed._payload = self._payload
        shadowed._frames = self._frames
        shadowed._overlay = (fn, self.base_offset, self._offsets)
        shadowed._decoded = None
        shadowed._wire = self._wire
        shadowed._usize = self._usize
        shadowed._count = self._count
        shadowed._crc_verified = self._crc_verified
        return shadowed

    def slice(self, start: int, stop: int) -> "PackedRecordBatch":
        """Sub-run ``[start:stop)`` sharing the parent's payload bytes
        (the frame table is sliced, not re-encoded) and record tuple.

        A full-range slice returns the batch itself, keeping compressed
        wire batches fully lazy; a partial slice of one materialises the
        size/frame columns (decompressing if needed) because a sub-range
        of a compressed body cannot be carved without inflating it —
        the piece drops the wire body and its CRC and re-seals on demand.
        """
        if start == 0 and stop == self._count:
            return self
        self._ensure_sizes()
        piece = PackedRecordBatch.__new__(PackedRecordBatch)
        offsets = self._offsets
        if offsets is None:
            piece.base_offset = self.base_offset + start
            piece.end_offset = self.base_offset + stop
            piece._offsets = None
            piece.contiguous = True
        else:
            sub = offsets[start:stop]
            piece.base_offset = sub[0]
            piece.end_offset = sub[-1] + 1
            piece.contiguous = sub[-1] - sub[0] == len(sub) - 1
            piece._offsets = None if piece.contiguous else sub
        times = self._append_times
        if times is None:
            piece.min_append_time = self.min_append_time
            piece.max_append_time = self.max_append_time
            piece._append_times = None
        else:
            sub_times = times[start:stop]
            piece.min_append_time = min(sub_times)
            piece.max_append_time = max(sub_times)
            piece._append_times = (
                None if piece.min_append_time == piece.max_append_time else sub_times
            )
        records = self._records
        piece._records = None if records is None else records[start:stop]
        sizes = self._sizes[start:stop]
        piece._sizes = sizes
        cum = self._cum
        shift = cum[start]
        piece._cum = tuple(c - shift for c in cum[start : stop + 1])
        piece._max_size = max(sizes) if sizes else 0
        frames = self._frames
        piece._payload = self._payload
        piece._frames = None if frames is None else frames[start : stop + 1]
        piece.codec = "none"
        piece.crc32 = None
        piece._wire = None
        piece._usize = None
        piece._count = stop - start
        piece._crc_verified = False
        overlay = self._overlay
        if overlay is None:
            piece._overlay = None
        else:
            fn, src_base, src_offsets = overlay
            piece._overlay = (
                fn,
                src_base + start,
                None if src_offsets is None else src_offsets[start:stop],
            )
        decoded = self._decoded
        piece._decoded = None if decoded is None else decoded[start:stop]
        return piece

    # -- columnar accessors (no decoding) ------------------------------ #
    def __len__(self) -> int:
        return self._count

    @property
    def sizes(self) -> Tuple[int, ...]:
        self._ensure_sizes()
        return self._sizes

    @property
    def max_record_size(self) -> int:
        self._ensure_sizes()
        return self._max_size

    def offset_at(self, index: int) -> int:
        offsets = self._offsets
        return self.base_offset + index if offsets is None else offsets[index]

    def append_time_at(self, index: int) -> float:
        times = self._append_times
        return self.min_append_time if times is None else times[index]

    def size_at(self, index: int) -> int:
        self._ensure_sizes()
        return self._sizes[index]

    def size_range(self, start: int, stop: int) -> int:
        self._ensure_sizes()
        cum = self._cum
        return cum[stop] - cum[start]

    def index_of_offset(self, offset: int) -> int:
        """Index of the first record with offset >= ``offset``."""
        offsets = self._offsets
        if offsets is None:
            position = offset - self.base_offset
            n = self._count
            return 0 if position < 0 else (position if position < n else n)
        return bisect.bisect_left(offsets, offset)

    def first_index_at_or_after_time(self, timestamp: float) -> int:
        times = self._append_times
        if times is None:
            return 0 if self.min_append_time >= timestamp else self._count
        return bisect.bisect_left(times, timestamp)

    def take_within(self, start: int, stop: int, budget: int) -> int:
        """Greedy prefix of ``[start:stop)`` whose bytes fit ``budget``
        (one bisection of the prefix sums, zero record decodes)."""
        self._ensure_sizes()
        cum = self._cum
        taken = bisect.bisect_right(cum, cum[start] + budget, start, stop + 1) - 1 - start
        return taken if taken > 0 else 0

    # -- decode (lazy, cached) ----------------------------------------- #
    def timestamp_at(self, index: int) -> float:
        records = self._records
        if records is not None:
            return records[index].timestamp
        return self.record_at(index).timestamp

    def record_at(self, index: int) -> EventRecord:
        records = self._records
        overlay = self._overlay
        if overlay is None and records is not None:
            return records[index]
        decoded = self._decoded
        if decoded is None:
            decoded = [None] * self._count
            self._decoded = decoded
        record = decoded[index]
        if record is None:
            record = records[index] if records is not None else self._decode_one(index)
            if overlay is not None:
                fn, src_base, src_offsets = overlay
                source_offset = (
                    src_base + index if src_offsets is None else src_offsets[index]
                )
                record = record.with_headers(**fn(source_offset))
            decoded[index] = record
        return record

    def stored_at(self, index: int) -> StoredRecord:
        return StoredRecord(
            offset=self.offset_at(index),
            record=self.record_at(index),
            append_time=self.append_time_at(index),
        )

    def __getitem__(self, index: int) -> StoredRecord:
        if index < 0:
            index += self._count
        return self.stored_at(index)

    def __iter__(self) -> Iterator[StoredRecord]:
        for index in range(self._count):
            yield self.stored_at(index)

    def _decode_one(self, index: int) -> EventRecord:
        if self._frames is None:
            self._ensure_sizes()
        payload = self._payload
        frames = self._frames
        position = frames[index]
        timestamp = _TS.unpack_from(payload, position)[0]
        cursor = position + 8
        key, cursor = _unpack_frame(payload, cursor)
        value, cursor = _unpack_frame(payload, cursor)
        (header_count,) = _U16.unpack_from(payload, cursor)
        cursor += 2
        headers = {}
        for _ in range(header_count):
            (name_length,) = _U16.unpack_from(payload, cursor)
            cursor += 2
            name = str(payload[cursor : cursor + name_length], "utf-8")
            cursor += name_length
            headers[name], cursor = _unpack_frame(payload, cursor)
        return EventRecord(value=value, key=key, headers=headers, timestamp=timestamp)

    # -- wire image ----------------------------------------------------- #
    def ensure_payload(self):
        """Materialise (once) and return the packed *uncompressed* payload.

        Three sources, all memoized: already present (in-process batches
        after a previous encode, ``codec=none`` wire batches); the sealed
        wire body, decompressed after a forced CRC check (the one place a
        compressed batch inflates, so replication/mirroring that only
        forward bytes never reach it); or an encode of the record tuple —
        deliberately lazy, reusing the encoded bodies the sizing pass
        cached so a JSON value is serialized exactly once end to end."""
        payload = self._payload
        if payload is not None:
            return payload
        wire = self._wire
        if wire is not None:
            self.verify_crc(force=True)
            payload = get_codec(self.codec).decompress(bytes(wire))
            self._payload = payload
            return payload
        records = self._records
        pieces: list = []
        frames = [0]
        total = 0
        for record in records:
            at = len(pieces)
            cached = record.__dict__
            pieces.append(_TS.pack(record.timestamp))
            _pack_frame(record.key, pieces, cached.get("_cached_key_body"))
            _pack_frame(record.value, pieces, cached.get("_cached_value_body"))
            headers = record.headers
            pieces.append(_U16.pack(len(headers)))
            for name, value in headers.items():
                encoded = name.encode("utf-8")
                pieces.append(_U16.pack(len(encoded)))
                pieces.append(encoded)
                _pack_frame(value, pieces)
            total += sum(len(piece) for piece in pieces[at:])
            frames.append(total)
        payload = b"".join(pieces)
        self._frames = tuple(frames)
        self._payload = payload
        return payload

    def seal_wire(
        self, codec: str = "none", *, min_size: int = 0
    ) -> "PackedRecordBatch":
        """Seal the batch for the wire: compress (optionally) and stamp the
        CRC32 the store/forward path verifies on ingress and first decode.

        Returns a batch sharing every column with this one but carrying a
        sealed body; when the batch already wears the requested codec it
        is returned as-is.  Payloads below ``min_size`` uncompressed bytes
        stay raw (``codec`` falls back to ``none``) — tiny batches cost
        more in codec overhead than they save."""
        if self._wire is not None and self.codec == codec:
            return self
        spec = get_codec(codec)
        payload = self.ensure_payload()
        raw = payload if isinstance(payload, bytes) else bytes(payload)
        if spec.codec_id != 0 and len(raw) >= min_size:
            body: bytes = spec.compress(raw)
            chosen = spec.name
        else:
            body = raw
            chosen = "none"
        sealed = self.with_offsets(self.base_offset, self.min_append_time)
        sealed.end_offset = self.end_offset
        sealed.contiguous = self.contiguous
        sealed.min_append_time = self.min_append_time
        sealed.max_append_time = self.max_append_time
        sealed._offsets = self._offsets
        sealed._append_times = self._append_times
        sealed._sizes = self._sizes
        sealed._cum = self._cum
        sealed._max_size = self._max_size
        sealed._payload = raw
        sealed.codec = chosen
        sealed.crc32 = zlib.crc32(body) & 0xFFFFFFFF
        sealed._wire = body
        sealed._usize = len(raw)
        sealed._crc_verified = True
        return sealed

    def to_bytes(self) -> bytes:
        """Self-contained versioned wire image: 16-byte header + body.

        A batch already carrying a sealed body (wire-decoded, or sealed by
        :meth:`seal_wire`) re-emits it verbatim — forwarding a compressed
        batch never decompresses, re-encodes or re-CRCs anything."""
        wire = self._wire
        if wire is None:
            return self.seal_wire("none").to_bytes()
        return (
            _HEADER.pack(
                _WIRE_MAGIC,
                _WIRE_VERSION,
                get_codec(self.codec).codec_id,
                self.crc32,
                self._count,
                self._usize,
            )
            + bytes(wire)
        )


class PackedView(Sequence):
    """A zero-copy fetch response: a few ``(source, start, stop)`` runs.

    Each run references either an immutable :class:`PackedRecordBatch`
    chunk or the active segment's append-only tail list; nothing is
    copied or decoded until a record is actually touched, so fetching a
    window is O(runs) regardless of how many records it spans.  The view
    behaves like the list of :class:`StoredRecord` the fetch APIs have
    always returned (indexing, iteration, equality, ``+`` with lists).
    """

    __slots__ = ("_runs", "_length")

    def __init__(self, runs: Tuple[tuple, ...], length: Optional[int] = None) -> None:
        self._runs = runs
        if length is None:
            length = sum(stop - start for _, start, stop in runs)
        self._length = length

    @staticmethod
    def wrap(records: Sequence) -> "PackedView":
        if isinstance(records, PackedView):
            return records
        if isinstance(records, PackedRecordBatch):
            return PackedView(((records, 0, len(records)),))
        records = list(records)
        return PackedView(((records, 0, len(records)),) if records else ())

    def runs(self) -> Tuple[tuple, ...]:
        return self._runs

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._length))]
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(index)
        for source, start, stop in self._runs:
            span = stop - start
            if index < span:
                if isinstance(source, PackedRecordBatch):
                    return source.stored_at(start + index)
                return source[start + index]
            index -= span
        raise IndexError(index)  # unreachable

    def __iter__(self) -> Iterator[StoredRecord]:
        for source, start, stop in self._runs:
            if isinstance(source, PackedRecordBatch):
                for index in range(start, stop):
                    yield source.stored_at(index)
            else:
                for index in range(start, stop):
                    yield source[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (PackedView, list, tuple)):
            if len(other) != self._length:
                return False
            return all(mine == theirs for mine, theirs in zip(self, other))
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __add__(self, other) -> list:
        return list(self) + list(other)

    def __radd__(self, other) -> list:
        return list(other) + list(self)

    def __repr__(self) -> str:
        return f"PackedView({list(self)!r})"

    def size_bytes(self) -> int:
        """Total serialized (logical) bytes across the view, O(runs).
        Fetch budgets charge logical bytes — a compressed batch still
        delivers its full uncompressed records to the consumer."""
        total = 0
        for source, start, stop in self._runs:
            if isinstance(source, PackedRecordBatch):
                total += source.size_range(start, stop)
            else:
                for index in range(start, stop):
                    total += source[index].size_bytes()
        return total

    def physical_size_bytes(self) -> int:
        """Bytes a forwarder would actually put on the wire for this view:
        compressed batch bodies count at their compressed size."""
        total = 0
        for source, start, stop in self._runs:
            if isinstance(source, PackedRecordBatch):
                total += source.physical_size_range(start, stop)
            else:
                for index in range(start, stop):
                    total += source[index].size_bytes()
        return total

    def verify_crcs(self) -> None:
        """CRC-check every sealed batch the view references (memoized per
        batch).  Consumers with ``check_crcs`` run this before records are
        handed out; raises :class:`CorruptBatchError` on the first bad run."""
        for source, _, _ in self._runs:
            if isinstance(source, PackedRecordBatch):
                source.verify_crc()

    def with_overlay(
        self, fn: Callable[[int], Mapping[str, str]]
    ) -> list:
        """Per-run packed chunks with ``fn``'s headers overlaid — the
        MirrorMaker forwarding form.  Packed runs are sliced (sharing
        payload/records); only plain tail runs need packing first."""
        chunks = []
        for source, start, stop in self._runs:
            if isinstance(source, PackedRecordBatch):
                piece = source.slice(start, stop)
            else:
                piece = PackedRecordBatch.from_stored(tuple(source[start:stop]))
            chunks.append(piece.with_header_overlay(fn))
        return chunks


class RecordBatch:
    """A producer-side batch of records destined for one topic partition.

    The SDK producer accumulates records per partition and ships them as a
    batch; batching is what lets remote (high-RTT) clients approach the
    throughput of local clients in the paper's evaluation.
    """

    def __init__(
        self,
        topic: str,
        partition: int,
        max_bytes: int = 1 << 20,
        created_at: float | None = None,
    ) -> None:
        self.topic = topic
        self.partition = partition
        self.max_bytes = int(max_bytes)
        self._records: list[EventRecord] = []
        self._size = 0
        self._packed: Optional[PackedRecordBatch] = None
        self._wire_sealed: Optional[Tuple[str, PackedRecordBatch]] = None
        # Injectable so linger timing can run on a test-controlled clock.
        # Batch creation stamp at serde depth; producers pass a
        # Clock-derived value.
        self.created_at = (created_at if created_at is not None
                           else time.time())  # lint: ignore[RAW-CLOCK]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self._records)

    @property
    def size_bytes(self) -> int:
        return self._size

    def try_append(self, record: EventRecord) -> bool:
        """Append ``record`` if it fits; return ``False`` when the batch is full.

        An empty batch always accepts one record even if it exceeds
        ``max_bytes`` — oversize rejection is the broker's job.
        """
        record_size = record.size_bytes()
        if self._records and self._size + record_size > self.max_bytes:
            return False
        self._records.append(record)
        self._size += record_size
        self._packed = None
        self._wire_sealed = None
        return True

    def records(self) -> Sequence[EventRecord]:
        return tuple(self._records)

    def sealed_packed(self) -> PackedRecordBatch:
        """Seal the batch into its packed wire form (cached).

        This is the single encode of the one-encode produce path: the
        same object travels to the broker, into the leader log, to every
        replica and out through fetch — retries reuse the cached seal."""
        packed = self._packed
        if packed is None:
            packed = PackedRecordBatch.from_events(tuple(self._records))
            self._packed = packed
        return packed

    def sealed_wire(self, codec: str, min_bytes: int = 0) -> PackedRecordBatch:
        """Seal into compressed wire form (cached per codec).

        The compressing analogue of :meth:`sealed_packed`: one compress +
        CRC stamp per batch, reused across producer retries.  Batches whose
        payload is under ``min_bytes`` stay raw (see
        :meth:`PackedRecordBatch.seal_wire`)."""
        cached = self._wire_sealed
        if cached is not None and cached[0] == codec:
            return cached[1]
        sealed = self.sealed_packed().seal_wire(codec, min_size=min_bytes)
        self._wire_sealed = (codec, sealed)
        return sealed

    @classmethod
    def of(cls, topic: str, partition: int, records: Iterable[EventRecord]) -> "RecordBatch":
        batch = cls(topic, partition, max_bytes=1 << 62)
        for record in records:
            batch.try_append(record)
        return batch
