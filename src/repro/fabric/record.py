"""Event records, record batches and produce metadata.

Events in Octopus are Kafka records: an optional key, a value payload,
optional headers and a timestamp.  Scientific events (Section III of the
paper) range from 32 B telemetry samples to multi-kilobyte instrument
snapshots, so the record type tracks its serialized size explicitly — the
performance model and the broker quotas are driven by it.

Packed batch layout
-------------------
:class:`PackedRecordBatch` is the one-encode representation shared by the
whole data plane: the producer seals a wire batch into packed form once,
the partition log adopts the same object as a sealed segment chunk,
fetch responses expose slices of it (:class:`PackedView`), and
replication/MirrorMaker forward it by reference — a record is encoded at
most once between produce and delivery.  The (lazily materialised) wire
image is, per batch::

    record[0] .. record[n-1]           # n from the offset table

and per record::

    timestamp   : f64 big-endian
    key frame   : tag u8 | length u32 | body
    value frame : tag u8 | length u32 | body
    headers     : count u16, then per header
                  name length u16 | name utf-8 | value frame

Frame tags: ``0`` None (empty body), ``1`` raw bytes, ``2`` utf-8 text,
``3`` canonical JSON (:func:`repro.fabric.serde.serialize`).  Alongside
the payload the batch carries the columns the storage layer actually
serves from without decoding anything: a base offset plus per-record
offset table (elided while offsets are contiguous), per-record append
times (elided while uniform), per-record serialized sizes with their
prefix sums (byte-budget fetches bisect instead of walking), and
min/max append-time covers for retention and timestamp lookup.
"""

from __future__ import annotations

import bisect
import itertools
import json
import struct
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.fabric.serde import serialize, serialized_size

_record_counter = itertools.count()


def _next_record_id() -> int:
    return next(_record_counter)


@dataclass(frozen=True)
class EventRecord:
    """A single event published to (or fetched from) the fabric.

    Parameters
    ----------
    value:
        The event payload.  Any JSON-serializable object, ``bytes`` or
        ``str``.
    key:
        Optional partitioning key.  Records with the same key are routed
        to the same partition and therefore totally ordered.
    headers:
        Optional string-to-string metadata (e.g. ``source``, schema id).
    timestamp:
        Producer-side timestamp in seconds since the epoch.
    """

    value: Any
    key: Any = None
    headers: Mapping[str, str] = field(default_factory=dict)
    timestamp: float = field(default_factory=time.time)
    record_id: int = field(default_factory=_next_record_id)

    def size_bytes(self) -> int:
        """Approximate on-the-wire size of the record in bytes.

        Computed once and cached: the produce hot path consults the size
        repeatedly (batch accounting, broker quota, replication budget) and
        re-serializing the value each time dominated the batched profile.
        """
        cached = self.__dict__.get("_cached_size")
        if cached is not None:
            return cached
        size = serialized_size(self.value)
        if self.key is not None:
            size += serialized_size(self.key)
        for name, val in self.headers.items():
            size += len(name) + serialized_size(val)
        # Fixed per-record framing overhead (offset, length, crc, attrs).
        size += 24
        object.__setattr__(self, "_cached_size", size)
        return size

    def with_headers(self, **headers: str) -> "EventRecord":
        """Return a copy of the record with additional headers merged in."""
        merged = dict(self.headers)
        merged.update(headers)
        return EventRecord(
            value=self.value,
            key=self.key,
            headers=merged,
            timestamp=self.timestamp,
            record_id=self.record_id,
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict view used by the trigger substrate and persistence."""
        return {
            "key": self.key,
            "value": self.value,
            "headers": dict(self.headers),
            "timestamp": self.timestamp,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EventRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            value=data.get("value"),
            key=data.get("key"),
            headers=dict(data.get("headers", {})),
            timestamp=float(data.get("timestamp", time.time())),
        )

    def to_json(self) -> str:
        """JSON representation (used by the persistence connector)."""
        return json.dumps(self.to_dict(), sort_keys=True, default=str)


class StoredRecord(NamedTuple):
    """A record as it sits in a partition log: record plus assigned offset.

    A NamedTuple rather than a dataclass: the produce/replicate hot path
    creates one per appended record, and tuple construction is several
    times cheaper than frozen-dataclass ``__init__``.
    """

    offset: int
    record: EventRecord
    append_time: float

    @property
    def value(self) -> Any:
        return self.record.value

    @property
    def key(self) -> Any:
        return self.record.key

    @property
    def timestamp(self) -> float:
        return self.record.timestamp

    def size_bytes(self) -> int:
        return self.record.size_bytes()


class RecordMetadata(NamedTuple):
    """Metadata returned to a producer after a successful append."""

    topic: str
    partition: int
    offset: int
    timestamp: float
    serialized_size: int


_TS = struct.Struct(">d")
_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")

_TAG_NONE = 0
_TAG_BYTES = 1
_TAG_STR = 2
_TAG_JSON = 3


def _pack_frame(value: Any, pieces: list) -> None:
    if value is None:
        pieces.append(b"\x00\x00\x00\x00\x00")
        return
    if isinstance(value, (bytes, bytearray)):
        tag, body = _TAG_BYTES, bytes(value)
    else:
        body = serialize(value)
        tag = _TAG_STR if isinstance(value, str) else _TAG_JSON
    pieces.append(_U8.pack(tag))
    pieces.append(_U32.pack(len(body)))
    pieces.append(body)


def _unpack_frame(buffer: bytes, position: int) -> tuple:
    tag = buffer[position]
    (length,) = _U32.unpack_from(buffer, position + 1)
    position += 5
    body = buffer[position : position + length]
    position += length
    if tag == _TAG_NONE:
        return None, position
    if tag == _TAG_BYTES:
        return bytes(body), position
    if tag == _TAG_STR:
        return body.decode("utf-8"), position
    return json.loads(body.decode("utf-8")), position


#: A header overlay: ``(fn, source_base, source_offsets)``.  ``fn`` maps a
#: record's *source* offset (captured when the overlay was attached, so
#: restamping under new offsets keeps the provenance intact) to extra
#: headers merged in at decode time.
_Overlay = Tuple[Callable[[int], Mapping[str, str]], int, Optional[Tuple[int, ...]]]


class PackedRecordBatch:
    """An immutable, offset-stamped run of records packed as one unit.

    See the module docstring for the wire layout.  Instances are created
    once (producer seal, tail seal, follower adoption) and then shared by
    reference across the leader log, the canonical partition, every
    follower replica and any fetch view — nothing downstream re-encodes
    or copies the records.  All derived forms (:meth:`slice`,
    :meth:`with_offsets`, :meth:`with_header_overlay`) share the decoded
    record tuple, the size columns and the payload bytes of the parent.

    The decoded-record cache means an in-process round trip returns the
    *same* :class:`EventRecord` objects that were produced; the byte
    payload (:meth:`to_bytes`/:meth:`from_bytes`) is only materialised
    when something actually needs wire bytes, and at most once.
    """

    __slots__ = (
        "base_offset",
        "end_offset",
        "contiguous",
        "min_append_time",
        "max_append_time",
        "size_bytes",
        "_offsets",
        "_append_times",
        "_records",
        "_sizes",
        "_cum",
        "_max_size",
        "_payload",
        "_frames",
        "_overlay",
        "_decoded",
    )

    def __init__(
        self,
        *,
        base_offset: int,
        end_offset: int,
        contiguous: bool,
        min_append_time: float,
        max_append_time: float,
        offsets: Optional[Tuple[int, ...]],
        append_times: Optional[Tuple[float, ...]],
        records: Optional[Tuple[EventRecord, ...]],
        sizes: Tuple[int, ...],
        payload: Optional[bytes] = None,
        frames: Optional[Tuple[int, ...]] = None,
        overlay: Optional[_Overlay] = None,
    ) -> None:
        self.base_offset = base_offset
        self.end_offset = end_offset
        self.contiguous = contiguous
        self.min_append_time = min_append_time
        self.max_append_time = max_append_time
        self._offsets = offsets
        self._append_times = append_times
        self._records = records
        self._sizes = sizes
        cum = [0] * (len(sizes) + 1)
        total = 0
        for i, size in enumerate(sizes):
            total += size
            cum[i + 1] = total
        self._cum = tuple(cum)
        self.size_bytes = total
        self._max_size = max(sizes) if sizes else 0
        self._payload = payload
        self._frames = frames
        self._overlay = overlay
        self._decoded: Optional[list] = None

    # -- constructors -------------------------------------------------- #
    @classmethod
    def from_events(
        cls,
        records: Sequence[EventRecord],
        *,
        base_offset: int = 0,
        append_time: float = 0.0,
    ) -> "PackedRecordBatch":
        """Seal a producer wire batch: contiguous offsets, uniform time."""
        records = tuple(records)
        return cls(
            base_offset=base_offset,
            end_offset=base_offset + len(records),
            contiguous=True,
            min_append_time=append_time,
            max_append_time=append_time,
            offsets=None,
            append_times=None,
            records=records,
            sizes=tuple(record.size_bytes() for record in records),
        )

    @classmethod
    def from_stored(cls, stored: Sequence[StoredRecord]) -> "PackedRecordBatch":
        """Pack an offset-ordered run of already-stored records (tail seal,
        compaction rebuild, adoption of a replicated per-record run)."""
        stored = tuple(stored)
        if not stored:
            return cls.from_events(())
        base = stored[0].offset
        last = stored[-1].offset
        contiguous = last - base == len(stored) - 1
        offsets = None if contiguous else tuple(s.offset for s in stored)
        times = tuple(s.append_time for s in stored)
        low = min(times)
        high = max(times)
        uniform = low == high
        return cls(
            base_offset=base,
            end_offset=last + 1,
            contiguous=contiguous,
            min_append_time=low,
            max_append_time=high,
            offsets=offsets,
            append_times=None if uniform else times,
            records=tuple(s.record for s in stored),
            sizes=tuple(s.size_bytes() for s in stored),
        )

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        *,
        base_offset: int = 0,
        append_time: float = 0.0,
    ) -> "PackedRecordBatch":
        """Parse the wire image produced by :meth:`to_bytes`.

        Record ids are process-local and not part of the wire format, so
        decoded records carry fresh ones.
        """
        (count,) = _U32.unpack_from(data, 0)
        payload = data[4:]
        frames = [0]
        position = 0
        records = []
        for _ in range(count):
            timestamp = _TS.unpack_from(payload, position)[0]
            cursor = position + 8
            key, cursor = _unpack_frame(payload, cursor)
            value, cursor = _unpack_frame(payload, cursor)
            (header_count,) = _U16.unpack_from(payload, cursor)
            cursor += 2
            headers = {}
            for _ in range(header_count):
                (name_length,) = _U16.unpack_from(payload, cursor)
                cursor += 2
                name = payload[cursor : cursor + name_length].decode("utf-8")
                cursor += name_length
                headers[name], cursor = _unpack_frame(payload, cursor)
            records.append(
                EventRecord(value=value, key=key, headers=headers, timestamp=timestamp)
            )
            frames.append(cursor)
            position = cursor
        records = tuple(records)
        return cls(
            base_offset=base_offset,
            end_offset=base_offset + count,
            contiguous=True,
            min_append_time=append_time,
            max_append_time=append_time,
            offsets=None,
            append_times=None,
            records=records,
            sizes=tuple(record.size_bytes() for record in records),
            payload=payload,
            frames=tuple(frames),
        )

    # -- derived forms (all share records/sizes/payload by reference) -- #
    def with_offsets(self, base_offset: int, append_time: float) -> "PackedRecordBatch":
        """Restamp under fresh contiguous offsets and one append time —
        the leader assigning offsets at append, or a mirror destination
        re-homing a source batch.  Shares every column with the parent."""
        stamped = PackedRecordBatch.__new__(PackedRecordBatch)
        stamped.base_offset = base_offset
        stamped.end_offset = base_offset + len(self._sizes)
        stamped.contiguous = True
        stamped.min_append_time = append_time
        stamped.max_append_time = append_time
        stamped._offsets = None
        stamped._append_times = None
        stamped._records = self._records
        stamped._sizes = self._sizes
        stamped._cum = self._cum
        stamped.size_bytes = self.size_bytes
        stamped._max_size = self._max_size
        stamped._payload = self._payload
        stamped._frames = self._frames
        stamped._overlay = self._overlay
        stamped._decoded = self._decoded
        return stamped

    def with_header_overlay(
        self, fn: Callable[[int], Mapping[str, str]]
    ) -> "PackedRecordBatch":
        """Attach per-record extra headers computed from the record's
        *current* offset, merged lazily at decode time.  This is how
        MirrorMaker forwards provenance without touching the payload:
        the packed bytes stay byte-identical, the overlay rides alongside
        and survives restamping on the destination."""
        shadowed = PackedRecordBatch.__new__(PackedRecordBatch)
        shadowed.base_offset = self.base_offset
        shadowed.end_offset = self.end_offset
        shadowed.contiguous = self.contiguous
        shadowed.min_append_time = self.min_append_time
        shadowed.max_append_time = self.max_append_time
        shadowed._offsets = self._offsets
        shadowed._append_times = self._append_times
        shadowed._records = self._records
        shadowed._sizes = self._sizes
        shadowed._cum = self._cum
        shadowed.size_bytes = self.size_bytes
        shadowed._max_size = self._max_size
        shadowed._payload = self._payload
        shadowed._frames = self._frames
        shadowed._overlay = (fn, self.base_offset, self._offsets)
        shadowed._decoded = None
        return shadowed

    def slice(self, start: int, stop: int) -> "PackedRecordBatch":
        """Sub-run ``[start:stop)`` sharing the parent's payload bytes
        (the frame table is sliced, not re-encoded) and record tuple."""
        n = len(self._sizes)
        if start == 0 and stop == n:
            return self
        piece = PackedRecordBatch.__new__(PackedRecordBatch)
        offsets = self._offsets
        if offsets is None:
            piece.base_offset = self.base_offset + start
            piece.end_offset = self.base_offset + stop
            piece._offsets = None
            piece.contiguous = True
        else:
            sub = offsets[start:stop]
            piece.base_offset = sub[0]
            piece.end_offset = sub[-1] + 1
            piece.contiguous = sub[-1] - sub[0] == len(sub) - 1
            piece._offsets = None if piece.contiguous else sub
        times = self._append_times
        if times is None:
            piece.min_append_time = self.min_append_time
            piece.max_append_time = self.max_append_time
            piece._append_times = None
        else:
            sub_times = times[start:stop]
            piece.min_append_time = min(sub_times)
            piece.max_append_time = max(sub_times)
            piece._append_times = (
                None if piece.min_append_time == piece.max_append_time else sub_times
            )
        records = self._records
        piece._records = None if records is None else records[start:stop]
        sizes = self._sizes[start:stop]
        piece._sizes = sizes
        cum = self._cum
        shift = cum[start]
        piece._cum = tuple(c - shift for c in cum[start : stop + 1])
        piece.size_bytes = cum[stop] - shift
        piece._max_size = max(sizes) if sizes else 0
        frames = self._frames
        piece._payload = self._payload
        piece._frames = None if frames is None else frames[start : stop + 1]
        overlay = self._overlay
        if overlay is None:
            piece._overlay = None
        else:
            fn, src_base, src_offsets = overlay
            piece._overlay = (
                fn,
                src_base + start,
                None if src_offsets is None else src_offsets[start:stop],
            )
        decoded = self._decoded
        piece._decoded = None if decoded is None else decoded[start:stop]
        return piece

    # -- columnar accessors (no decoding) ------------------------------ #
    def __len__(self) -> int:
        return len(self._sizes)

    @property
    def sizes(self) -> Tuple[int, ...]:
        return self._sizes

    @property
    def max_record_size(self) -> int:
        return self._max_size

    def offset_at(self, index: int) -> int:
        offsets = self._offsets
        return self.base_offset + index if offsets is None else offsets[index]

    def append_time_at(self, index: int) -> float:
        times = self._append_times
        return self.min_append_time if times is None else times[index]

    def size_at(self, index: int) -> int:
        return self._sizes[index]

    def size_range(self, start: int, stop: int) -> int:
        cum = self._cum
        return cum[stop] - cum[start]

    def index_of_offset(self, offset: int) -> int:
        """Index of the first record with offset >= ``offset``."""
        offsets = self._offsets
        if offsets is None:
            position = offset - self.base_offset
            n = len(self._sizes)
            return 0 if position < 0 else (position if position < n else n)
        return bisect.bisect_left(offsets, offset)

    def first_index_at_or_after_time(self, timestamp: float) -> int:
        times = self._append_times
        if times is None:
            return 0 if self.min_append_time >= timestamp else len(self._sizes)
        return bisect.bisect_left(times, timestamp)

    def take_within(self, start: int, stop: int, budget: int) -> int:
        """Greedy prefix of ``[start:stop)`` whose bytes fit ``budget``
        (one bisection of the prefix sums, zero record decodes)."""
        cum = self._cum
        taken = bisect.bisect_right(cum, cum[start] + budget, start, stop + 1) - 1 - start
        return taken if taken > 0 else 0

    # -- decode (lazy, cached) ----------------------------------------- #
    def timestamp_at(self, index: int) -> float:
        records = self._records
        if records is not None:
            return records[index].timestamp
        return self.record_at(index).timestamp

    def record_at(self, index: int) -> EventRecord:
        records = self._records
        overlay = self._overlay
        if overlay is None and records is not None:
            return records[index]
        decoded = self._decoded
        if decoded is None:
            decoded = [None] * len(self._sizes)
            self._decoded = decoded
        record = decoded[index]
        if record is None:
            record = records[index] if records is not None else self._decode_one(index)
            if overlay is not None:
                fn, src_base, src_offsets = overlay
                source_offset = (
                    src_base + index if src_offsets is None else src_offsets[index]
                )
                record = record.with_headers(**fn(source_offset))
            decoded[index] = record
        return record

    def stored_at(self, index: int) -> StoredRecord:
        return StoredRecord(
            offset=self.offset_at(index),
            record=self.record_at(index),
            append_time=self.append_time_at(index),
        )

    def __getitem__(self, index: int) -> StoredRecord:
        if index < 0:
            index += len(self._sizes)
        return self.stored_at(index)

    def __iter__(self) -> Iterator[StoredRecord]:
        for index in range(len(self._sizes)):
            yield self.stored_at(index)

    def _decode_one(self, index: int) -> EventRecord:
        payload = self._payload
        frames = self._frames
        position = frames[index]
        timestamp = _TS.unpack_from(payload, position)[0]
        cursor = position + 8
        key, cursor = _unpack_frame(payload, cursor)
        value, cursor = _unpack_frame(payload, cursor)
        (header_count,) = _U16.unpack_from(payload, cursor)
        cursor += 2
        headers = {}
        for _ in range(header_count):
            (name_length,) = _U16.unpack_from(payload, cursor)
            cursor += 2
            name = payload[cursor : cursor + name_length].decode("utf-8")
            cursor += name_length
            headers[name], cursor = _unpack_frame(payload, cursor)
        return EventRecord(value=value, key=key, headers=headers, timestamp=timestamp)

    # -- wire image ----------------------------------------------------- #
    def ensure_payload(self) -> bytes:
        """Materialise (once) and return the packed payload bytes.

        The encode is deliberately lazy: the in-process data plane serves
        everything from the shared record tuple and size columns, so the
        bytes are only built when a connector actually asks for them —
        and then cached so the answer never changes or repeats work."""
        payload = self._payload
        if payload is not None:
            return payload
        records = self._records
        pieces: list = []
        frames = [0]
        total = 0
        for record in records:
            at = len(pieces)
            pieces.append(_TS.pack(record.timestamp))
            _pack_frame(record.key, pieces)
            _pack_frame(record.value, pieces)
            headers = record.headers
            pieces.append(_U16.pack(len(headers)))
            for name, value in headers.items():
                encoded = name.encode("utf-8")
                pieces.append(_U16.pack(len(encoded)))
                pieces.append(encoded)
                _pack_frame(value, pieces)
            total += sum(len(piece) for piece in pieces[at:])
            frames.append(total)
        payload = b"".join(pieces)
        self._frames = tuple(frames)
        self._payload = payload
        return payload

    def to_bytes(self) -> bytes:
        """Self-contained wire image: record count + packed payload."""
        return _U32.pack(len(self._sizes)) + self.ensure_payload()


class PackedView(Sequence):
    """A zero-copy fetch response: a few ``(source, start, stop)`` runs.

    Each run references either an immutable :class:`PackedRecordBatch`
    chunk or the active segment's append-only tail list; nothing is
    copied or decoded until a record is actually touched, so fetching a
    window is O(runs) regardless of how many records it spans.  The view
    behaves like the list of :class:`StoredRecord` the fetch APIs have
    always returned (indexing, iteration, equality, ``+`` with lists).
    """

    __slots__ = ("_runs", "_length")

    def __init__(self, runs: Tuple[tuple, ...], length: Optional[int] = None) -> None:
        self._runs = runs
        if length is None:
            length = sum(stop - start for _, start, stop in runs)
        self._length = length

    @staticmethod
    def wrap(records: Sequence) -> "PackedView":
        if isinstance(records, PackedView):
            return records
        if isinstance(records, PackedRecordBatch):
            return PackedView(((records, 0, len(records)),))
        records = list(records)
        return PackedView(((records, 0, len(records)),) if records else ())

    def runs(self) -> Tuple[tuple, ...]:
        return self._runs

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._length))]
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(index)
        for source, start, stop in self._runs:
            span = stop - start
            if index < span:
                if isinstance(source, PackedRecordBatch):
                    return source.stored_at(start + index)
                return source[start + index]
            index -= span
        raise IndexError(index)  # unreachable

    def __iter__(self) -> Iterator[StoredRecord]:
        for source, start, stop in self._runs:
            if isinstance(source, PackedRecordBatch):
                for index in range(start, stop):
                    yield source.stored_at(index)
            else:
                for index in range(start, stop):
                    yield source[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (PackedView, list, tuple)):
            if len(other) != self._length:
                return False
            return all(mine == theirs for mine, theirs in zip(self, other))
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __add__(self, other) -> list:
        return list(self) + list(other)

    def __radd__(self, other) -> list:
        return list(other) + list(self)

    def __repr__(self) -> str:
        return f"PackedView({list(self)!r})"

    def size_bytes(self) -> int:
        """Total serialized bytes across the view, O(runs)."""
        total = 0
        for source, start, stop in self._runs:
            if isinstance(source, PackedRecordBatch):
                total += source.size_range(start, stop)
            else:
                for index in range(start, stop):
                    total += source[index].size_bytes()
        return total

    def with_overlay(
        self, fn: Callable[[int], Mapping[str, str]]
    ) -> list:
        """Per-run packed chunks with ``fn``'s headers overlaid — the
        MirrorMaker forwarding form.  Packed runs are sliced (sharing
        payload/records); only plain tail runs need packing first."""
        chunks = []
        for source, start, stop in self._runs:
            if isinstance(source, PackedRecordBatch):
                piece = source.slice(start, stop)
            else:
                piece = PackedRecordBatch.from_stored(tuple(source[start:stop]))
            chunks.append(piece.with_header_overlay(fn))
        return chunks


class RecordBatch:
    """A producer-side batch of records destined for one topic partition.

    The SDK producer accumulates records per partition and ships them as a
    batch; batching is what lets remote (high-RTT) clients approach the
    throughput of local clients in the paper's evaluation.
    """

    def __init__(
        self,
        topic: str,
        partition: int,
        max_bytes: int = 1 << 20,
        created_at: float | None = None,
    ) -> None:
        self.topic = topic
        self.partition = partition
        self.max_bytes = int(max_bytes)
        self._records: list[EventRecord] = []
        self._size = 0
        self._packed: Optional[PackedRecordBatch] = None
        # Injectable so linger timing can run on a test-controlled clock.
        self.created_at = created_at if created_at is not None else time.time()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self._records)

    @property
    def size_bytes(self) -> int:
        return self._size

    def try_append(self, record: EventRecord) -> bool:
        """Append ``record`` if it fits; return ``False`` when the batch is full.

        An empty batch always accepts one record even if it exceeds
        ``max_bytes`` — oversize rejection is the broker's job.
        """
        record_size = record.size_bytes()
        if self._records and self._size + record_size > self.max_bytes:
            return False
        self._records.append(record)
        self._size += record_size
        self._packed = None
        return True

    def records(self) -> Sequence[EventRecord]:
        return tuple(self._records)

    def sealed_packed(self) -> PackedRecordBatch:
        """Seal the batch into its packed wire form (cached).

        This is the single encode of the one-encode produce path: the
        same object travels to the broker, into the leader log, to every
        replica and out through fetch — retries reuse the cached seal."""
        packed = self._packed
        if packed is None:
            packed = PackedRecordBatch.from_events(tuple(self._records))
            self._packed = packed
        return packed

    @classmethod
    def of(cls, topic: str, partition: int, records: Iterable[EventRecord]) -> "RecordBatch":
        batch = cls(topic, partition, max_bytes=1 << 62)
        for record in records:
            batch.try_append(record)
        return batch
