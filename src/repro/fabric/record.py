"""Event records, record batches and produce metadata.

Events in Octopus are Kafka records: an optional key, a value payload,
optional headers and a timestamp.  Scientific events (Section III of the
paper) range from 32 B telemetry samples to multi-kilobyte instrument
snapshots, so the record type tracks its serialized size explicitly — the
performance model and the broker quotas are driven by it.
"""

from __future__ import annotations

import itertools
import json
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, NamedTuple, Sequence

from repro.fabric.serde import serialized_size

_record_counter = itertools.count()


def _next_record_id() -> int:
    return next(_record_counter)


@dataclass(frozen=True)
class EventRecord:
    """A single event published to (or fetched from) the fabric.

    Parameters
    ----------
    value:
        The event payload.  Any JSON-serializable object, ``bytes`` or
        ``str``.
    key:
        Optional partitioning key.  Records with the same key are routed
        to the same partition and therefore totally ordered.
    headers:
        Optional string-to-string metadata (e.g. ``source``, schema id).
    timestamp:
        Producer-side timestamp in seconds since the epoch.
    """

    value: Any
    key: Any = None
    headers: Mapping[str, str] = field(default_factory=dict)
    timestamp: float = field(default_factory=time.time)
    record_id: int = field(default_factory=_next_record_id)

    def size_bytes(self) -> int:
        """Approximate on-the-wire size of the record in bytes.

        Computed once and cached: the produce hot path consults the size
        repeatedly (batch accounting, broker quota, replication budget) and
        re-serializing the value each time dominated the batched profile.
        """
        cached = self.__dict__.get("_cached_size")
        if cached is not None:
            return cached
        size = serialized_size(self.value)
        if self.key is not None:
            size += serialized_size(self.key)
        for name, val in self.headers.items():
            size += len(name) + serialized_size(val)
        # Fixed per-record framing overhead (offset, length, crc, attrs).
        size += 24
        object.__setattr__(self, "_cached_size", size)
        return size

    def with_headers(self, **headers: str) -> "EventRecord":
        """Return a copy of the record with additional headers merged in."""
        merged = dict(self.headers)
        merged.update(headers)
        return EventRecord(
            value=self.value,
            key=self.key,
            headers=merged,
            timestamp=self.timestamp,
            record_id=self.record_id,
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict view used by the trigger substrate and persistence."""
        return {
            "key": self.key,
            "value": self.value,
            "headers": dict(self.headers),
            "timestamp": self.timestamp,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EventRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            value=data.get("value"),
            key=data.get("key"),
            headers=dict(data.get("headers", {})),
            timestamp=float(data.get("timestamp", time.time())),
        )

    def to_json(self) -> str:
        """JSON representation (used by the persistence connector)."""
        return json.dumps(self.to_dict(), sort_keys=True, default=str)


class StoredRecord(NamedTuple):
    """A record as it sits in a partition log: record plus assigned offset.

    A NamedTuple rather than a dataclass: the produce/replicate hot path
    creates one per appended record, and tuple construction is several
    times cheaper than frozen-dataclass ``__init__``.
    """

    offset: int
    record: EventRecord
    append_time: float

    @property
    def value(self) -> Any:
        return self.record.value

    @property
    def key(self) -> Any:
        return self.record.key

    @property
    def timestamp(self) -> float:
        return self.record.timestamp

    def size_bytes(self) -> int:
        return self.record.size_bytes()


class RecordMetadata(NamedTuple):
    """Metadata returned to a producer after a successful append."""

    topic: str
    partition: int
    offset: int
    timestamp: float
    serialized_size: int


class RecordBatch:
    """A producer-side batch of records destined for one topic partition.

    The SDK producer accumulates records per partition and ships them as a
    batch; batching is what lets remote (high-RTT) clients approach the
    throughput of local clients in the paper's evaluation.
    """

    def __init__(
        self,
        topic: str,
        partition: int,
        max_bytes: int = 1 << 20,
        created_at: float | None = None,
    ) -> None:
        self.topic = topic
        self.partition = partition
        self.max_bytes = int(max_bytes)
        self._records: list[EventRecord] = []
        self._size = 0
        # Injectable so linger timing can run on a test-controlled clock.
        self.created_at = created_at if created_at is not None else time.time()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self._records)

    @property
    def size_bytes(self) -> int:
        return self._size

    def try_append(self, record: EventRecord) -> bool:
        """Append ``record`` if it fits; return ``False`` when the batch is full.

        An empty batch always accepts one record even if it exceeds
        ``max_bytes`` — oversize rejection is the broker's job.
        """
        record_size = record.size_bytes()
        if self._records and self._size + record_size > self.max_bytes:
            return False
        self._records.append(record)
        self._size += record_size
        return True

    def records(self) -> Sequence[EventRecord]:
        return tuple(self._records)

    @classmethod
    def of(cls, topic: str, partition: int, records: Iterable[EventRecord]) -> "RecordBatch":
        batch = cls(topic, partition, max_bytes=1 << 62)
        for record in records:
            batch.try_append(record)
        return batch
