"""Consumer client for the event fabric.

Supports the consumption modes the paper describes (Section IV-F):
consume from the earliest offset, the latest offset, or after a given
timestamp; periodic automatic offset commits (at-least-once delivery) or
manual commits; and consumer groups so that several consumers — or many
instances of a trigger function — share a topic's partitions.

Polling rides the cluster's fetch-session data plane: the whole
assignment is served in one :meth:`FabricCluster.fetch_many` pass per
poll (one authorization check per topic, leader resolutions cached on the
session), and with ``prefetch=True`` a background thread pipelines the
next fetch while the application processes the current batch.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

from repro.common.clock import Clock, SystemClock
from repro.fabric.cluster import FabricCluster, FetchRequest, FetchSession
from repro.fabric.errors import CommitFailedError, FabricError, IllegalGenerationError
from repro.fabric.group import TopicPartition
from repro.fabric.record import StoredRecord

#: Latency samples retained per client; long-running consumers/producers
#: previously accumulated one float per poll forever.
METRICS_WINDOW = 2048


@dataclass(frozen=True)
class ConsumerConfig:
    """Client-side consumer configuration.

    ``receive_buffer_bytes`` defaults to the 2 MB the paper's evaluation
    uses (Section V-B) and caps each poll's fetch session as a whole;
    ``auto_offset_reset`` selects earliest/latest behaviour when the group
    has no committed offset.  ``prefetch`` enables the background prefetch
    thread: while the application processes one batch, the next fetch is
    already in flight.
    """

    group_id: str = "default-group"
    client_id: str = "octopus-consumer"
    auto_offset_reset: str = "earliest"
    enable_auto_commit: bool = True
    auto_commit_interval_seconds: float = 5.0
    max_poll_records: int = 500
    receive_buffer_bytes: int = 2 * 1024 * 1024
    start_timestamp: Optional[float] = None
    prefetch: bool = False

    def validate(self) -> None:
        if self.auto_offset_reset not in ("earliest", "latest", "timestamp"):
            raise ValueError(
                "auto_offset_reset must be 'earliest', 'latest' or 'timestamp'"
            )
        if self.auto_offset_reset == "timestamp" and self.start_timestamp is None:
            raise ValueError("start_timestamp required when auto_offset_reset='timestamp'")
        if self.max_poll_records <= 0:
            raise ValueError("max_poll_records must be > 0")


@dataclass
class ConsumerMetrics:
    """Counters aggregated by the benchmarking operator."""

    records_consumed: int = 0
    bytes_consumed: int = 0
    polls: int = 0
    commits: int = 0
    prefetch_hits: int = 0
    poll_latencies: Deque[float] = field(
        default_factory=lambda: deque(maxlen=METRICS_WINDOW)
    )


class FabricConsumer:
    """Reads events from the fabric as part of a consumer group."""

    def __init__(
        self,
        cluster: FabricCluster,
        topics: Sequence[str],
        config: Optional[ConsumerConfig] = None,
        *,
        principal: Optional[str] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.config = config or ConsumerConfig()
        self.config.validate()
        self._cluster = cluster
        self._principal = principal
        self._clock: Clock = clock or SystemClock()
        self._topics = list(topics)
        self._lock = threading.RLock()
        self._positions: Dict[TopicPartition, int] = {}
        self._poll_cursor = 0
        self._closed = False
        self._last_auto_commit = self._clock.now()
        self.metrics = ConsumerMetrics()
        self._session: FetchSession = cluster.fetch_session(principal=principal)
        # Prefetch machinery (only materialised when config.prefetch).
        self._prefetched: Dict[TopicPartition, List[StoredRecord]] = {}
        self._prefetch_wakeup = threading.Event()
        self._prefetch_stop = threading.Event()
        self._prefetch_thread: Optional[threading.Thread] = None
        self._prefetch_session: Optional[FetchSession] = None
        partitions = self._all_partitions()
        self._member_id, self._generation, assignment = cluster.groups.join(
            self.config.group_id, self.config.client_id, self._topics, partitions
        )
        self._assignment = list(assignment)
        self._session.set_assignment(self._assignment)
        self._initialise_positions()
        if self.config.prefetch:
            self._prefetch_session = cluster.fetch_session(principal=principal)
            self._prefetch_thread = threading.Thread(
                target=self._prefetch_loop,
                name=f"prefetch-{self._member_id}",
                daemon=True,
            )
            self._prefetch_thread.start()

    # ------------------------------------------------------------------ #
    # Assignment / positions
    # ------------------------------------------------------------------ #
    @property
    def member_id(self) -> str:
        return self._member_id

    @property
    def generation(self) -> int:
        return self._generation

    def assignment(self) -> List[TopicPartition]:
        with self._lock:
            return list(self._assignment)

    def _all_partitions(self) -> List[TopicPartition]:
        partitions: List[TopicPartition] = []
        for topic in self._topics:
            partitions.extend(self._cluster.partitions_for(topic))
        return partitions

    def _initialise_positions(self) -> None:
        """Seed fetch positions from committed offsets or the reset policy."""
        with self._lock:
            for topic, partition in self._assignment:
                committed = self._cluster.offsets.committed(
                    self.config.group_id, topic, partition
                )
                if committed is not None:
                    self._positions[(topic, partition)] = committed
                    continue
                if self.config.auto_offset_reset == "latest":
                    self._positions[(topic, partition)] = self._cluster.end_offset(
                        topic, partition
                    )
                elif self.config.auto_offset_reset == "timestamp":
                    log = self._cluster.topic(topic).partition(partition)
                    offset = log.offset_for_timestamp(self.config.start_timestamp or 0.0)
                    self._positions[(topic, partition)] = (
                        offset if offset is not None else log.log_end_offset
                    )
                else:  # earliest
                    self._positions[(topic, partition)] = self._cluster.beginning_offset(
                        topic, partition
                    )

    def position(self, topic: str, partition: int) -> int:
        with self._lock:
            return self._positions.get((topic, partition), 0)

    def seek(self, topic: str, partition: int, offset: int) -> None:
        """Explicitly reposition the consumer on a partition it owns."""
        with self._lock:
            if (topic, partition) not in self._assignment:
                raise ValueError(f"{topic}-{partition} is not assigned to this consumer")
            self._positions[(topic, partition)] = max(0, offset)
            self._prefetched.pop((topic, partition), None)

    def seek_to_beginning(self) -> None:
        with self._lock:
            for topic, partition in self._assignment:
                self._positions[(topic, partition)] = self._cluster.beginning_offset(
                    topic, partition
                )
            self._prefetched.clear()

    def seek_to_end(self) -> None:
        with self._lock:
            for topic, partition in self._assignment:
                self._positions[(topic, partition)] = self._cluster.end_offset(
                    topic, partition
                )
            self._prefetched.clear()

    # ------------------------------------------------------------------ #
    # Poll / commit
    # ------------------------------------------------------------------ #
    def poll(
        self, max_records: Optional[int] = None
    ) -> Dict[TopicPartition, List[StoredRecord]]:
        """Fetch available records from assigned partitions, round-robin.

        Each poll starts from a different partition of the assignment (the
        cursor advances by one per poll), so a hot early partition cannot
        starve later ones when ``max_poll_records`` is reached.  The whole
        rotated assignment is served by one fetch-session pass, with
        ``max_poll_records``/``receive_buffer_bytes`` charged across the
        session.  With ``prefetch=True``, records the background thread
        already fetched are delivered first and the next prefetch is kicked
        off before returning.  Advances in-memory positions; offsets become
        durable only when committed (automatically or via :meth:`commit`).
        """
        self._ensure_open()
        self._maybe_rejoin()
        limit = max_records if max_records is not None else self.config.max_poll_records
        start = time.perf_counter()
        out: Dict[TopicPartition, List[StoredRecord]] = {}
        pivot = 0
        with self._lock:
            assignment = list(self._assignment)
            if assignment:
                pivot = self._poll_cursor % len(assignment)
                assignment = assignment[pivot:] + assignment[:pivot]
                self._poll_cursor = pivot + 1
        remaining = limit
        budget = self.config.receive_buffer_bytes
        if self._prefetch_thread is not None and remaining > 0:
            remaining, budget = self._drain_prefetched(assignment, remaining, budget, out)
        # Drained prefetch records were charged against the same
        # record/byte budget the synchronous fetch gets, so a poll never
        # exceeds ``receive_buffer_bytes`` by more than the one
        # make-progress record a plain fetch may also grant.  Any leftover
        # buffer is protected from duplicate delivery by the
        # offset-matches-position check on the next drain.
        if remaining > 0 and budget > 0 and assignment:
            try:
                batches = self._session.fetch_assignment(
                    self._positions,
                    start=pivot,
                    max_records=remaining,
                    max_bytes=budget,
                )
            except Exception:
                # The drain already advanced positions for records the
                # application will now never see (poll raises).  Roll them
                # back into the prefetch buffer so the next successful poll
                # delivers them — at-least-once must survive a failed fetch.
                with self._lock:
                    for tp, records in out.items():
                        if self._positions.get(tp) == records[-1].offset + 1:
                            self._prefetched[tp] = records + self._prefetched.get(tp, [])
                            self._positions[tp] = records[0].offset
                            self.metrics.prefetch_hits -= len(records)
                raise
            with self._lock:
                for tp, records in batches.items():
                    existing = out.get(tp)
                    if existing:
                        existing.extend(records)
                    else:
                        out[tp] = records
                    self._positions[tp] = records[-1].offset + 1
        for records in out.values():
            self.metrics.records_consumed += len(records)
            self.metrics.bytes_consumed += sum(r.size_bytes() for r in records)
        self.metrics.polls += 1
        self.metrics.poll_latencies.append(time.perf_counter() - start)
        if self.config.enable_auto_commit:
            now = self._clock.now()
            if now - self._last_auto_commit >= self.config.auto_commit_interval_seconds:
                self.commit()
                self._last_auto_commit = now
        if self._prefetch_thread is not None and not self._closed:
            self._prefetch_wakeup.set()
        return out

    def _drain_prefetched(
        self,
        assignment: List[TopicPartition],
        remaining: int,
        budget: int,
        out: Dict[TopicPartition, List[StoredRecord]],
    ) -> tuple:
        """Deliver buffered prefetch results that still match our positions.

        Charges both the record and the byte budget and returns what is
        left of each for the synchronous fetch.  Slightly stricter than
        the broker-side charging it mirrors (see
        ``FabricCluster._assignment_fetch``): the make-progress record is
        granted once per poll (``take or out``), not once per partition,
        so drain + sync fetch together stay within one overshoot record.
        """
        with self._lock:
            for tp in assignment:
                if remaining <= 0 or budget <= 0:
                    break
                buffered = self._prefetched.get(tp)
                if not buffered:
                    continue
                if buffered[0].offset != self._positions.get(tp):
                    # A seek moved the position after the prefetch: stale.
                    del self._prefetched[tp]
                    continue
                take: List[StoredRecord] = []
                for record in buffered:
                    if len(take) >= remaining:
                        break
                    size = record.size_bytes()
                    if (take or out) and size > budget:
                        break
                    take.append(record)
                    budget -= size
                if not take:
                    break  # byte budget exhausted mid-assignment
                out[tp] = take
                if len(take) == len(buffered):
                    del self._prefetched[tp]
                else:
                    self._prefetched[tp] = buffered[len(take):]
                self._positions[tp] = take[-1].offset + 1
                remaining -= len(take)
                self.metrics.prefetch_hits += len(take)
        return remaining, budget

    def poll_flat(self, max_records: Optional[int] = None) -> List[StoredRecord]:
        """Like :meth:`poll` but flattened into a single offset-ordered list."""
        batches = self.poll(max_records=max_records)
        out: List[StoredRecord] = []
        for records in batches.values():
            out.extend(records)
        return out

    def commit(self, offsets: Optional[Dict[TopicPartition, int]] = None) -> None:
        """Commit current positions (or explicit ``offsets``) for the group.

        The whole assignment travels through
        :meth:`FabricCluster.commit_group`: one generation validation and
        one offset-store lock acquisition per commit, not per partition.
        """
        self._ensure_open()
        with self._lock:
            to_commit = dict(offsets) if offsets is not None else dict(self._positions)
        try:
            self._cluster.commit_group(
                self.config.group_id,
                to_commit,
                generation=self._generation,
                member_id=self._member_id,
            )
        except IllegalGenerationError as exc:
            raise CommitFailedError(str(exc)) from exc
        self.metrics.commits += 1

    def committed(self, topic: str, partition: int) -> Optional[int]:
        return self._cluster.offsets.committed(self.config.group_id, topic, partition)

    def lag(self) -> int:
        """Total lag of this consumer's assignment (for monitoring)."""
        total = 0
        for topic, partition in self.assignment():
            end = self._cluster.end_offset(topic, partition)
            total += max(0, end - self.position(topic, partition))
        return total

    # ------------------------------------------------------------------ #
    # Background prefetch
    # ------------------------------------------------------------------ #
    def _prefetch_loop(self) -> None:
        while True:
            self._prefetch_wakeup.wait()
            self._prefetch_wakeup.clear()
            if self._prefetch_stop.is_set():
                return
            try:
                self._prefetch_once()
            except FabricError:
                # Transient (leader election, revoked ACL): the next poll
                # falls back to a synchronous fetch and surfaces the error
                # to the application if it persists.
                pass

    def _prefetch_once(self) -> None:
        """One background fetch pass from the current positions.

        Safe to call concurrently with :meth:`poll`: the result is only
        installed if, at install time, the group generation is unchanged,
        the partition is still owned, its buffer is still empty and the
        fetched records start exactly at the current position.  Anything
        else — a rebalance, a seek, a racing drain — discards the fetch.
        """
        assert self._prefetch_session is not None
        with self._lock:
            if self._closed:
                return
            generation = self._generation
            requests = [
                FetchRequest(topic, partition, self._positions[(topic, partition)])
                for topic, partition in self._assignment
                if (topic, partition) in self._positions
                and not self._prefetched.get((topic, partition))
            ]
        if not requests:
            return
        batches = self._prefetch_session.fetch(
            requests,
            max_records=self.config.max_poll_records,
            max_bytes=self.config.receive_buffer_bytes,
        )
        with self._lock:
            if self._closed or generation != self._generation:
                return  # rebalanced underneath us: never deliver stale records
            owned = set(self._assignment)
            for tp, records in batches.items():
                if tp not in owned or self._prefetched.get(tp):
                    continue
                if records[0].offset != self._positions.get(tp):
                    continue  # a seek raced the fetch
                self._prefetched[tp] = list(records)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _maybe_rejoin(self) -> None:
        """Refresh the assignment if the group has rebalanced underneath us."""
        current = self._cluster.groups.generation(self.config.group_id)
        if current != self._generation:
            assignment = self._cluster.groups.assignment(
                self.config.group_id, self._member_id
            )
            with self._lock:
                self._generation = current
                self._assignment = list(assignment)
                self._session.set_assignment(self._assignment)
                # Rebalance: prefetched-but-undelivered records may belong
                # to partitions we no longer own — drop the whole buffer
                # rather than risk stale or duplicate delivery.
                self._prefetched.clear()
                # Forget positions of revoked partitions: committing them
                # after the rebalance would clobber the new owner's progress.
                owned = set(self._assignment)
                for tp in [tp for tp in self._positions if tp not in owned]:
                    del self._positions[tp]
                for tp in self._assignment:
                    if tp not in self._positions:
                        committed = self._cluster.offsets.committed(
                            self.config.group_id, tp[0], tp[1]
                        )
                        if committed is not None:
                            self._positions[tp] = committed
                        elif self.config.auto_offset_reset == "latest":
                            self._positions[tp] = self._cluster.end_offset(tp[0], tp[1])
                        else:
                            self._positions[tp] = self._cluster.beginning_offset(
                                tp[0], tp[1]
                            )

    def close(self) -> None:
        """Stop prefetching, commit (if auto-commit) and leave the group."""
        if self._closed:
            return
        if self._prefetch_thread is not None:
            self._prefetch_stop.set()
            self._prefetch_wakeup.set()
            self._prefetch_thread.join(timeout=5.0)
        if self.config.enable_auto_commit:
            try:
                self.commit()
            except CommitFailedError:
                pass
        self._cluster.groups.leave(
            self.config.group_id, self._member_id, self._all_partitions()
        )
        self._closed = True

    def __enter__(self) -> "FabricConsumer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("consumer is closed")
