"""Consumer client for the event fabric.

Supports the consumption modes the paper describes (Section IV-F):
consume from the earliest offset, the latest offset, or after a given
timestamp; periodic automatic offset commits (at-least-once delivery) or
manual commits; and consumer groups so that several consumers — or many
instances of a trigger function — share a topic's partitions.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.fabric.cluster import FabricCluster
from repro.fabric.errors import CommitFailedError, IllegalGenerationError
from repro.fabric.group import TopicPartition
from repro.fabric.record import StoredRecord


@dataclass(frozen=True)
class ConsumerConfig:
    """Client-side consumer configuration.

    ``receive_buffer_bytes`` defaults to the 2 MB the paper's evaluation
    uses (Section V-B); ``auto_offset_reset`` selects earliest/latest
    behaviour when the group has no committed offset.
    """

    group_id: str = "default-group"
    client_id: str = "octopus-consumer"
    auto_offset_reset: str = "earliest"
    enable_auto_commit: bool = True
    auto_commit_interval_seconds: float = 5.0
    max_poll_records: int = 500
    receive_buffer_bytes: int = 2 * 1024 * 1024
    start_timestamp: Optional[float] = None

    def validate(self) -> None:
        if self.auto_offset_reset not in ("earliest", "latest", "timestamp"):
            raise ValueError(
                "auto_offset_reset must be 'earliest', 'latest' or 'timestamp'"
            )
        if self.auto_offset_reset == "timestamp" and self.start_timestamp is None:
            raise ValueError("start_timestamp required when auto_offset_reset='timestamp'")
        if self.max_poll_records <= 0:
            raise ValueError("max_poll_records must be > 0")


@dataclass
class ConsumerMetrics:
    """Counters aggregated by the benchmarking operator."""

    records_consumed: int = 0
    bytes_consumed: int = 0
    polls: int = 0
    commits: int = 0
    poll_latencies: List[float] = field(default_factory=list)


class FabricConsumer:
    """Reads events from the fabric as part of a consumer group."""

    def __init__(
        self,
        cluster: FabricCluster,
        topics: Sequence[str],
        config: Optional[ConsumerConfig] = None,
        *,
        principal: Optional[str] = None,
    ) -> None:
        self.config = config or ConsumerConfig()
        self.config.validate()
        self._cluster = cluster
        self._principal = principal
        self._topics = list(topics)
        self._lock = threading.RLock()
        self._positions: Dict[TopicPartition, int] = {}
        self._poll_cursor = 0
        self._closed = False
        self._last_auto_commit = time.time()
        self.metrics = ConsumerMetrics()
        partitions = self._all_partitions()
        self._member_id, self._generation, assignment = cluster.groups.join(
            self.config.group_id, self.config.client_id, self._topics, partitions
        )
        self._assignment = list(assignment)
        self._initialise_positions()

    # ------------------------------------------------------------------ #
    # Assignment / positions
    # ------------------------------------------------------------------ #
    @property
    def member_id(self) -> str:
        return self._member_id

    @property
    def generation(self) -> int:
        return self._generation

    def assignment(self) -> List[TopicPartition]:
        with self._lock:
            return list(self._assignment)

    def _all_partitions(self) -> List[TopicPartition]:
        partitions: List[TopicPartition] = []
        for topic in self._topics:
            partitions.extend(self._cluster.partitions_for(topic))
        return partitions

    def _initialise_positions(self) -> None:
        """Seed fetch positions from committed offsets or the reset policy."""
        with self._lock:
            for topic, partition in self._assignment:
                committed = self._cluster.offsets.committed(
                    self.config.group_id, topic, partition
                )
                if committed is not None:
                    self._positions[(topic, partition)] = committed
                    continue
                if self.config.auto_offset_reset == "latest":
                    end = self._cluster.end_offsets(topic)[partition]
                    self._positions[(topic, partition)] = end
                elif self.config.auto_offset_reset == "timestamp":
                    log = self._cluster.topic(topic).partition(partition)
                    offset = log.offset_for_timestamp(self.config.start_timestamp or 0.0)
                    self._positions[(topic, partition)] = (
                        offset if offset is not None else log.log_end_offset
                    )
                else:  # earliest
                    begin = self._cluster.beginning_offsets(topic)[partition]
                    self._positions[(topic, partition)] = begin

    def position(self, topic: str, partition: int) -> int:
        with self._lock:
            return self._positions.get((topic, partition), 0)

    def seek(self, topic: str, partition: int, offset: int) -> None:
        """Explicitly reposition the consumer on a partition it owns."""
        with self._lock:
            if (topic, partition) not in self._assignment:
                raise ValueError(f"{topic}-{partition} is not assigned to this consumer")
            self._positions[(topic, partition)] = max(0, offset)

    def seek_to_beginning(self) -> None:
        with self._lock:
            for topic, partition in self._assignment:
                begin = self._cluster.beginning_offsets(topic)[partition]
                self._positions[(topic, partition)] = begin

    def seek_to_end(self) -> None:
        with self._lock:
            for topic, partition in self._assignment:
                end = self._cluster.end_offsets(topic)[partition]
                self._positions[(topic, partition)] = end

    # ------------------------------------------------------------------ #
    # Poll / commit
    # ------------------------------------------------------------------ #
    def poll(
        self, max_records: Optional[int] = None
    ) -> Dict[TopicPartition, List[StoredRecord]]:
        """Fetch available records from assigned partitions, round-robin.

        Each poll starts from a different partition of the assignment (the
        cursor advances by one per poll), so a hot early partition cannot
        starve later ones when ``max_poll_records`` is reached.  Advances
        in-memory positions; offsets become durable only when committed
        (automatically or via :meth:`commit`).
        """
        self._ensure_open()
        self._maybe_rejoin()
        limit = max_records if max_records is not None else self.config.max_poll_records
        start = time.perf_counter()
        out: Dict[TopicPartition, List[StoredRecord]] = {}
        with self._lock:
            assignment = list(self._assignment)
            if assignment:
                pivot = self._poll_cursor % len(assignment)
                assignment = assignment[pivot:] + assignment[:pivot]
                self._poll_cursor = pivot + 1
        remaining = limit
        for topic, partition in assignment:
            if remaining <= 0:
                break
            position = self.position(topic, partition)
            records = self._cluster.fetch(
                topic,
                partition,
                position,
                max_records=remaining,
                max_bytes=self.config.receive_buffer_bytes,
                principal=self._principal,
            )
            if records:
                out[(topic, partition)] = records
                with self._lock:
                    self._positions[(topic, partition)] = records[-1].offset + 1
                remaining -= len(records)
                self.metrics.records_consumed += len(records)
                self.metrics.bytes_consumed += sum(r.size_bytes() for r in records)
        self.metrics.polls += 1
        self.metrics.poll_latencies.append(time.perf_counter() - start)
        if self.config.enable_auto_commit:
            now = time.time()
            if now - self._last_auto_commit >= self.config.auto_commit_interval_seconds:
                self.commit()
                self._last_auto_commit = now
        return out

    def poll_flat(self, max_records: Optional[int] = None) -> List[StoredRecord]:
        """Like :meth:`poll` but flattened into a single offset-ordered list."""
        batches = self.poll(max_records=max_records)
        out: List[StoredRecord] = []
        for records in batches.values():
            out.extend(records)
        return out

    def commit(self, offsets: Optional[Dict[TopicPartition, int]] = None) -> None:
        """Commit current positions (or explicit ``offsets``) for the group."""
        self._ensure_open()
        with self._lock:
            to_commit = dict(offsets) if offsets is not None else dict(self._positions)
        try:
            self._cluster.groups.validate_generation(
                self.config.group_id, self._member_id, self._generation
            )
        except IllegalGenerationError as exc:
            raise CommitFailedError(str(exc)) from exc
        for (topic, partition), offset in to_commit.items():
            self._cluster.offsets.commit(
                self.config.group_id, topic, partition, offset
            )
        self.metrics.commits += 1

    def committed(self, topic: str, partition: int) -> Optional[int]:
        return self._cluster.offsets.committed(self.config.group_id, topic, partition)

    def lag(self) -> int:
        """Total lag of this consumer's assignment (for monitoring)."""
        total = 0
        for topic, partition in self.assignment():
            end = self._cluster.end_offsets(topic)[partition]
            total += max(0, end - self.position(topic, partition))
        return total

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _maybe_rejoin(self) -> None:
        """Refresh the assignment if the group has rebalanced underneath us."""
        current = self._cluster.groups.generation(self.config.group_id)
        if current != self._generation:
            assignment = self._cluster.groups.assignment(
                self.config.group_id, self._member_id
            )
            with self._lock:
                self._generation = current
                self._assignment = list(assignment)
                # Forget positions of revoked partitions: committing them
                # after the rebalance would clobber the new owner's progress.
                owned = set(self._assignment)
                for tp in [tp for tp in self._positions if tp not in owned]:
                    del self._positions[tp]
                for tp in self._assignment:
                    if tp not in self._positions:
                        committed = self._cluster.offsets.committed(
                            self.config.group_id, tp[0], tp[1]
                        )
                        if committed is not None:
                            self._positions[tp] = committed
                        elif self.config.auto_offset_reset == "latest":
                            self._positions[tp] = self._cluster.end_offsets(tp[0])[tp[1]]
                        else:
                            self._positions[tp] = self._cluster.beginning_offsets(tp[0])[tp[1]]

    def close(self) -> None:
        """Commit (if auto-commit) and leave the group."""
        if self._closed:
            return
        if self.config.enable_auto_commit:
            try:
                self.commit()
            except CommitFailedError:
                pass
        self._cluster.groups.leave(
            self.config.group_id, self._member_id, self._all_partitions()
        )
        self._closed = True

    def __enter__(self) -> "FabricConsumer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("consumer is closed")
