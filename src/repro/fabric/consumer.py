"""Consumer client for the event fabric.

Supports the consumption modes the paper describes (Section IV-F):
consume from the earliest offset, the latest offset, or after a given
timestamp; periodic automatic offset commits (at-least-once delivery) or
manual commits; and consumer groups so that several consumers — or many
instances of a trigger function — share a topic's partitions.

Polling rides the cluster's fetch-session data plane: the whole
assignment is served in one :meth:`FabricCluster.fetch_many` pass per
poll (one authorization check per topic, leader resolutions cached on the
session), and with ``prefetch=True`` a background thread pipelines the
next fetch while the application processes the current batch.

Group membership follows the coordinator's incremental *cooperative*
rebalance protocol (see :mod:`repro.fabric.group`): each poll adopts any
new generation — keeping positions and prefetch buffers for retained
partitions, committing and releasing only the revoked delta — and sends
a clock-paced liveness heartbeat.  ``on_partitions_revoked`` /
``on_partitions_assigned`` listeners observe the deltas.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.common.clock import Clock
from repro.common.sync import create_rlock
from repro.fabric.cluster import FabricCluster, FetchRequest, FetchSession
from repro.fabric.errors import CommitFailedError, FabricError, IllegalGenerationError
from repro.fabric.group import TopicPartition
from repro.fabric.record import PackedView, StoredRecord

#: Rebalance listener signature: called with the affected partitions.
RebalanceListener = Callable[[List[TopicPartition]], None]

#: Latency samples retained per client; long-running consumers/producers
#: previously accumulated one float per poll forever.
METRICS_WINDOW = 2048


@dataclass(frozen=True)
class ConsumerConfig:
    """Client-side consumer configuration.

    ``receive_buffer_bytes`` defaults to the 2 MB the paper's evaluation
    uses (Section V-B) and caps each poll's fetch session as a whole;
    ``auto_offset_reset`` selects earliest/latest behaviour when the group
    has no committed offset; with ``"timestamp"``, ``start_timestamp`` is
    matched against the broker-assigned **append time** (which the log
    keeps monotone), not the client-supplied record timestamp — see
    :meth:`PartitionLog.offset_for_timestamp`.  ``prefetch`` enables the
    background prefetch
    thread: while the application processes one batch, the next fetch is
    already in flight.  ``heartbeat_interval_seconds`` paces the liveness
    heartbeats each poll sends to the group coordinator (driven by the
    consumer's injectable clock); ``session_timeout_seconds`` is how long
    the coordinator waits for one before evicting this member (``None``
    uses the coordinator default).
    """

    group_id: str = "default-group"
    client_id: str = "octopus-consumer"
    auto_offset_reset: str = "earliest"
    enable_auto_commit: bool = True
    auto_commit_interval_seconds: float = 5.0
    max_poll_records: int = 500
    receive_buffer_bytes: int = 2 * 1024 * 1024
    start_timestamp: Optional[float] = None
    prefetch: bool = False
    heartbeat_interval_seconds: float = 3.0
    session_timeout_seconds: Optional[float] = None
    #: Verify the CRC32 of every sealed batch a poll returns (Kafka's
    #: ``check.crcs``) before records are handed to the application.
    #: Cheap — one crc32 pass per *batch*, memoized per chunk object — and
    #: the last line of defence in front of the application; disable only
    #: for benchmarking.
    check_crcs: bool = True

    def validate(self) -> None:
        if self.auto_offset_reset not in ("earliest", "latest", "timestamp"):
            raise ValueError(
                "auto_offset_reset must be 'earliest', 'latest' or 'timestamp'"
            )
        if self.auto_offset_reset == "timestamp" and self.start_timestamp is None:
            raise ValueError("start_timestamp required when auto_offset_reset='timestamp'")
        if self.max_poll_records <= 0:
            raise ValueError("max_poll_records must be > 0")
        if self.heartbeat_interval_seconds <= 0:
            raise ValueError("heartbeat_interval_seconds must be > 0")
        if (
            self.session_timeout_seconds is not None
            and self.session_timeout_seconds <= self.heartbeat_interval_seconds
        ):
            raise ValueError(
                "session_timeout_seconds must exceed heartbeat_interval_seconds"
            )


@dataclass
class ConsumerMetrics:
    """Counters aggregated by the benchmarking operator."""

    records_consumed: int = 0
    bytes_consumed: int = 0
    polls: int = 0
    commits: int = 0
    prefetch_hits: int = 0
    rebalances: int = 0
    partitions_revoked: int = 0
    heartbeats: int = 0
    poll_latencies: Deque[float] = field(
        default_factory=lambda: deque(maxlen=METRICS_WINDOW)
    )


class FabricConsumer:
    """Reads events from the fabric as part of a consumer group."""

    def __init__(
        self,
        cluster: FabricCluster,
        topics: Sequence[str],
        config: Optional[ConsumerConfig] = None,
        *,
        principal: Optional[str] = None,
        clock: Optional[Clock] = None,
        on_partitions_revoked: Optional[RebalanceListener] = None,
        on_partitions_assigned: Optional[RebalanceListener] = None,
    ) -> None:
        self.config = config or ConsumerConfig()
        self.config.validate()
        # config.validate() can only compare against an *explicit* session
        # timeout; when deferring to the coordinator's default, the same
        # sanity check must hold or a healthy-but-slow heartbeater would
        # be evicted and rejoin forever.
        effective_timeout = (
            self.config.session_timeout_seconds
            if self.config.session_timeout_seconds is not None
            else cluster.groups.session_timeout
        )
        if self.config.heartbeat_interval_seconds >= effective_timeout:
            raise ValueError(
                f"heartbeat_interval_seconds ({self.config.heartbeat_interval_seconds}) "
                f"must be below the effective session timeout ({effective_timeout})"
            )
        self._cluster = cluster
        self._principal = principal
        # Default to the coordinator's clock, not a private SystemClock:
        # heartbeat pacing and the coordinator's session-expiry sweeps must
        # share one time base, or a cluster driven by a ManualClock would
        # evict consumers that poll diligently but heartbeat on wall time.
        self._clock: Clock = clock or cluster.groups.clock
        self._topics = list(topics)
        self._lock = create_rlock("FabricConsumer")
        self._positions: Dict[TopicPartition, int] = {}  #: guarded_by _lock
        self._poll_cursor = 0  #: guarded_by _lock
        self._closed = False
        self._last_auto_commit = self._clock.now()
        self._last_heartbeat = self._clock.now()
        # Rebalance listeners, called during cooperative rebalances:
        # ``on_partitions_revoked`` right before revoked partitions are
        # released (positions still intact, so applications can flush),
        # ``on_partitions_assigned`` right after new partitions arrive.
        self._on_partitions_revoked = on_partitions_revoked
        self._on_partitions_assigned = on_partitions_assigned
        self.metrics = ConsumerMetrics()
        self._session: FetchSession = cluster.fetch_session(principal=principal)
        # Prefetch machinery (only materialised when config.prefetch).
        self._prefetched: Dict[TopicPartition, List[StoredRecord]] = {}  #: guarded_by _lock
        self._prefetch_wakeup = threading.Event()
        self._prefetch_stop = threading.Event()
        self._prefetch_thread: Optional[threading.Thread] = None
        self._prefetch_session: Optional[FetchSession] = None
        self._metadata_epoch = cluster.metadata_epoch
        self._assignment: List[TopicPartition] = []  #: guarded_by _lock
        self._member_id: str = ""
        self._generation = -1
        self._join_group()
        self._maybe_rejoin()
        if self.config.prefetch:
            self._prefetch_session = cluster.fetch_session(principal=principal)
            self._prefetch_thread = threading.Thread(
                target=self._prefetch_loop,
                name=f"prefetch-{self._member_id}",
                daemon=True,
            )
            self._prefetch_thread.start()

    # ------------------------------------------------------------------ #
    # Assignment / positions
    # ------------------------------------------------------------------ #
    @property
    def member_id(self) -> str:
        return self._member_id

    @property
    def generation(self) -> int:
        return self._generation

    def assignment(self) -> List[TopicPartition]:
        with self._lock:
            return list(self._assignment)

    def _all_partitions(self) -> List[TopicPartition]:
        partitions: List[TopicPartition] = []
        for topic in self._topics:
            partitions.extend(self._cluster.partitions_for(topic))
        return partitions

    def reset_position(self, topic: str, partition: int) -> int:
        """Initial fetch position: the committed offset or the reset policy.

        Public because lag accounting (e.g. an event-source mapping sizing
        backlog on partitions no poller currently owns) needs the same
        answer the consumer itself would seed from.
        """
        committed = self._cluster.offsets.committed(self.config.group_id, topic, partition)
        if committed is not None:
            return committed
        if self.config.auto_offset_reset == "latest":
            return self._cluster.end_offset(topic, partition)
        if self.config.auto_offset_reset == "timestamp":
            log = self._cluster.topic(topic).partition(partition)
            offset = log.offset_for_timestamp(self.config.start_timestamp or 0.0)
            return offset if offset is not None else log.log_end_offset
        return self._cluster.beginning_offset(topic, partition)  # earliest

    def position(self, topic: str, partition: int) -> int:
        with self._lock:
            return self._positions.get((topic, partition), 0)

    def seek(self, topic: str, partition: int, offset: int) -> None:
        """Explicitly reposition the consumer on a partition it owns."""
        with self._lock:
            if (topic, partition) not in self._assignment:
                raise ValueError(f"{topic}-{partition} is not assigned to this consumer")
            self._positions[(topic, partition)] = max(0, offset)
            self._prefetched.pop((topic, partition), None)

    def seek_to_beginning(self) -> None:
        with self._lock:
            for topic, partition in self._assignment:
                self._positions[(topic, partition)] = self._cluster.beginning_offset(
                    topic, partition
                )
            self._prefetched.clear()

    def seek_to_end(self) -> None:
        with self._lock:
            for topic, partition in self._assignment:
                self._positions[(topic, partition)] = self._cluster.end_offset(
                    topic, partition
                )
            self._prefetched.clear()

    # ------------------------------------------------------------------ #
    # Poll / commit
    # ------------------------------------------------------------------ #
    def poll(
        self, max_records: Optional[int] = None
    ) -> Dict[TopicPartition, List[StoredRecord]]:
        """Fetch available records from assigned partitions, round-robin.

        Each poll starts from a different partition of the assignment (the
        cursor advances by one per poll), so a hot early partition cannot
        starve later ones when ``max_poll_records`` is reached.  The whole
        rotated assignment is served by one fetch-session pass, with
        ``max_poll_records``/``receive_buffer_bytes`` charged across the
        session.  With ``prefetch=True``, records the background thread
        already fetched are delivered first and the next prefetch is kicked
        off before returning.  Advances in-memory positions; offsets become
        durable only when committed (automatically or via :meth:`commit`).
        """
        self._ensure_open()
        self._maybe_rejoin()
        self._maybe_heartbeat()
        limit = max_records if max_records is not None else self.config.max_poll_records
        start = time.perf_counter()
        out: Dict[TopicPartition, List[StoredRecord]] = {}
        pivot = 0
        with self._lock:
            assignment = list(self._assignment)
            if assignment:
                pivot = self._poll_cursor % len(assignment)
                assignment = assignment[pivot:] + assignment[:pivot]
                self._poll_cursor = pivot + 1
        remaining = limit
        budget = self.config.receive_buffer_bytes
        if self._prefetch_thread is not None and remaining > 0:
            remaining, budget = self._drain_prefetched(assignment, remaining, budget, out)
        # Drained prefetch records were charged against the same
        # record/byte budget the synchronous fetch gets, so a poll never
        # exceeds ``receive_buffer_bytes`` by more than the one
        # make-progress record a plain fetch may also grant.  Any leftover
        # buffer is protected from duplicate delivery by the
        # offset-matches-position check on the next drain.
        if remaining > 0 and budget > 0 and assignment:
            # Snapshot under the lock: the prefetch and rebalance threads
            # mutate ``_positions`` concurrently, and the session iterates
            # the mapping for the whole (lock-free) fetch.
            with self._lock:
                positions = dict(self._positions)
            try:
                batches = self._session.fetch_assignment(
                    positions,
                    start=pivot,
                    max_records=remaining,
                    max_bytes=budget,
                )
            except Exception:
                # The drain already advanced positions for records the
                # application will now never see (poll raises).  Roll them
                # back into the prefetch buffer so the next successful poll
                # delivers them — at-least-once must survive a failed fetch.
                with self._lock:
                    for tp, records in out.items():
                        if self._positions.get(tp) == records[-1].offset + 1:
                            self._prefetched[tp] = records + self._prefetched.get(tp, [])
                            self._positions[tp] = records[0].offset
                            self.metrics.prefetch_hits -= len(records)
                raise
            with self._lock:
                for tp, records in batches.items():
                    existing = out.get(tp)
                    if existing:
                        existing.extend(records)
                    else:
                        out[tp] = records
                    self._positions[tp] = records[-1].offset + 1
        check_crcs = self.config.check_crcs
        for records in out.values():
            self.metrics.records_consumed += len(records)
            # Packed fetch views know their byte total from the batch size
            # column — don't force a per-record decode just for metrics.
            if isinstance(records, PackedView):
                if check_crcs:
                    records.verify_crcs()
                self.metrics.bytes_consumed += records.size_bytes()
            else:
                self.metrics.bytes_consumed += sum(r.size_bytes() for r in records)
        self.metrics.polls += 1
        self.metrics.poll_latencies.append(time.perf_counter() - start)
        if self.config.enable_auto_commit:
            now = self._clock.now()
            if now - self._last_auto_commit >= self.config.auto_commit_interval_seconds:
                self.commit()
                self._last_auto_commit = now
        if self._prefetch_thread is not None and not self._closed:
            self._prefetch_wakeup.set()
        return out

    def _drain_prefetched(
        self,
        assignment: List[TopicPartition],
        remaining: int,
        budget: int,
        out: Dict[TopicPartition, List[StoredRecord]],
    ) -> tuple:
        """Deliver buffered prefetch results that still match our positions.

        Charges both the record and the byte budget and returns what is
        left of each for the synchronous fetch.  Slightly stricter than
        the broker-side charging it mirrors (see
        ``FabricCluster._assignment_fetch``): the make-progress record is
        granted once per poll (``take or out``), not once per partition,
        so drain + sync fetch together stay within one overshoot record.
        """
        with self._lock:
            for tp in assignment:
                if remaining <= 0 or budget <= 0:
                    break
                buffered = self._prefetched.get(tp)
                if not buffered:
                    continue
                if buffered[0].offset != self._positions.get(tp):
                    # A seek moved the position after the prefetch: stale.
                    del self._prefetched[tp]
                    continue
                take: List[StoredRecord] = []
                for record in buffered:
                    if len(take) >= remaining:
                        break
                    size = record.size_bytes()
                    if (take or out) and size > budget:
                        break
                    take.append(record)
                    budget -= size
                if not take:
                    break  # byte budget exhausted mid-assignment
                out[tp] = take
                if len(take) == len(buffered):
                    del self._prefetched[tp]
                else:
                    self._prefetched[tp] = buffered[len(take):]
                self._positions[tp] = take[-1].offset + 1
                remaining -= len(take)
                self.metrics.prefetch_hits += len(take)
        return remaining, budget

    def poll_flat(self, max_records: Optional[int] = None) -> List[StoredRecord]:
        """Like :meth:`poll` but flattened into a single offset-ordered list."""
        batches = self.poll(max_records=max_records)
        out: List[StoredRecord] = []
        for records in batches.values():
            out.extend(records)
        return out

    def commit(self, offsets: Optional[Dict[TopicPartition, int]] = None) -> None:
        """Commit current positions (or explicit ``offsets``) for the group.

        The whole assignment travels through
        :meth:`FabricCluster.commit_group`: one generation validation and
        one offset-store lock acquisition per commit, not per partition.
        """
        self._ensure_open()
        with self._lock:
            to_commit = dict(offsets) if offsets is not None else dict(self._positions)
        try:
            self._cluster.commit_group(
                self.config.group_id,
                to_commit,
                generation=self._generation,
                member_id=self._member_id,
            )
        except IllegalGenerationError as exc:
            raise CommitFailedError(str(exc)) from exc
        self.metrics.commits += 1

    def committed(self, topic: str, partition: int) -> Optional[int]:
        return self._cluster.offsets.committed(self.config.group_id, topic, partition)

    def lag(self) -> int:
        """Total lag of this consumer's assignment (for monitoring)."""
        total = 0
        for topic, partition in self.assignment():
            end = self._cluster.end_offset(topic, partition)
            total += max(0, end - self.position(topic, partition))
        return total

    # ------------------------------------------------------------------ #
    # Background prefetch
    # ------------------------------------------------------------------ #
    def _prefetch_loop(self) -> None:
        while True:
            self._prefetch_wakeup.wait()
            self._prefetch_wakeup.clear()
            if self._prefetch_stop.is_set():
                return
            try:
                self._prefetch_once()
            except FabricError:
                # Transient (leader election, revoked ACL): the next poll
                # falls back to a synchronous fetch and surfaces the error
                # to the application if it persists.
                pass

    def _prefetch_once(self) -> None:
        """One background fetch pass from the current positions.

        Safe to call concurrently with :meth:`poll`: each partition's
        result is only installed if, at install time, the partition is
        still owned, its buffer is still empty and the fetched records
        start exactly at the current position.  Anything else — a seek, a
        racing drain, a cooperative revocation — discards that
        partition's fetch; fetches for partitions *retained* across a
        rebalance stay valid and are kept.
        """
        assert self._prefetch_session is not None
        with self._lock:
            if self._closed:
                return
            requests = [
                FetchRequest(topic, partition, self._positions[(topic, partition)])
                for topic, partition in self._assignment
                if (topic, partition) in self._positions
                and not self._prefetched.get((topic, partition))
            ]
        if not requests:
            return
        batches = self._prefetch_session.fetch(
            requests,
            max_records=self.config.max_poll_records,
            max_bytes=self.config.receive_buffer_bytes,
        )
        with self._lock:
            if self._closed:
                return
            # Cooperative rebalance: a partition we still own with an
            # unmoved position keeps its prefetch even if the generation
            # advanced while the fetch was in flight.
            owned = set(self._assignment)
            for tp, records in batches.items():
                if tp not in owned or self._prefetched.get(tp):
                    continue
                if records[0].offset != self._positions.get(tp):
                    continue  # a seek raced the fetch
                self._prefetched[tp] = list(records)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _join_group(self) -> tuple[int, List[TopicPartition]]:
        """Join (or rejoin after eviction) the group and adopt + ack.

        One definition of the join protocol — member registration, adoption
        of the returned assignment, and the acknowledging ``sync`` (a new
        member has nothing to revoke, and the ack may settle a cooperative
        rebalance already in flight) — shared by construction and the
        eviction-recovery path.  Returns the post-ack snapshot.
        """
        groups = self._cluster.groups
        self._member_id, generation, assignment = groups.join(
            self.config.group_id,
            self.config.client_id,
            self._topics,
            self._all_partitions(),
            session_timeout=self.config.session_timeout_seconds,
        )
        self._adopt(generation, assignment)
        return groups.sync(self.config.group_id, self._member_id, generation)

    def set_rebalance_listeners(
        self,
        *,
        on_partitions_revoked: Optional[RebalanceListener] = None,
        on_partitions_assigned: Optional[RebalanceListener] = None,
    ) -> None:
        """Install or replace the rebalance listeners after construction.

        Listeners are read at call time, so this affects every subsequent
        adoption; it does not replay the initial assignment — callers
        attaching late should handle :meth:`assignment` themselves.
        """
        self._on_partitions_revoked = on_partitions_revoked
        self._on_partitions_assigned = on_partitions_assigned

    def _maybe_heartbeat(self) -> None:
        """Send a liveness heartbeat when the clock-paced interval elapses.

        Driven by the injectable clock, so tests advance a ``ManualClock``
        instead of sleeping.  A stale-generation response is not an error
        here: the rebalance it signals is adopted by ``_maybe_rejoin`` on
        this or the next poll.
        """
        now = self._clock.now()
        if now - self._last_heartbeat < self.config.heartbeat_interval_seconds:
            return
        self._last_heartbeat = now
        try:
            self._cluster.groups.heartbeat(
                self.config.group_id, self._member_id, self._generation
            )
            self.metrics.heartbeats += 1
        except IllegalGenerationError:
            pass

    def _maybe_rejoin(self) -> None:
        """Follow the group through a cooperative rebalance, if one is on.

        Each iteration adopts the coordinator's current generation — keeping
        retained partitions' positions and prefetch buffers, releasing only
        the revoked delta — then acknowledges it via ``sync``.  The ack can
        itself promote the pending target assignment (if we were the last
        member the coordinator was waiting on), in which case the loop
        picks up the assign-phase generation immediately instead of on the
        next poll.  An evicted member (missed heartbeats while the
        application was busy) rejoins as a fresh member.
        """
        groups = self._cluster.groups
        group_id = self.config.group_id
        # Metadata moved (partition growth, failover)? Refresh the group's
        # partition set so new partitions get assigned — the in-process
        # mirror of Kafka's metadata-refresh-triggered rebalance.
        epoch = self._cluster.metadata_epoch
        if epoch != self._metadata_epoch:
            self._metadata_epoch = epoch
            groups.update_partitions(group_id, self._all_partitions())
        # Generation and assignment must come from one atomic snapshot
        # (and sync returns the next one the same way): mixing generation
        # G with G+1's assignment would void the commit-on-revoke.
        current, assignment = groups.current_assignment(group_id, self._member_id)
        while current != self._generation:
            self._adopt(current, assignment)
            try:
                current, assignment = groups.sync(group_id, self._member_id, current)
            except IllegalGenerationError:
                # Evicted: everything was already released by the adopt
                # above (our assignment read back empty), so rejoin.
                current, assignment = self._join_group()

    def _adopt(self, generation: int, assignment: Sequence[TopicPartition]) -> None:
        """Install one generation's assignment, cooperatively.

        Retained partitions keep their fetch positions and prefetch
        buffers untouched — they never stop being fetchable.  Revoked
        partitions are committed first (when auto-commit is on; manual
        committers keep at-least-once by letting the new owner re-read),
        then handed to the revocation listener, then released.  Added
        partitions start from the committed offset or the reset policy.
        """
        with self._lock:
            old = self._assignment
            new = list(assignment)
            old_set, new_set = set(old), set(new)
            revoked = [tp for tp in old if tp not in new_set]
            added = [tp for tp in new if tp not in old_set]
            self._generation = generation
            if revoked:
                if self.config.enable_auto_commit:
                    to_commit = {
                        tp: self._positions[tp] for tp in revoked if tp in self._positions
                    }
                    if to_commit:
                        try:
                            # commit-on-revoke rides the batched
                            # commit_many path under the generation we
                            # just adopted (we own these partitions until
                            # this very moment).
                            self._cluster.commit_group(
                                self.config.group_id,
                                to_commit,
                                generation=generation,
                                member_id=self._member_id,
                            )
                            self.metrics.commits += 1
                        except (CommitFailedError, IllegalGenerationError):
                            pass  # best effort; the new owner re-reads
                if self._on_partitions_revoked is not None:
                    try:
                        self._on_partitions_revoked(list(revoked))
                    except Exception:
                        pass  # listeners must not wedge the rebalance
                for tp in revoked:
                    self._positions.pop(tp, None)
                    self._prefetched.pop(tp, None)
                self.metrics.partitions_revoked += len(revoked)
            for tp in added:
                if tp not in self._positions:
                    self._positions[tp] = self.reset_position(tp[0], tp[1])
            self._assignment = new
            self._session.set_assignment(new)
            if revoked or added:
                self.metrics.rebalances += 1
            if added and self._on_partitions_assigned is not None:
                try:
                    self._on_partitions_assigned(list(added))
                except Exception:
                    pass

    def close(self) -> None:
        """Stop prefetching, commit (if auto-commit) and leave the group."""
        if self._closed:
            return
        if self._prefetch_thread is not None:
            self._prefetch_stop.set()
            self._prefetch_wakeup.set()
            self._prefetch_thread.join(timeout=5.0)
        if self.config.enable_auto_commit:
            try:
                self.commit()
            except CommitFailedError:
                pass
        # No partition list: a topic lookup could raise for a topic deleted
        # while this consumer was open, leaking the membership — the
        # coordinator falls back to its stored partition snapshot.
        self._cluster.groups.leave(self.config.group_id, self._member_id)
        self._closed = True

    def __enter__(self) -> "FabricConsumer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("consumer is closed")
