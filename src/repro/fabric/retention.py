"""Retention and compaction policies.

The paper's default is seven-day time-based retention (Section IV-F);
users can adjust retention and enable compaction through the Octopus Web
Service.  The :class:`RetentionEnforcer` walks topic partitions and applies
whichever policy the topic is configured with.

Every policy here rides the segmented storage layer
(:mod:`repro.fabric.partition`): cutoffs are found from per-segment
bounds — cached byte sizes, min/max append times — and
``truncate_before`` drops whole sealed segments by pointer, so a
retention run is O(segments + one boundary-segment scan) instead of the
old O(retained records) walk over a full ``read_all()`` copy.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.common.clock import SystemClock
from repro.fabric.partition import PartitionLog
from repro.fabric.topic import Topic


def enforce_time_retention(
    log: PartitionLog, retention_seconds: float, now: Optional[float] = None
) -> int:
    """Delete records older than ``retention_seconds``; return count removed.

    The cutoff offset comes from :meth:`PartitionLog.offset_for_timestamp`,
    which binary-searches per-segment append-time bounds and scans only the
    boundary segment — no full-log copy is taken.
    """
    now = now if now is not None else SystemClock().now()
    keep_from = log.offset_for_timestamp(now - retention_seconds)
    if keep_from is None:
        # Everything is older than the cutoff.
        return log.truncate_before(log.log_end_offset)
    return log.truncate_before(keep_from)


def enforce_size_retention(log: PartitionLog, retention_bytes: int) -> int:
    """Delete oldest records until the partition is within ``retention_bytes``.

    The cutoff comes from cached per-segment byte counters
    (:meth:`PartitionLog.size_retention_cutoff`); only the boundary segment
    is scanned record by record, keeping the record-granular semantics.
    """
    cutoff = log.size_retention_cutoff(retention_bytes)
    if cutoff <= log.log_start_offset:
        return 0
    return log.truncate_before(cutoff)


def compact(log: PartitionLog) -> int:
    """Log compaction: keep only the latest record for each key.

    Records without a key are always retained (they carry no compaction
    identity).  Delegates to :meth:`PartitionLog.compact`, which rewrites
    segment-by-segment *under the log's write lock* — records appended
    concurrently with a compaction pass can no longer be silently dropped
    (the old snapshot/filter/``replace_records`` sequence held no lock
    across its steps).  Returns the number of records removed.
    """
    return log.compact()


class RetentionEnforcer:
    """Applies a topic's cleanup policy across all of its partitions."""

    def __init__(self, now_fn: Optional[Callable[[], float]] = None) -> None:
        self._now_fn = now_fn if now_fn is not None else SystemClock().now

    def enforce(self, topic: Topic) -> Dict[int, int]:
        """Run retention/compaction on ``topic``; return removed counts per partition."""
        removed: Dict[int, int] = {}
        config = topic.config
        for index, log in topic.partitions().items():
            count = 0
            if config.cleanup_policy == "compact":
                count += compact(log)
            else:
                if config.retention_seconds is not None:
                    count += enforce_time_retention(
                        log, config.retention_seconds, now=self._now_fn()
                    )
                if config.retention_bytes is not None:
                    count += enforce_size_retention(log, config.retention_bytes)
            removed[index] = count
        return removed
