"""Retention and compaction policies.

The paper's default is seven-day time-based retention (Section IV-F);
users can adjust retention and enable compaction through the Octopus Web
Service.  The :class:`RetentionEnforcer` walks topic partitions and applies
whichever policy the topic is configured with.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.fabric.partition import PartitionLog
from repro.fabric.record import StoredRecord
from repro.fabric.topic import Topic


def enforce_time_retention(
    log: PartitionLog, retention_seconds: float, now: Optional[float] = None
) -> int:
    """Delete records older than ``retention_seconds``; return count removed."""
    now = now if now is not None else time.time()
    cutoff = now - retention_seconds
    keep_from: Optional[int] = None
    for stored in log.read_all():
        if stored.append_time >= cutoff:
            keep_from = stored.offset
            break
    if keep_from is None:
        # Everything is older than the cutoff.
        return log.truncate_before(log.log_end_offset)
    return log.truncate_before(keep_from)


def enforce_size_retention(log: PartitionLog, retention_bytes: int) -> int:
    """Delete oldest records until the partition is within ``retention_bytes``."""
    removed = 0
    records = list(log.read_all())
    total = sum(r.size_bytes() for r in records)
    index = 0
    while total > retention_bytes and index < len(records):
        total -= records[index].size_bytes()
        index += 1
    if index > 0:
        removed = log.truncate_before(records[index - 1].offset + 1)
    return removed


def compact(log: PartitionLog) -> int:
    """Log compaction: keep only the latest record for each key.

    Records without a key are always retained (they carry no compaction
    identity).  Returns the number of records removed.
    """
    records = list(log.read_all())
    latest_for_key: Dict[str, int] = {}
    for stored in records:
        if stored.key is not None:
            latest_for_key[str(stored.key)] = stored.offset
    kept: List[StoredRecord] = [
        stored
        for stored in records
        if stored.key is None or latest_for_key[str(stored.key)] == stored.offset
    ]
    removed = len(records) - len(kept)
    if removed:
        log.replace_records(kept)
    return removed


class RetentionEnforcer:
    """Applies a topic's cleanup policy across all of its partitions."""

    def __init__(self, now_fn=time.time) -> None:
        self._now_fn = now_fn

    def enforce(self, topic: Topic) -> Dict[int, int]:
        """Run retention/compaction on ``topic``; return removed counts per partition."""
        removed: Dict[int, int] = {}
        config = topic.config
        for index, log in topic.partitions().items():
            count = 0
            if config.cleanup_policy == "compact":
                count += compact(log)
            else:
                if config.retention_seconds is not None:
                    count += enforce_time_retention(
                        log, config.retention_seconds, now=self._now_fn()
                    )
                if config.retention_bytes is not None:
                    count += enforce_size_retention(log, config.retention_bytes)
            removed[index] = count
        return removed
