"""Deterministic chaos: seeded fault plans driven by the manual clock.

The fabric's failure handling — fenced failover (leader epochs), the high
watermark, retry policies, replica recovery — is only trustworthy if it can
be *exercised* reproducibly.  This module provides that harness:

* :class:`FaultEvent` / :class:`FaultPlan` — a declarative, seed-generated
  schedule of faults (broker crashes and restores, replication-link drops /
  duplicates, chunk-ingress corruption, slow-disk stalls), ordered by
  injection time on the cluster's clock.
* :class:`FaultInjector` — applies a plan against a live
  :class:`~repro.fabric.cluster.FabricCluster` through the chaos seams
  (:meth:`Broker.set_fault_hook`, :meth:`Broker.set_append_listener`,
  :meth:`ReplicationManager.set_link_filter`,
  :meth:`FabricAdmin.fail_broker`/:meth:`~FabricAdmin.restore_broker`).
  ``step()`` is called after each clock advance and applies every event
  whose time has come.
* :func:`run_chaos_scenario` — the end-to-end determinism gate: builds a
  :class:`~repro.common.clock.ManualClock`-driven cluster, runs seeded
  traffic under the plan, heals, then checks the safety invariants (no
  committed read above the high watermark, exactly one accepting leader
  per epoch, replicas converge after heal, stale epochs stay fenced) and
  digests the end state.  Same seed → same schedule → same digest, twice.

Everything here is pure stdlib and everything random flows from one
``random.Random(seed)`` — there is no wall-clock or OS entropy anywhere on
the path, which is what lets CI run the scenario twice and ``diff`` the
JSON.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.clock import ManualClock
from repro.fabric.cluster import FabricCluster
from repro.fabric.errors import (
    CorruptBatchError,
    FabricError,
    FencedLeaderError,
)
from repro.fabric.record import EventRecord, PackedRecordBatch
from repro.fabric.topic import TopicConfig

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "run_chaos_scenario",
    "main",
]

#: Every fault kind a plan may schedule.  ``broker_crash``/``broker_restore``
#: toggle broker liveness through the admin plane (with leader re-election);
#: ``link_drop``/``link_heal``/``link_duplicate`` shape the directed
#: replication link leader→follower; ``chunk_corruption`` makes the next
#: replicate ingress on a broker fail its CRC check; ``slow_disk``/
#: ``slow_disk_clear`` add or remove a per-broker I/O stall.
FAULT_KINDS = (
    "broker_crash",
    "broker_restore",
    "link_drop",
    "link_heal",
    "link_duplicate",
    "chunk_corruption",
    "slow_disk",
    "slow_disk_clear",
)

_LINK_KINDS = ("link_drop", "link_heal", "link_duplicate")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: *at* clock-seconds, do *kind* to *broker_id*.

    ``peer_id`` names the follower end of a link fault (the link is the
    directed replication edge ``broker_id → peer_id``); ``delay_seconds``
    is the stall length for ``slow_disk``.  Fields that a kind does not
    use stay ``None``/``0.0`` so every event serializes uniformly.
    """

    at: float
    kind: str
    broker_id: int
    peer_id: Optional[int] = None
    topic: Optional[str] = None
    partition: Optional[int] = None
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind in _LINK_KINDS and self.peer_id is None:
            raise ValueError(f"{self.kind} requires a peer_id")
        if self.at < 0:
            raise ValueError("fault time must be >= 0")

    def describe(self) -> dict:
        return {
            "at": self.at,
            "kind": self.kind,
            "broker_id": self.broker_id,
            "peer_id": self.peer_id,
            "topic": self.topic,
            "partition": self.partition,
            "delay_seconds": self.delay_seconds,
        }


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the fault schedule that seed generated, time-ordered."""

    seed: int
    events: Tuple[FaultEvent, ...]

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: e.at))
        object.__setattr__(self, "events", ordered)

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        brokers: Sequence[int],
        topic: str,
        partitions: int,
        horizon: float = 8.0,
        events: int = 14,
    ) -> "FaultPlan":
        """Draw ``events`` faults from ``random.Random(seed)``.

        Generation is stateless with respect to the cluster: it only picks
        *candidate* targets (e.g. it may schedule a crash for a broker that
        will already be down).  :class:`FaultInjector` resolves such events
        as deterministic no-ops, so the schedule never depends on runtime
        state and the same seed always yields the same plan.
        """
        if not brokers:
            raise ValueError("need at least one broker id")
        rng = random.Random(seed)
        broker_ids = list(brokers)
        drawn: List[FaultEvent] = []
        for _ in range(events):
            at = round(rng.uniform(0.0, horizon), 3)
            kind = rng.choice(FAULT_KINDS)
            broker_id = rng.choice(broker_ids)
            peer_id: Optional[int] = None
            partition: Optional[int] = None
            delay = 0.0
            if kind in _LINK_KINDS:
                peers = [b for b in broker_ids if b != broker_id]
                if not peers:
                    kind = "slow_disk_clear"  # degenerate 1-broker plan
                else:
                    peer_id = rng.choice(peers)
            if kind == "chunk_corruption":
                partition = rng.randrange(partitions)
            if kind == "slow_disk":
                delay = round(rng.uniform(0.05, 0.5), 3)
            drawn.append(
                FaultEvent(
                    at=at,
                    kind=kind,
                    broker_id=broker_id,
                    peer_id=peer_id,
                    topic=topic,
                    partition=partition,
                    delay_seconds=delay,
                )
            )
        return cls(seed=seed, events=tuple(drawn))

    def describe(self) -> dict:
        return {
            "seed": self.seed,
            "events": [event.describe() for event in self.events],
        }

    def digest(self) -> str:
        """Stable content hash of the schedule (CI compares this)."""
        payload = json.dumps(self.describe(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class FaultInjector:
    """Applies a :class:`FaultPlan` to a cluster as its clock advances.

    The injector owns the mutable fault state (dropped links, stall
    delays, pending corruptions) and exposes it to the fabric through the
    chaos seams.  ``step()`` fires every not-yet-applied event whose
    ``at`` is ≤ the cluster clock; events that make no sense in the
    current state (crashing an offline broker, healing an intact link)
    are recorded as skipped rather than forced, so replaying the same
    plan against the same traffic always produces the same transcript.
    """

    cluster: FabricCluster
    plan: FaultPlan
    #: ``(event, outcome)`` transcript, outcome ∈ {"applied", "skipped"}.
    applied: List[Tuple[FaultEvent, str]] = field(default_factory=list)
    #: Leader appends observed via the broker listeners:
    #: ``(broker_id, topic, partition, leader_epoch, base_offset, count)``.
    appends: List[Tuple[int, str, int, int, int, int]] = field(
        default_factory=list
    )

    def __post_init__(self) -> None:
        self._cursor = 0
        self._links: Dict[Tuple[int, int], str] = {}
        self._stalls: Dict[int, float] = {}
        self._corruptions: Dict[int, int] = {}
        self._installed = False

    # ------------------------------------------------------------------ #
    # Seam wiring
    # ------------------------------------------------------------------ #
    def install(self) -> None:
        """Hook the injector into every broker and the replication plane."""
        if self._installed:
            return
        for broker in self.cluster._brokers.values():
            broker.set_fault_hook(self._make_hook(broker.broker_id))
            broker.set_append_listener(self._on_append)
        self.cluster._replication.set_link_filter(self._link_verdict)
        self._installed = True

    def uninstall(self) -> None:
        """Remove every hook; the cluster behaves normally afterwards."""
        for broker in self.cluster._brokers.values():
            broker.set_fault_hook(None)
            broker.set_append_listener(None)
        self.cluster._replication.set_link_filter(None)
        self._installed = False

    def _make_hook(self, broker_id: int):
        def hook(op: str, topic: str, partition: int) -> None:
            stall = self._stalls.get(broker_id)
            if stall:
                # ManualClock.sleep advances the shared clock, so a stall
                # is visible to everything timed — deterministically.
                self.cluster.clock.sleep(stall)
            if op == "replicate" and self._corruptions.get(broker_id, 0) > 0:
                self._corruptions[broker_id] -= 1
                raise CorruptBatchError(
                    f"chaos: injected CRC failure at broker {broker_id} "
                    f"ingress for {topic}[{partition}]"
                )

        return hook

    def _on_append(
        self,
        broker_id: int,
        topic: str,
        partition: int,
        leader_epoch: int,
        base_offset: int,
        count: int,
    ) -> None:
        self.appends.append(
            (broker_id, topic, partition, leader_epoch, base_offset, count)
        )

    def _link_verdict(
        self, leader_id: int, follower_id: int, topic: str, partition: int
    ) -> str:
        return self._links.get((leader_id, follower_id), "ok")

    # ------------------------------------------------------------------ #
    # Schedule application
    # ------------------------------------------------------------------ #
    def step(self) -> List[Tuple[FaultEvent, str]]:
        """Apply every pending event with ``at`` ≤ the cluster clock."""
        now = self.cluster.clock.now()
        fired: List[Tuple[FaultEvent, str]] = []
        while self._cursor < len(self.plan.events):
            event = self.plan.events[self._cursor]
            if event.at > now:
                break
            self._cursor += 1
            outcome = self._apply(event)
            entry = (event, outcome)
            self.applied.append(entry)
            fired.append(entry)
        return fired

    def _apply(self, event: FaultEvent) -> str:
        admin = self.cluster.admin()
        brokers = self.cluster._brokers
        broker = brokers.get(event.broker_id)
        if broker is None:
            return "skipped"
        if event.kind == "broker_crash":
            online = [b for b in brokers.values() if b.online]
            # Never take down the last broker: a fully dark cluster has no
            # invariants left to check and the scenario would just starve.
            if not broker.online or len(online) <= 1:
                return "skipped"
            admin.fail_broker(event.broker_id)
            return "applied"
        if event.kind == "broker_restore":
            if broker.online:
                return "skipped"
            admin.restore_broker(event.broker_id)
            return "applied"
        if event.kind in _LINK_KINDS:
            link = (event.broker_id, event.peer_id)
            if event.kind == "link_heal":
                if link not in self._links:
                    return "skipped"
                del self._links[link]
            else:
                verdict = "drop" if event.kind == "link_drop" else "duplicate"
                self._links[link] = verdict
            return "applied"
        if event.kind == "chunk_corruption":
            self._corruptions[event.broker_id] = (
                self._corruptions.get(event.broker_id, 0) + 1
            )
            return "applied"
        if event.kind == "slow_disk":
            self._stalls[event.broker_id] = event.delay_seconds
            return "applied"
        if event.kind == "slow_disk_clear":
            if event.broker_id not in self._stalls:
                return "skipped"
            del self._stalls[event.broker_id]
            return "applied"
        return "skipped"

    def heal(self) -> None:
        """Clear all standing fault state and bring every broker back.

        The schedule cursor is not rewound: events already applied stay in
        the transcript, and any not-yet-due events are abandoned.
        """
        self._cursor = len(self.plan.events)
        self._links.clear()
        self._stalls.clear()
        self._corruptions.clear()
        admin = self.cluster.admin()
        for broker_id, broker in sorted(self.cluster._brokers.items()):
            if not broker.online:
                admin.restore_broker(broker_id)

    def transcript(self) -> List[dict]:
        return [
            {**event.describe(), "outcome": outcome}
            for event, outcome in self.applied
        ]


# ---------------------------------------------------------------------- #
# End-to-end scenario
# ---------------------------------------------------------------------- #
def _record_hashes(cluster: FabricCluster, topic: str, partitions: int) -> dict:
    """Per-replica content hash of every partition log (uncommitted view)."""
    hashes: Dict[str, Dict[str, str]] = {}
    for partition in range(partitions):
        per_replica: Dict[str, str] = {}
        for broker_id, broker in sorted(cluster._brokers.items()):
            if not broker.online or not broker.has_replica(topic, partition):
                continue
            log = broker.replica(topic, partition)
            digest = hashlib.sha256()
            end = log.log_end_offset
            if end:
                for stored in log.fetch(
                    0, max_records=end, max_bytes=None, isolation="uncommitted"
                ):
                    digest.update(
                        json.dumps(
                            [stored.offset, stored.record.key, stored.record.value],
                            sort_keys=True,
                        ).encode("utf-8")
                    )
            per_replica[str(broker_id)] = digest.hexdigest()
        hashes[str(partition)] = per_replica
    return hashes


def run_chaos_scenario(
    seed: int,
    *,
    brokers: int = 3,
    partitions: int = 2,
    horizon: float = 8.0,
    events: int = 14,
    ticks: int = 40,
) -> dict:
    """Run one full chaos scenario and return its deterministic report.

    The scenario: a ``ManualClock`` cluster runs seeded produce/fetch
    traffic while a :class:`FaultInjector` walks a
    :meth:`FaultPlan.generate` schedule; then the cluster heals, replicas
    re-sync, and the safety invariants are checked.  The report's
    ``state_digest`` covers the applied schedule, the final partition
    state (leaders, epochs, ISRs, high watermarks, per-replica content
    hashes) and every invariant violation — two runs with the same seed
    must return byte-identical reports.
    """
    topic = "chaos"
    clock = ManualClock()
    cluster = FabricCluster(num_brokers=brokers, name=f"chaos-{seed}", clock=clock)
    cluster.admin().create_topic(
        topic,
        TopicConfig(
            num_partitions=partitions,
            replication_factor=min(3, brokers),
            min_insync_replicas=1,
        ),
    )
    plan = FaultPlan.generate(
        seed,
        brokers=sorted(cluster._brokers),
        topic=topic,
        partitions=partitions,
        horizon=horizon,
        events=events,
    )
    injector = FaultInjector(cluster, plan)
    injector.install()

    rng = random.Random(seed ^ 0x5EED)
    violations: List[str] = []
    produced = 0
    produce_failures = 0
    fetch_failures = 0
    positions = {p: 0 for p in range(partitions)}
    dt = horizon / ticks

    for tick in range(ticks):
        clock.advance(dt)
        injector.step()
        # Seeded produce burst; faults may legitimately reject it.
        for _ in range(rng.randrange(1, 4)):
            partition = rng.randrange(partitions)
            record = EventRecord(
                value={"tick": tick, "n": rng.randrange(1_000_000)},
                key=f"k{rng.randrange(8)}",
            )
            try:
                cluster.append(topic, partition, record, acks=1)
                produced += 1
            except FabricError:
                produce_failures += 1
        # Committed reads must never surface an offset at/above the HW.
        for partition in range(partitions):
            try:
                hw = cluster.high_watermark(topic, partition)
                records = cluster.fetch(
                    topic,
                    partition,
                    positions[partition],
                    max_records=50,
                    isolation="committed",
                )
            except FabricError:
                fetch_failures += 1
                continue
            for stored in records:
                if stored.offset >= hw:
                    violations.append(
                        f"committed fetch served offset {stored.offset} "
                        f">= high watermark {hw} on {topic}[{partition}]"
                    )
            if records:
                positions[partition] = records[-1].offset + 1

    # ------------------------------------------------------------------ #
    # Heal and converge
    # ------------------------------------------------------------------ #
    injector.heal()
    replication = cluster._replication
    recoveries: List[dict] = []
    for assignment in replication.all_assignments():
        replication.replicate_from_leader(assignment.topic, assignment.partition)
        leader_log = cluster._brokers[assignment.leader].replica(
            assignment.topic, assignment.partition
        )
        for broker_id in assignment.replicas:
            if broker_id == assignment.leader:
                continue
            follower = cluster._brokers[broker_id]
            behind = (
                not follower.has_replica(assignment.topic, assignment.partition)
                or follower.replica(
                    assignment.topic, assignment.partition
                ).log_end_offset
                != leader_log.log_end_offset
            )
            if broker_id not in assignment.isr or behind:
                outcome = replication.recover_replica(
                    assignment.topic, assignment.partition, broker_id
                )
                recoveries.append(
                    {
                        "topic": outcome.topic,
                        "partition": outcome.partition,
                        "broker_id": outcome.broker_id,
                        "recovered": outcome.recovered,
                        "log_end_offset": outcome.log_end_offset,
                        "attempts": outcome.attempts,
                        "error": outcome.error,
                    }
                )
        replication.replicate_from_leader(assignment.topic, assignment.partition)

    # ------------------------------------------------------------------ #
    # Invariant checks
    # ------------------------------------------------------------------ #
    # One accepting leader per (partition, epoch): every observed leader
    # append within an epoch must come from the same broker.
    accepting: Dict[Tuple[str, int, int], int] = {}
    for broker_id, t, p, epoch, _base, _count in injector.appends:
        key = (t, p, epoch)
        first = accepting.setdefault(key, broker_id)
        if first != broker_id:
            violations.append(
                f"two brokers ({first}, {broker_id}) accepted appends for "
                f"{t}[{p}] in epoch {epoch}"
            )

    # Stale epochs stay fenced: a deposed leader's epoch must be rejected.
    probe = PackedRecordBatch.from_events(
        (EventRecord(value={"probe": True}, key="fence"),), append_time=clock.now()
    )
    for assignment in replication.all_assignments():
        if assignment.leader_epoch == 0:
            continue
        leader = cluster._brokers[assignment.leader]
        try:
            leader.append_packed(
                assignment.topic,
                assignment.partition,
                probe,
                leader_epoch=assignment.leader_epoch - 1,
            )
            violations.append(
                f"stale epoch {assignment.leader_epoch - 1} accepted on "
                f"{assignment.topic}[{assignment.partition}]"
            )
        except FencedLeaderError:  # lint: ignore[SWALLOWED-ERROR]
            pass  # rejection IS the invariant holding

    # Replicas converge after heal: same end offset, same content hash.
    hashes = _record_hashes(cluster, topic, partitions)
    for partition_key, per_replica in hashes.items():
        if len(set(per_replica.values())) > 1:
            violations.append(
                f"replicas diverged on {topic}[{partition_key}]: {per_replica}"
            )

    partitions_state = {}
    for assignment in replication.all_assignments():
        leader_log = cluster._brokers[assignment.leader].replica(
            assignment.topic, assignment.partition
        )
        partitions_state[str(assignment.partition)] = {
            "leader": assignment.leader,
            "leader_epoch": assignment.leader_epoch,
            "isr": sorted(assignment.isr),
            "high_watermark": leader_log.high_watermark,
            "log_end_offset": leader_log.log_end_offset,
        }

    report = {
        "seed": seed,
        "plan_digest": plan.digest(),
        "schedule": injector.transcript(),
        "produced": produced,
        "produce_failures": produce_failures,
        "fetch_failures": fetch_failures,
        "leader_appends": len(injector.appends),
        "recoveries": recoveries,
        "partitions": partitions_state,
        "record_hashes": hashes,
        "invariant_violations": violations,
    }
    payload = json.dumps(report, sort_keys=True)
    report["state_digest"] = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    injector.uninstall()
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: ``python -m repro.fabric.faults --seed 7 [--json]``.

    Exit status 1 when the scenario records any invariant violation, so a
    CI job can gate on the run directly; determinism itself is checked by
    running twice and comparing the JSON.
    """
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--brokers", type=int, default=3)
    parser.add_argument("--partitions", type=int, default=2)
    parser.add_argument("--events", type=int, default=14)
    parser.add_argument("--ticks", type=int, default=40)
    parser.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )
    args = parser.parse_args(argv)
    report = run_chaos_scenario(
        args.seed,
        brokers=args.brokers,
        partitions=args.partitions,
        events=args.events,
        ticks=args.ticks,
    )
    if args.json:
        print(json.dumps(report, sort_keys=True, indent=2))
    else:
        print(
            f"seed={report['seed']} plan={report['plan_digest'][:12]} "
            f"state={report['state_digest'][:12]} produced={report['produced']} "
            f"violations={len(report['invariant_violations'])}"
        )
        for violation in report["invariant_violations"]:
            print(f"  VIOLATION: {violation}")
    return 1 if report["invariant_violations"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
