"""Partition selection for produced records.

Mirrors the Kafka default partitioner: keyed records hash to a stable
partition (preserving per-key ordering across the life of the topic), and
unkeyed records are sprayed round-robin / sticky to balance load across
partitions, which is what lets multi-partition topics reach higher
aggregate throughput in the paper's evaluation (Table III, experiment #6).
"""

from __future__ import annotations

import hashlib
import itertools
import threading
from typing import Any, Optional

__all__ = ["Partitioner", "hash_key"]


def hash_key(key: Any) -> int:
    """Stable, process-independent hash of a record key."""
    if isinstance(key, bytes):
        data = key
    else:
        data = str(key).encode("utf-8")
    return int.from_bytes(hashlib.md5(data).digest()[:8], "big")


class Partitioner:
    """Chooses the partition for each produced record."""

    def __init__(self) -> None:
        self._round_robin = itertools.count()
        self._lock = threading.Lock()

    def partition(
        self, key: Any, num_partitions: int, explicit: Optional[int] = None
    ) -> int:
        """Return the partition index for a record.

        ``explicit`` (a partition requested by the caller) wins, then key
        hashing, then round-robin.
        """
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if explicit is not None:
            if not 0 <= explicit < num_partitions:
                raise ValueError(
                    f"explicit partition {explicit} outside [0, {num_partitions})"
                )
            return explicit
        if key is not None:
            return hash_key(key) % num_partitions
        with self._lock:
            return next(self._round_robin) % num_partitions
