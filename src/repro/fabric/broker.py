"""Broker nodes.

A broker hosts replicas of topic partitions.  One replica of each
partition is the *leader* (all produces and fetches go through it); the
others are *followers* that the replication machinery keeps in sync.  The
cluster controller (:mod:`repro.fabric.cluster`) decides placement and
leadership; the broker itself only stores data and serves requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.common.clock import Clock
from repro.common.sync import create_rlock
from repro.fabric.errors import BrokerUnavailableError, UnknownPartitionError
from repro.fabric.partition import PartitionLog
from repro.fabric.record import (
    EventRecord,
    PackedRecordBatch,
    PackedView,
    StoredRecord,
)


@dataclass(frozen=True)
class BrokerSpec:
    """Static description of a broker instance.

    ``instance_type``/``vcpus``/``memory_gb`` mirror the MSK instance
    classes in Table II (``kafka.m5.large`` = 2 vCPU / 8 GB,
    ``kafka.m5.xlarge`` = 4 vCPU / 16 GB) and feed the performance model
    in :mod:`repro.simulation.cluster_model`.
    """

    broker_id: int
    instance_type: str = "kafka.m5.large"
    vcpus: int = 2
    memory_gb: int = 8
    availability_zone: str = "us-east-1a"


class Broker:
    """A single broker process hosting partition replicas."""

    def __init__(self, spec: BrokerSpec, *, clock: Optional[Clock] = None) -> None:
        self.spec = spec
        self.broker_id = spec.broker_id
        self._clock = clock
        self._replicas: Dict[Tuple[str, int], PartitionLog] = {}  #: guarded_by _lock
        self._lock = create_rlock(f"Broker[{spec.broker_id}]")
        self._online = True
        #: Chaos seam: called as ``hook(op, topic, partition)`` at the top
        #: of each data-plane entry point.  A hook may sleep (slow disk)
        #: or raise (injected I/O failure).  ``None`` costs one attribute
        #: read on the hot path.
        self._fault_hook: Optional[Callable[[str, str, int], None]] = None
        #: Observation seam: called after every successful leader append
        #: with ``(broker_id, topic, partition, leader_epoch, base_offset,
        #: count)`` — the chaos harness derives its "one leader per epoch"
        #: invariant from this stream.
        self._append_listener: Optional[
            Callable[[int, str, int, int, int, int], None]
        ] = None

    # ------------------------------------------------------------------ #
    # Liveness (failure injection)
    # ------------------------------------------------------------------ #
    @property
    def online(self) -> bool:
        return self._online

    def shutdown(self) -> None:
        """Take the broker offline (simulated crash/maintenance)."""
        with self._lock:
            self._online = False

    def restart(self) -> None:
        """Bring the broker back online.  Replica data is retained."""
        with self._lock:
            self._online = True

    def _check_online(self) -> None:
        if not self._online:
            raise BrokerUnavailableError(f"broker {self.broker_id} is offline")

    # ------------------------------------------------------------------ #
    # Chaos / observation seams
    # ------------------------------------------------------------------ #
    def set_fault_hook(
        self, hook: Optional[Callable[[str, str, int], None]]
    ) -> None:
        """Install (or clear) the fault-injection hook.

        The hook runs at the top of ``append_packed``/``replicate``/
        ``fetch`` with ``(op, topic, partition)``; it may sleep to model a
        slow disk or raise a :class:`FabricError` to model an I/O fault.
        """
        self._fault_hook = hook

    def set_append_listener(
        self, listener: Optional[Callable[[int, str, int, int, int, int], None]]
    ) -> None:
        """Install (or clear) the post-append observation listener."""
        self._append_listener = listener

    def _faults(self, op: str, topic: str, partition: int) -> None:
        hook = self._fault_hook
        if hook is not None:
            hook(op, topic, partition)

    # ------------------------------------------------------------------ #
    # Replica management
    # ------------------------------------------------------------------ #
    def create_replica(
        self,
        topic: str,
        partition: int,
        *,
        max_message_bytes: int = 8 * 1024 * 1024,
        segment_records: Optional[int] = None,
        segment_bytes: Optional[int] = None,
    ) -> PartitionLog:
        """Create (or return the existing) local replica for a partition.

        ``segment_records``/``segment_bytes`` set the replica log's
        storage-segment roll thresholds (``None`` = log defaults); they are
        applied only when the replica is first created.
        """
        with self._lock:
            key = (topic, partition)
            if key not in self._replicas:
                self._replicas[key] = PartitionLog(
                    topic,
                    partition,
                    max_message_bytes=max_message_bytes,
                    segment_records=segment_records,
                    segment_bytes=segment_bytes,
                    clock=self._clock,
                )
            return self._replicas[key]

    def drop_replica(self, topic: str, partition: int) -> None:
        with self._lock:
            self._replicas.pop((topic, partition), None)

    def reset_replica(
        self,
        topic: str,
        partition: int,
        *,
        max_message_bytes: int = 8 * 1024 * 1024,
        segment_records: Optional[int] = None,
        segment_bytes: Optional[int] = None,
        log_start_offset: int = 0,
    ) -> PartitionLog:
        """Discard the local replica and open an empty one in its place.

        The corruption-recovery primitive (see
        :meth:`ReplicationManager.recover_replica`): a log whose chunks
        fail CRC verification cannot be repaired in place, so it is
        replaced wholesale and re-populated from the leader.  The fresh
        log starts at ``log_start_offset`` (the leader's log start) so
        adopted leader chunks keep their offsets.
        """
        self._check_online()
        with self._lock:
            fresh = PartitionLog(
                topic,
                partition,
                max_message_bytes=max_message_bytes,
                segment_records=segment_records,
                segment_bytes=segment_bytes,
                clock=self._clock,
            )
            if log_start_offset:
                fresh._log_start_offset = log_start_offset
                fresh._next_offset = log_start_offset
            self._replicas[(topic, partition)] = fresh
            return fresh

    def replica(self, topic: str, partition: int) -> PartitionLog:
        self._check_online()
        with self._lock:
            try:
                return self._replicas[(topic, partition)]
            except KeyError:
                raise UnknownPartitionError(
                    f"broker {self.broker_id} hosts no replica of {topic}-{partition}"
                ) from None

    def has_replica(self, topic: str, partition: int) -> bool:
        with self._lock:
            return (topic, partition) in self._replicas

    def hosted_partitions(self) -> Iterable[Tuple[str, int]]:
        with self._lock:
            return tuple(self._replicas.keys())

    # ------------------------------------------------------------------ #
    # Data plane
    # ------------------------------------------------------------------ #
    def append(
        self, topic: str, partition: int, record: EventRecord
    ) -> int:
        """Append to the local replica (leader path)."""
        self._check_online()
        return self.replica(topic, partition).append(record)

    def append_batch(
        self, topic: str, partition: int, records: Iterable[EventRecord]
    ) -> list[int]:
        """Append a whole batch to the local replica (leader batch path)."""
        self._check_online()
        return self.replica(topic, partition).append_batch(records)

    def append_packed(
        self,
        topic: str,
        partition: int,
        packed: PackedRecordBatch,
        *,
        leader_epoch: Optional[int] = None,
    ) -> PackedRecordBatch:
        """Adopt a producer-sealed packed batch on the local replica.

        This is the one-encode leader path: the batch object the producer
        sealed becomes the log's storage chunk directly, and the returned
        offset-stamped form (sharing its records and payload) is what the
        cluster forwards to the canonical partition and persistence sinks.

        ``leader_epoch`` fences the write: an epoch older than the log
        has seen raises :class:`FencedLeaderError` before any record is
        admitted (a deposed leader cannot fork history).
        """
        self._check_online()
        self._faults("append", topic, partition)
        log = self.replica(topic, partition)
        log.note_leader_epoch(leader_epoch)
        stamped = log.append_packed(packed)
        listener = self._append_listener
        if listener is not None:
            listener(
                self.broker_id, topic, partition, log.leader_epoch,
                stamped.base_offset, len(stamped),
            )
        return stamped

    def replicate(
        self,
        topic: str,
        partition: int,
        records: Iterable[StoredRecord],
        *,
        leader_epoch: Optional[int] = None,
    ) -> int:
        """Follower path: copy records appended on the leader.

        Offsets are preserved; the whole batch is adopted under a single
        log lock.  ``leader_epoch`` fences the push exactly like
        :meth:`append_packed` — a deposed leader's replication traffic is
        rejected, and a newer epoch is adopted into the follower's epoch
        history.  Returns the follower's new log end offset.
        """
        self._check_online()
        self._faults("replicate", topic, partition)
        log = self.replica(topic, partition)
        log.note_leader_epoch(leader_epoch)
        return log.append_stored(records)

    def fetch(
        self,
        topic: str,
        partition: int,
        offset: int,
        max_records: int = 500,
        max_bytes: Optional[int] = None,
        isolation: str = "committed",
    ) -> list[StoredRecord]:
        self._check_online()
        self._faults("fetch", topic, partition)
        records = self.replica(topic, partition).fetch(
            offset, max_records=max_records, max_bytes=max_bytes,
            isolation=isolation,
        )
        if isinstance(records, PackedView):
            # Memoized per chunk (free for already-verified batches), but
            # surfaces a CorruptBatchError at fetch for any sealed chunk
            # that slipped in without an ingress check.
            records.verify_crcs()
        return records

    def fetch_many(
        self,
        requests: Iterable[Tuple[str, int, int, Optional[int]]],
        *,
        max_records: int = 500,
        max_bytes: Optional[int] = None,
        logs: Optional[list[PartitionLog]] = None,
        isolation: str = "committed",
    ) -> Tuple[Dict[Tuple[str, int], list[StoredRecord]], int, int]:
        """Serve several partition fetches in one broker round trip.

        ``requests`` is an ordered iterable of ``(topic, partition, offset,
        per_partition_max_records)`` tuples.  ``max_records``/``max_bytes``
        are *session-wide* caps charged across every request in order —
        unlike per-partition :meth:`fetch`, a hot partition early in the
        request list shrinks what later partitions may return.  One online
        check covers the whole call.  ``logs`` may carry the replica logs a
        fetch session already resolved (position-matched with ``requests``),
        skipping the replica-table lock.  Returns ``(records_by_partition,
        records_served, bytes_served)`` so the caller can keep charging the
        same budget across further brokers in the session.
        """
        self._check_online()
        if not isinstance(requests, list):
            requests = list(requests)
        if logs is None:
            # One broker-lock pass resolves every replica up front (the
            # per-request ``replica()`` lock round trip was the dominant
            # cost of multi-partition fetches).
            with self._lock:
                logs = []
                for request in requests:
                    log = self._replicas.get((request[0], request[1]))
                    if log is None:
                        raise UnknownPartitionError(
                            f"broker {self.broker_id} hosts no replica of "
                            f"{request[0]}-{request[1]}"
                        )
                    logs.append(log)
        out: Dict[Tuple[str, int], list[StoredRecord]] = {}
        remaining = max_records
        served_bytes = 0
        if max_bytes is None:
            # No byte budget: the record cap alone drives the loop.
            for request, log in zip(requests, logs):
                if remaining <= 0:
                    break
                cap = request[3]
                limit = remaining if cap is None or cap > remaining else cap
                records, _ = log.fetch_with_usage(
                    request[2], max_records=limit, isolation=isolation
                )
                if records:
                    out[(request[0], request[1])] = records
                    remaining -= len(records)
            return out, max_records - remaining, served_bytes
        budget = max_bytes
        for request, log in zip(requests, logs):
            if remaining <= 0 or budget <= 0:
                break
            cap = request[3]
            limit = remaining if cap is None or cap > remaining else cap
            records, used = log.fetch_with_usage(
                request[2], max_records=limit, max_bytes=budget,
                isolation=isolation,
            )
            if records:
                out[(request[0], request[1])] = records
                remaining -= len(records)
                served_bytes += used
                budget -= used
        return out, max_records - remaining, served_bytes

    # ------------------------------------------------------------------ #
    def describe(self) -> dict:
        with self._lock:
            return {
                "broker_id": self.broker_id,
                "instance_type": self.spec.instance_type,
                "vcpus": self.spec.vcpus,
                "memory_gb": self.spec.memory_gb,
                "availability_zone": self.spec.availability_zone,
                "online": self._online,
                "replicas": sorted(f"{t}-{p}" for t, p in self._replicas),
            }
