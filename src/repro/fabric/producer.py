"""Producer client for the event fabric.

Implements the client-side behaviours the Octopus SDK exposes
(Section IV-E/IV-F): configurable acknowledgements, bounded buffering
(``buffer.memory``), batching per partition, automatic retries on
retriable errors, and an asynchronous ``flush``.  With
``linger_seconds > 0`` a background delivery thread flushes lingered
batches on its own — the application does not need another :meth:`buffer`
call (or any call at all) for buffered events to reach the brokers.  The
producer talks to a :class:`~repro.fabric.cluster.FabricCluster`
directly; when used through the SDK the cluster handle is obtained via
the Octopus Web Service after authentication.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional

from repro.common.clock import Clock, SystemClock
from repro.common.retry import RetryPolicy
from repro.common.sync import create_lock, create_rlock
from repro.fabric.cluster import FabricCluster
from repro.fabric.errors import FabricError
from repro.fabric.partitioner import Partitioner
from repro.fabric.record import EventRecord, RecordBatch, RecordMetadata

#: Latency samples retained (matches the consumer's bounded window).
METRICS_WINDOW = 2048


@dataclass(frozen=True)
class ProducerConfig:
    """Client configuration, mirroring the Kafka producer options the paper tunes.

    The evaluation (Section V-B) reduces ``buffer.memory`` to 256 KB to
    optimise throughput/latency; that is the default here as well.
    """

    acks: object = 1
    retries: int = 3
    retry_backoff_seconds: float = 0.05
    buffer_memory_bytes: int = 256 * 1024
    batch_max_bytes: int = 64 * 1024
    linger_seconds: float = 0.0
    metadata_max_age_seconds: float = 5.0
    client_id: str = "octopus-producer"
    #: Batch compression codec (``compression.type``): ``None``/``"none"``
    #: sends raw; any codec registered in :mod:`repro.fabric.record`
    #: (``gzip``/``lzma`` from the stdlib, ``lz4``/``zstd`` when their
    #: packages are installed) compresses each sealed batch once — the
    #: compressed body then travels broker → log → replicas → mirror
    #: without ever being re-inflated on a forward path.
    compression: Optional[str] = None
    #: Batches whose payload is below this many bytes are sent raw even
    #: with ``compression`` set: codec overhead beats the saving on tiny
    #: batches (Kafka's analogue gate lives in the broker's down-convert).
    compression_min_bytes: int = 512

    def validate(self) -> None:
        if self.acks not in (0, 1, "all", "0", "1"):
            raise ValueError(f"acks must be 0, 1 or 'all', got {self.acks!r}")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.buffer_memory_bytes <= 0:
            raise ValueError("buffer_memory_bytes must be > 0")
        if self.batch_max_bytes <= 0:
            raise ValueError("batch_max_bytes must be > 0")
        if self.linger_seconds < 0:
            raise ValueError("linger_seconds must be >= 0")
        if self.metadata_max_age_seconds < 0:
            raise ValueError("metadata_max_age_seconds must be >= 0")
        if self.compression is not None and self.compression != "none":
            from repro.fabric.record import get_codec

            get_codec(self.compression)  # raises UnknownCodecError if absent
        if self.compression_min_bytes < 0:
            raise ValueError("compression_min_bytes must be >= 0")


@dataclass
class ProducerMetrics:
    """Counters the benchmarking operator aggregates after a run."""

    records_sent: int = 0
    bytes_sent: int = 0
    records_failed: int = 0
    retries: int = 0
    batches_sent: int = 0
    send_latencies: Deque[float] = field(
        default_factory=lambda: deque(maxlen=METRICS_WINDOW)
    )

    def record_send(self, size: int, latency: float) -> None:
        self.records_sent += 1
        self.bytes_sent += size
        self.send_latencies.append(latency)

    def record_batch_send(self, count: int, size: int, latency: float) -> None:
        self.records_sent += count
        self.bytes_sent += size
        self.batches_sent += 1
        self.send_latencies.append(latency)


class FabricProducer:
    """Publishes events to the fabric with retries and batching."""

    def __init__(
        self,
        cluster: FabricCluster,
        config: Optional[ProducerConfig] = None,
        *,
        principal: Optional[str] = None,
        sleep_fn: Optional[Callable[[float], None]] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.config = config or ProducerConfig()
        self.config.validate()
        self._cluster = cluster
        self._principal = principal
        self._partitioner = Partitioner()
        self._clock: Clock = clock or SystemClock()
        self._sleep = sleep_fn if sleep_fn is not None else self._clock.sleep
        self._lock = create_rlock("FabricProducer")
        # Serializes whole flush passes (background vs. foreground) so
        # concurrent flushes cannot interleave batches of one partition.
        self._flush_lock = create_lock("FabricProducer.flush")
        self._pending: Dict[tuple[str, int], RecordBatch] = {}  #: guarded_by _lock
        self._sealed: List[RecordBatch] = []  #: guarded_by _lock
        self._partition_counts: Dict[str, tuple[int, float]] = {}
        self._metadata_epoch = cluster.metadata_epoch
        self._buffered_bytes = 0  #: guarded_by _lock
        self._closed = False
        self._delivery_stop = threading.Event()
        self._delivery_thread: Optional[threading.Thread] = None
        self.metrics = ProducerMetrics()
        # One shared RetryPolicy drives every delivery retry: exponential
        # backoff from the configured base (``retry.backoff.ms``), capped,
        # with a dash of deterministic jitter to de-synchronize a fleet of
        # producers hammering a recovering broker.
        self._retry_policy = RetryPolicy(
            max_attempts=self.config.retries + 1,
            base_backoff=self.config.retry_backoff_seconds,
            multiplier=2.0,
            max_backoff=max(1.0, self.config.retry_backoff_seconds),
            jitter=0.2,
        )

    # Delivery retries only fabric-retriable errors; anything else
    # (BufferError, programming errors) surfaces immediately.
    @staticmethod
    def _retriable(exc: BaseException) -> bool:
        return isinstance(exc, FabricError) and exc.retriable

    def _count_retry(self, attempt: int, exc: BaseException, delay: float) -> None:
        self.metrics.retries += 1

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def send(
        self,
        topic: str,
        value: Any,
        *,
        key: Any = None,
        headers: Optional[Mapping[str, str]] = None,
        partition: Optional[int] = None,
        timestamp: Optional[float] = None,
    ) -> RecordMetadata:
        """Publish a single event synchronously and return its metadata.

        Retries transparently on retriable fabric errors up to
        ``config.retries`` times, as the SDK producer does.
        """
        self._ensure_open()
        record = EventRecord(
            value=value,
            key=key,
            headers=dict(headers or {}),
            timestamp=timestamp if timestamp is not None else self._clock.now(),
        )
        target = self._select_partition(topic, key, partition)
        return self._send_with_retries(topic, target, record)

    def send_batch(
        self,
        topic: str,
        values: List[Any],
        *,
        key: Any = None,
        partition: Optional[int] = None,
    ) -> List[RecordMetadata]:
        """Publish several events as per-partition batches.

        Events are grouped by target partition and each group travels
        through :meth:`FabricCluster.append_batch` — one metadata/ACL/leader
        resolution and one replication pass per partition instead of one per
        event.  Metadata is returned in input order.
        """
        self._ensure_open()
        slots: List[Optional[RecordMetadata]] = [None] * len(values)
        groups: Dict[int, List[tuple[int, EventRecord]]] = {}
        now = self._clock.now()
        for index, value in enumerate(values):
            record = EventRecord(value=value, key=key, timestamp=now)
            target = self._select_partition(topic, key, partition)
            groups.setdefault(target, []).append((index, record))
        for target, items in groups.items():
            batch = RecordBatch.of(topic, target, [record for _, record in items])
            metadata = self._send_batch_with_retries(batch)
            for (index, _), md in zip(items, metadata):
                slots[index] = md
        return [md for md in slots if md is not None]

    def buffer(self, topic: str, value: Any, *, key: Any = None,
               partition: Optional[int] = None) -> None:
        """Queue an event locally; delivery happens on :meth:`flush`.

        This is the asynchronous path used by the Parsl monitoring
        application (Section VI-E) to batch events and publish them off the
        task critical path.  Raises ``BufferError`` when ``buffer.memory``
        would be exceeded.
        """
        self._ensure_open()
        record = EventRecord(value=value, key=key, timestamp=self._clock.now())
        size = record.size_bytes()
        with self._lock:
            if self._buffered_bytes + size > self.config.buffer_memory_bytes:
                raise BufferError(
                    f"producer buffer full ({self._buffered_bytes} B buffered, "
                    f"limit {self.config.buffer_memory_bytes} B); call flush()"
                )
            target = self._select_partition(topic, key, partition)
            batch_key = (topic, target)
            batch = self._pending.get(batch_key)
            if batch is None:
                batch = RecordBatch(
                    topic,
                    target,
                    max_bytes=self.config.batch_max_bytes,
                    created_at=self._clock.now(),
                )
                self._pending[batch_key] = batch
            if not batch.try_append(record):
                # Seal the full batch; it is delivered on the next flush,
                # never dropped.
                self._sealed.append(batch)
                batch = RecordBatch(
                    topic,
                    target,
                    max_bytes=self.config.batch_max_bytes,
                    created_at=self._clock.now(),
                )
                batch.try_append(record)
                self._pending[batch_key] = batch
            self._buffered_bytes += size
        if self.config.linger_seconds > 0:
            self._ensure_delivery_thread()
            self._flush_if_lingered()

    def flush(self) -> List[RecordMetadata]:
        """Deliver every buffered event as whole batches; returns all metadata.

        Each sealed or open batch goes through the cluster's batched append
        path with per-batch retry/backoff.  If a batch fails permanently,
        every not-yet-delivered batch (the failing one included) is returned
        to the buffer so a later flush can retry it — buffered events are
        never silently lost.
        """
        with self._flush_lock:
            with self._lock:
                batches = self._sealed + [b for b in self._pending.values() if len(b)]
                self._sealed = []
                self._pending = {}
                self._buffered_bytes = 0
            out: List[RecordMetadata] = []
            for index, batch in enumerate(batches):
                try:
                    # Batches that fail here are re-buffered below, not lost,
                    # so they must not be counted in records_failed.
                    out.extend(
                        self._send_batch_with_retries(batch, count_failures=False)
                    )
                except FabricError:
                    with self._lock:
                        remaining = batches[index:]
                        self._sealed = remaining + self._sealed
                        self._buffered_bytes += sum(b.size_bytes for b in remaining)
                    raise
            return out

    def _flush_if_lingered(self) -> None:
        """Auto-flush when the oldest buffered batch exceeds ``linger_seconds``."""
        now = self._clock.now()
        with self._lock:
            oldest = min(
                (
                    batch.created_at
                    for batch in self._sealed + list(self._pending.values())
                    if len(batch)
                ),
                default=None,
            )
        if oldest is not None and now - oldest >= self.config.linger_seconds:
            self.flush()

    def _ensure_delivery_thread(self) -> None:
        """Start the background delivery thread (once) when lingering."""
        if self._delivery_thread is not None:
            return
        with self._lock:
            if self._delivery_thread is not None or self._closed:
                return
            self._delivery_thread = threading.Thread(
                target=self._delivery_loop,
                name=f"delivery-{self.config.client_id}",
                daemon=True,
            )
            self._delivery_thread.start()

    def _delivery_loop(self) -> None:
        """Flush lingered batches without further application calls.

        Wakes a few times per linger interval and compares batch ages on
        the injected clock.  Under a simulated clock the linger can elapse
        at any real moment, so the wait is additionally capped at 50 ms to
        stay responsive; real-clock producers sleep ``linger/4`` and don't
        busy-wake.
        """
        interval = max(self.config.linger_seconds / 4.0, 0.001)
        if not isinstance(self._clock, SystemClock):
            interval = min(interval, 0.05)
        while not self._delivery_stop.wait(interval):
            try:
                self._flush_if_lingered()
            except FabricError:  # lint: ignore[SWALLOWED-ERROR]
                # The failed batches were re-buffered; retried next tick.
                pass

    @property
    def buffered_bytes(self) -> int:
        with self._lock:
            return self._buffered_bytes

    def close(self) -> None:
        """Stop background delivery, flush outstanding events, refuse sends."""
        if self._closed:
            return
        stopped_thread = self._delivery_thread
        if stopped_thread is not None:
            self._delivery_stop.set()
            stopped_thread.join(timeout=5.0)
        try:
            self.flush()
        except FabricError:
            # The failed batches were re-buffered and the producer stays
            # open, so background delivery must be restartable — otherwise
            # lingered batches would sit in the buffer forever.
            if stopped_thread is not None:
                with self._lock:
                    self._delivery_stop = threading.Event()
                    self._delivery_thread = None
            raise
        self._closed = True

    def __enter__(self) -> "FabricProducer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("producer is closed")

    def _select_partition(self, topic: str, key: Any, explicit: Optional[int]) -> int:
        """Route a record to a partition using cached topic metadata.

        Partition counts are cached per topic (one cluster metadata lookup
        per topic instead of per record, as Kafka clients do), refreshed
        after ``metadata_max_age_seconds`` so keyed/round-robin records see
        partition growth, and refreshed eagerly when an explicit partition
        lies outside the cached range — partition counts only ever grow.
        The cache is additionally scoped to the cluster's metadata epoch:
        an admin growing the topic (``FabricAdmin.set_partitions``) bumps
        the epoch, so records route to the new partitions immediately
        rather than after the max-age window.
        """
        epoch = self._cluster.metadata_epoch
        if epoch != self._metadata_epoch:
            self._partition_counts.clear()
            self._metadata_epoch = epoch
        now = self._clock.now()
        cached = self._partition_counts.get(topic)
        if cached is None or now - cached[1] >= self.config.metadata_max_age_seconds:
            num_partitions = self._cluster.topic(topic).num_partitions
            self._partition_counts[topic] = (num_partitions, now)
        else:
            num_partitions = cached[0]
        try:
            return self._partitioner.partition(key, num_partitions, explicit=explicit)
        except ValueError:
            fresh = self._cluster.topic(topic).num_partitions
            if fresh == num_partitions:
                raise
            self._partition_counts[topic] = (fresh, now)
            return self._partitioner.partition(key, fresh, explicit=explicit)

    def _send_with_retries(
        self, topic: str, partition: int, record: EventRecord
    ) -> RecordMetadata:
        start = time.perf_counter()

        def attempt() -> RecordMetadata:
            return self._cluster.append(
                topic,
                partition,
                record,
                acks=self.config.acks,
                principal=self._principal,
            )

        try:
            metadata = self._retry_policy.call(
                attempt,
                clock=self._clock,
                sleep=self._sleep,
                retriable=self._retriable,
                on_retry=self._count_retry,
            )
        except FabricError:
            self.metrics.records_failed += 1
            raise
        self.metrics.record_send(
            metadata.serialized_size, time.perf_counter() - start
        )
        return metadata

    def _send_batch_with_retries(
        self, batch: RecordBatch, *, count_failures: bool = True
    ) -> List[RecordMetadata]:
        """Deliver one whole batch via the batched append path, with retries."""
        start = time.perf_counter()
        codec = self.config.compression

        def attempt() -> List[RecordMetadata]:
            return self._cluster.append_batch(
                batch.topic,
                batch.partition,
                # Seal once: the same packed batch object becomes the
                # leader log's storage chunk (no per-record re-encode).
                # With compression configured the seal also compresses
                # and CRC-stamps the body — once, reused on retries.
                batch.sealed_packed()
                if codec is None or codec == "none"
                else batch.sealed_wire(
                    codec, self.config.compression_min_bytes
                ),
                acks=self.config.acks,
                principal=self._principal,
            )

        try:
            metadata = self._retry_policy.call(
                attempt,
                clock=self._clock,
                sleep=self._sleep,
                retriable=self._retriable,
                on_retry=self._count_retry,
            )
        except FabricError:
            if count_failures:
                self.metrics.records_failed += len(batch)
            raise
        self.metrics.record_batch_send(
            len(metadata),
            sum(md.serialized_size for md in metadata),
            time.perf_counter() - start,
        )
        return metadata
