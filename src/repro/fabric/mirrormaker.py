"""MirrorMaker-like cross-cluster topic replication.

Section IV-F of the paper notes that Octopus topics "may be replicated and
synchronized by using the Kafka MirrorMaker tool" to improve fault
tolerance across AWS regions.  :class:`MirrorMaker` copies records from a
source cluster's topics to a destination cluster, preserving partitioning
and tagging mirrored records with provenance headers.

Syncing is batched end to end: one fetch-session pass reads every source
partition (leader resolutions cached across sync calls), and each
partition's records travel to the destination through
:meth:`FabricCluster.append_chunks` — one authorization/metadata/leader
round and one replication pass per partition per sync instead of one per
record.

Forwarding is zero-copy: the source fetch returns packed batch views, and
the mirror hands those very chunks (payload and record objects shared) to
the destination with a *header overlay* — the provenance headers
(``mirror.source.cluster``/``mirror.source.offset``/
``mirror.batch.base_offset``) are attached lazily when a destination
reader decodes a record, so nothing is re-encoded on the mirror path.
Mirrored byte accounting consequently reflects the source record sizes;
the provenance headers ride outside the packed payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.fabric.cluster import FabricCluster, FetchRequest, FetchSession
from repro.fabric.errors import UnknownTopicError
from repro.fabric.record import PackedView
from repro.fabric.topic import TopicConfig


def _provenance_overlay(source_name: str, base_offset: int):
    """Header-overlay callback mapping a *source* offset to provenance headers."""

    def provenance(source_offset: int) -> Dict[str, str]:
        return {
            "mirror.source.cluster": source_name,
            "mirror.source.offset": str(source_offset),
            "mirror.batch.base_offset": str(base_offset),
        }

    return provenance


@dataclass
class MirrorStats:
    """Per-topic counters for one synchronization pass."""

    records_mirrored: int = 0
    #: Logical (uncompressed) bytes of the mirrored records.
    bytes_mirrored: int = 0
    #: Bytes a cross-cluster link would actually carry: compressed chunks
    #: forwarded by reference count at their sealed wire size.  Equal to
    #: ``bytes_mirrored`` when the source stores raw batches; the gap is
    #: the compression win the mirror inherits for free.
    physical_bytes_mirrored: int = 0
    partitions_synced: int = 0
    batches_appended: int = 0


@dataclass
class MirrorMaker:
    """Replicates topics from ``source`` to ``destination``.

    Parameters
    ----------
    source, destination:
        Fabric clusters (for example, two regions).
    topic_prefix:
        Prefix applied to mirrored topic names on the destination, matching
        MirrorMaker 2's ``<source-alias>.<topic>`` convention.  Empty string
        keeps the original names.
    """

    source: FabricCluster
    destination: FabricCluster
    topic_prefix: str = ""
    #: Principals the mirror uses on each side when ACLs are enforced.
    source_principal: Optional[str] = None
    destination_principal: Optional[str] = None
    _positions: Dict[tuple[str, int], int] = field(default_factory=dict)
    _session: Optional[FetchSession] = field(default=None, repr=False)

    def mirrored_name(self, topic: str) -> str:
        return f"{self.topic_prefix}{topic}" if self.topic_prefix else topic

    def _ensure_destination_topic(self, topic: str) -> str:
        """Create the mirror topic, or grow it if the source added partitions.

        Without the growth step a source topic whose partition count
        increased after the mirror was created would route records to a
        destination partition that does not exist.
        """
        name = self.mirrored_name(topic)
        source_partitions = self.source.topic(topic).num_partitions
        admin = self.destination.admin()
        if not self.destination.has_topic(name):
            source_config = self.source.topic(topic).config
            config = TopicConfig.from_dict(source_config.to_dict())
            admin.create_topic(name, config)
        elif self.destination.topic(name).num_partitions < source_partitions:
            admin.set_partitions(name, source_partitions)
        return name

    def _fetch_session(self) -> FetchSession:
        if self._session is None:
            self._session = self.source.fetch_session(
                principal=self.source_principal
            )
        return self._session

    def sync_topic(self, topic: str, *, max_records_per_partition: int = 10_000) -> MirrorStats:
        """Copy new records of one topic; returns what was transferred."""
        if not self.source.has_topic(topic):
            raise UnknownTopicError(f"source topic {topic!r} does not exist")
        destination_topic = self._ensure_destination_topic(topic)
        stats = MirrorStats()
        partitions = self.source.partitions_for(topic)
        requests = [
            FetchRequest(
                topic,
                partition,
                self._positions.get((topic, partition), 0),
                max_records_per_partition,
            )
            for _, partition in partitions
        ]
        batches = self._fetch_session().fetch(
            requests,
            max_records=max_records_per_partition * max(1, len(partitions)),
            max_bytes=None,
        )
        source_name = self.source.name
        for (_, partition), records in batches.items():
            view = PackedView.wrap(records)
            base_offset = records[0].offset
            provenance = _provenance_overlay(source_name, base_offset)
            # Forward the fetched chunks by reference: the overlay captures
            # the *source* offsets now, so destination restamping cannot
            # disturb provenance, and no record is re-encoded.
            self.destination.append_chunks(
                destination_topic,
                partition,
                view.with_overlay(provenance),
                acks=1,
                principal=self.destination_principal,
            )
            # Positions advance per appended batch, so a failure in a later
            # partition never rewinds (or double-mirrors) this one.
            self._positions[(topic, partition)] = records[-1].offset + 1
            stats.records_mirrored += len(records)
            stats.bytes_mirrored += view.size_bytes()
            stats.physical_bytes_mirrored += view.physical_size_bytes()
            stats.batches_appended += 1
        stats.partitions_synced = len(partitions)
        return stats

    def sync(self, topics: Optional[Sequence[str]] = None) -> Dict[str, MirrorStats]:
        """Synchronize several topics (default: every topic on the source)."""
        names = list(topics) if topics is not None else self.source.topics()
        return {name: self.sync_topic(name) for name in names}

    def replication_lag(self, topic: str) -> int:
        """Records on the source not yet copied to the destination."""
        lag = 0
        for _, partition in self.source.partitions_for(topic):
            end = self.source.end_offset(topic, partition)
            lag += max(0, end - self._positions.get((topic, partition), 0))
        return lag
