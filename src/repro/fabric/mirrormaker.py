"""MirrorMaker-like cross-cluster topic replication.

Section IV-F of the paper notes that Octopus topics "may be replicated and
synchronized by using the Kafka MirrorMaker tool" to improve fault
tolerance across AWS regions.  :class:`MirrorMaker` copies records from a
source cluster's topics to a destination cluster, preserving partitioning
and tagging mirrored records with provenance headers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.fabric.cluster import FabricCluster
from repro.fabric.errors import UnknownTopicError
from repro.fabric.record import EventRecord
from repro.fabric.topic import TopicConfig


@dataclass
class MirrorStats:
    """Per-topic counters for one synchronization pass."""

    records_mirrored: int = 0
    bytes_mirrored: int = 0
    partitions_synced: int = 0


@dataclass
class MirrorMaker:
    """Replicates topics from ``source`` to ``destination``.

    Parameters
    ----------
    source, destination:
        Fabric clusters (for example, two regions).
    topic_prefix:
        Prefix applied to mirrored topic names on the destination, matching
        MirrorMaker 2's ``<source-alias>.<topic>`` convention.  Empty string
        keeps the original names.
    """

    source: FabricCluster
    destination: FabricCluster
    topic_prefix: str = ""
    #: Principals the mirror uses on each side when ACLs are enforced.
    source_principal: Optional[str] = None
    destination_principal: Optional[str] = None
    _positions: Dict[tuple[str, int], int] = field(default_factory=dict)

    def mirrored_name(self, topic: str) -> str:
        return f"{self.topic_prefix}{topic}" if self.topic_prefix else topic

    def _ensure_destination_topic(self, topic: str) -> str:
        name = self.mirrored_name(topic)
        if not self.destination.has_topic(name):
            source_config = self.source.topic(topic).config
            config = TopicConfig.from_dict(source_config.to_dict())
            self.destination.create_topic(name, config)
        return name

    def sync_topic(self, topic: str, *, max_records_per_partition: int = 10_000) -> MirrorStats:
        """Copy new records of one topic; returns what was transferred."""
        if not self.source.has_topic(topic):
            raise UnknownTopicError(f"source topic {topic!r} does not exist")
        destination_topic = self._ensure_destination_topic(topic)
        stats = MirrorStats()
        for _, partition in self.source.partitions_for(topic):
            position = self._positions.get((topic, partition), 0)
            records = self.source.fetch(
                topic, partition, position, max_records=max_records_per_partition,
                principal=self.source_principal,
            )
            for stored in records:
                mirrored = EventRecord(
                    value=stored.record.value,
                    key=stored.record.key,
                    headers={
                        **dict(stored.record.headers),
                        "mirror.source.cluster": self.source.name,
                        "mirror.source.offset": str(stored.offset),
                    },
                    timestamp=stored.record.timestamp,
                )
                self.destination.append(
                    destination_topic, partition, mirrored, acks=1,
                    principal=self.destination_principal,
                )
                stats.records_mirrored += 1
                stats.bytes_mirrored += stored.size_bytes()
            if records:
                self._positions[(topic, partition)] = records[-1].offset + 1
            stats.partitions_synced += 1
        return stats

    def sync(self, topics: Optional[Sequence[str]] = None) -> Dict[str, MirrorStats]:
        """Synchronize several topics (default: every topic on the source)."""
        names = list(topics) if topics is not None else self.source.topics()
        return {name: self.sync_topic(name) for name in names}

    def replication_lag(self, topic: str) -> int:
        """Records on the source not yet copied to the destination."""
        lag = 0
        for _, partition in self.source.partitions_for(topic):
            end = self.source.end_offsets(topic)[partition]
            lag += max(0, end - self._positions.get((topic, partition), 0))
        return lag
