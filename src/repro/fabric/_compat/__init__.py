"""Retired fabric implementations kept as test/benchmark baselines.

Nothing in here is public API: modules under ``repro.fabric._compat``
exist only so the Hypothesis differential suites and the storage
micro-benchmarks can compare the live implementation against its
predecessor.  The ``DEPRECATED-API`` lint rule fails CI on any new
production import (see :data:`repro.analysis.rules.DEPRECATED_MODULES`).
"""
