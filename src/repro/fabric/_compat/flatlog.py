"""Reference flat-list partition log (pre-segmentation semantics).

This is the storage layer as it existed before :class:`PartitionLog` was
rebuilt on segments: one flat Python list behind a single lock, O(n)
retention and O(n) size accounting.  It is kept for two jobs only:

* **Differential testing** — the property suite drives the segmented log
  and this model with the same operation sequence and asserts the
  observable behavior (offsets, fetch results, retention outcomes) is
  identical (``tests/fabric/test_storage_properties.py``).
* **Benchmark baseline** — the storage micro-bench measures retention-run
  latency against this implementation to prove the segmented log's
  whole-segment drops are ≥ 5× faster
  (``benchmarks/test_storage_microbench.py``).

It is not part of the data plane; nothing in the fabric imports it.  It
used to live at ``repro.fabric.flatlog``; that name is retired from the
public surface, and both the old and this ``_compat`` location are
``DEPRECATED-API`` lint entries so no new production import can appear.
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.fabric.errors import OffsetOutOfRangeError, RecordTooLargeError
from repro.fabric.record import EventRecord, StoredRecord


class FlatPartitionLog:
    """The pre-segment ``PartitionLog``: a flat record list, one lock."""

    def __init__(
        self,
        topic: str,
        partition: int,
        *,
        max_message_bytes: int = 8 * 1024 * 1024,
    ) -> None:
        self.topic = topic
        self.partition = partition
        self.max_message_bytes = int(max_message_bytes)
        self._records: list[StoredRecord] = []
        self._log_start_offset = 0
        self._next_offset = 0
        self._lock = threading.RLock()
        self._total_appended = 0
        self._total_bytes = 0

    # ------------------------------------------------------------------ #
    @property
    def log_start_offset(self) -> int:
        with self._lock:
            return self._log_start_offset

    @property
    def log_end_offset(self) -> int:
        with self._lock:
            return self._next_offset

    @property
    def high_watermark(self) -> int:
        return self.log_end_offset

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def size_bytes(self) -> int:
        with self._lock:
            return sum(r.size_bytes() for r in self._records)

    @property
    def total_appended(self) -> int:
        with self._lock:
            return self._total_appended

    @property
    def total_bytes_appended(self) -> int:
        with self._lock:
            return self._total_bytes

    # ------------------------------------------------------------------ #
    def append(self, record: EventRecord, append_time: Optional[float] = None) -> int:
        size = record.size_bytes()
        if size > self.max_message_bytes:
            raise RecordTooLargeError(
                f"record of {size} B exceeds max.message.bytes="
                f"{self.max_message_bytes} for {self.topic}-{self.partition}"
            )
        with self._lock:
            offset = self._next_offset
            stored = StoredRecord(
                offset=offset,
                record=record,
                # Deprecated differential-test baseline: mirrors the
                # pre-clock behaviour on purpose.
                append_time=(append_time if append_time is not None
                             else time.time()),  # lint: ignore[RAW-CLOCK]
            )
            self._records.append(stored)
            self._next_offset += 1
            self._total_appended += 1
            self._total_bytes += size
            return offset

    def append_batch(
        self, records: Iterable[EventRecord], append_time: Optional[float] = None
    ) -> list[int]:
        records = list(records)
        if not records:
            return []
        sizes = [record.size_bytes() for record in records]
        for size in sizes:
            if size > self.max_message_bytes:
                raise RecordTooLargeError(
                    f"record of {size} B exceeds max.message.bytes="
                    f"{self.max_message_bytes} for {self.topic}-{self.partition}"
                )
        with self._lock:
            # Deprecated baseline keeps wall-clock stamps.
            when = append_time if append_time is not None else time.time()  # lint: ignore[RAW-CLOCK]
            base = self._next_offset
            offsets = list(range(base, base + len(records)))
            self._records.extend(
                StoredRecord(offset=offset, record=record, append_time=when)
                for offset, record in zip(offsets, records)
            )
            self._next_offset = base + len(records)
            self._total_appended += len(records)
            self._total_bytes += sum(sizes)
            return offsets

    def append_stored(self, records: Iterable[StoredRecord]) -> int:
        with self._lock:
            fresh = [s for s in records if s.offset >= self._next_offset]
            if not fresh:
                return self._next_offset
            self._records.extend(fresh)
            self._next_offset = fresh[-1].offset + 1
            self._total_appended += len(fresh)
            self._total_bytes += sum(s.size_bytes() for s in fresh)
            return self._next_offset

    def fetch(
        self,
        offset: int,
        max_records: int = 500,
        max_bytes: Optional[int] = None,
        isolation: str = "committed",
    ) -> list[StoredRecord]:
        return self.fetch_with_usage(
            offset, max_records=max_records, max_bytes=max_bytes,
            isolation=isolation,
        )[0]

    def fetch_with_usage(
        self,
        offset: int,
        max_records: int = 500,
        max_bytes: Optional[int] = None,
        isolation: str = "committed",
    ) -> tuple[list[StoredRecord], int]:
        # API parity with PartitionLog so the differential property
        # suite (and the fetch bench) drive both implementations through
        # the same signature.  A flat log is never replication-managed,
        # so both isolation levels serve to the log end — mirroring the
        # segmented log's unmanaged (``None`` high watermark) behaviour.
        if isolation != "committed" and isolation != "uncommitted":
            raise ValueError(
                f"isolation must be 'committed' or 'uncommitted', "
                f"got {isolation!r}"
            )
        with self._lock:
            if offset == self._next_offset:
                return [], 0
            if offset < self._log_start_offset or offset > self._next_offset:
                raise OffsetOutOfRangeError(
                    f"offset {offset} out of range "
                    f"[{self._log_start_offset}, {self._next_offset}] "
                    f"for {self.topic}-{self.partition}"
                )
            index = self._index_of(offset)
            if max_bytes is None:
                return self._records[index : index + max_records], 0
            out = []
            budget = max_bytes
            for stored in self._records[index:]:
                if len(out) >= max_records:
                    break
                size = stored.size_bytes()
                if out and size > budget:
                    break
                out.append(stored)
                budget -= size
            return out, max_bytes - budget

    def read_all(self) -> Sequence[StoredRecord]:
        with self._lock:
            return tuple(self._records)

    def __iter__(self) -> Iterator[StoredRecord]:
        return iter(self.read_all())

    def offset_for_timestamp(self, timestamp: float) -> Optional[int]:
        """Earliest offset whose *append time* is >= ``timestamp``.

        Matches the segmented log's (fixed) semantics so the differential
        suite can compare outcomes; the O(n) timestamp-list rebuild per
        lookup is the cost the segmented implementation removed.
        """
        with self._lock:
            timestamps = [r.append_time for r in self._records]
            index = bisect.bisect_left(timestamps, timestamp)
            if index >= len(self._records):
                return None
            return self._records[index].offset

    # ------------------------------------------------------------------ #
    def truncate_before(self, offset: int) -> int:
        with self._lock:
            offset = max(offset, self._log_start_offset)
            offset = min(offset, self._next_offset)
            index = self._index_of(offset) if offset < self._next_offset else len(self._records)
            removed = index
            if removed > 0:
                self._records = self._records[index:]
            self._log_start_offset = offset
            return removed

    def replace_records(self, records: Sequence[StoredRecord]) -> None:
        with self._lock:
            offsets = [r.offset for r in records]
            if offsets != sorted(offsets):
                raise ValueError("compacted records must stay offset-ordered")
            if records:
                if records[0].offset < self._log_start_offset:
                    raise ValueError("compaction may not resurrect truncated offsets")
                if records[-1].offset >= self._next_offset:
                    raise ValueError("compaction may not invent future offsets")
            self._records = list(records)

    def _index_of(self, offset: int) -> int:
        lo = offset - self._log_start_offset
        if 0 <= lo < len(self._records) and self._records[lo].offset == offset:
            return lo
        offsets = [r.offset for r in self._records]
        return bisect.bisect_left(offsets, offset)


# ---------------------------------------------------------------------- #
# The pre-segment retention walks (benchmark baseline)
# ---------------------------------------------------------------------- #
def flat_enforce_time_retention(
    log: FlatPartitionLog, retention_seconds: float, now: Optional[float] = None
) -> int:
    """The old O(retained records) time-retention walk over ``read_all()``."""
    now = now if now is not None else time.time()  # baseline path; lint: ignore[RAW-CLOCK]
    cutoff = now - retention_seconds
    keep_from: Optional[int] = None
    for stored in log.read_all():
        if stored.append_time >= cutoff:
            keep_from = stored.offset
            break
    if keep_from is None:
        return log.truncate_before(log.log_end_offset)
    return log.truncate_before(keep_from)


def flat_enforce_size_retention(log: FlatPartitionLog, retention_bytes: int) -> int:
    """The old full-copy, full-re-sum size-retention pass."""
    removed = 0
    records = list(log.read_all())
    total = sum(r.size_bytes() for r in records)
    index = 0
    while total > retention_bytes and index < len(records):
        total -= records[index].size_bytes()
        index += 1
    if index > 0:
        removed = log.truncate_before(records[index - 1].offset + 1)
    return removed


def flat_compact(log: FlatPartitionLog) -> int:
    """The old snapshot-filter-replace compaction (with its lost-append race)."""
    records = list(log.read_all())
    latest_for_key: Dict[str, int] = {}
    for stored in records:
        if stored.key is not None:
            latest_for_key[str(stored.key)] = stored.offset
    kept: List[StoredRecord] = [
        stored
        for stored in records
        if stored.key is None or latest_for_key[str(stored.key)] == stored.offset
    ]
    removed = len(records) - len(kept)
    if removed:
        # The race this API carries is exactly what the flat-log
        # retention baseline must preserve.
        log.replace_records(kept)  # lint: ignore[DEPRECATED-API]
    return removed
