"""Committed-offset storage for consumer groups.

Offset commits are what give Octopus its at-least-once delivery guarantee
(Section IV-F): a consumer that crashes after processing but before
committing will re-read the uncommitted records when it (or another group
member) takes over the partition.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class CommittedOffset:
    """A single committed position for (group, topic, partition)."""

    offset: int
    metadata: str = ""
    commit_time: float = 0.0


class OffsetStore:
    """Thread-safe store of committed offsets, keyed by consumer group."""

    def __init__(self) -> None:
        self._offsets: Dict[Tuple[str, str, int], CommittedOffset] = {}
        self._lock = threading.RLock()

    def commit(
        self,
        group_id: str,
        topic: str,
        partition: int,
        offset: int,
        metadata: str = "",
    ) -> CommittedOffset:
        """Record that ``group_id`` has processed everything below ``offset``."""
        if offset < 0:
            raise ValueError("committed offset must be >= 0")
        committed = CommittedOffset(offset=offset, metadata=metadata, commit_time=time.time())
        with self._lock:
            self._offsets[(group_id, topic, partition)] = committed
        return committed

    def committed(self, group_id: str, topic: str, partition: int) -> Optional[int]:
        """Last committed offset, or ``None`` if the group never committed."""
        with self._lock:
            entry = self._offsets.get((group_id, topic, partition))
            return entry.offset if entry is not None else None

    def committed_entry(
        self, group_id: str, topic: str, partition: int
    ) -> Optional[CommittedOffset]:
        with self._lock:
            return self._offsets.get((group_id, topic, partition))

    def group_offsets(self, group_id: str) -> Dict[Tuple[str, int], int]:
        """All committed offsets for a group, keyed by (topic, partition)."""
        with self._lock:
            return {
                (topic, partition): entry.offset
                for (gid, topic, partition), entry in self._offsets.items()
                if gid == group_id
            }

    def reset_group(self, group_id: str, topic: Optional[str] = None) -> int:
        """Delete commits for a group (optionally only one topic); return count."""
        with self._lock:
            keys = [
                key
                for key in self._offsets
                if key[0] == group_id and (topic is None or key[1] == topic)
            ]
            for key in keys:
                del self._offsets[key]
            return len(keys)

    def lag(
        self, group_id: str, topic: str, partition: int, log_end_offset: int
    ) -> int:
        """Consumer lag: records appended but not yet committed by the group."""
        committed = self.committed(group_id, topic, partition)
        position = committed if committed is not None else 0
        return max(0, log_end_offset - position)
