"""Committed-offset storage for consumer groups.

Offset commits are what give Octopus its at-least-once delivery guarantee
(Section IV-F): a consumer that crashes after processing but before
committing will re-read the uncommitted records when it (or another group
member) takes over the partition.

Commits are stored indexed per group, so group-scoped operations
(:meth:`OffsetStore.group_offsets`, :meth:`OffsetStore.reset_group`,
:meth:`OffsetStore.commit_many`) touch only that group's partitions
instead of scanning every group's keys.  :meth:`OffsetStore.commit_many`
is the batched group-commit primitive: a whole assignment's offsets are
validated up front and installed under a single lock acquisition, the
storage half of :meth:`repro.fabric.cluster.FabricCluster.commit_group`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, NamedTuple, Optional, Tuple, Union

from repro.common.clock import Clock, SystemClock
from repro.common.sync import create_rlock
from repro.fabric.errors import InvalidRequestError

TopicPartition = Tuple[str, int]


class CommittedOffset(NamedTuple):
    """A single committed position for (group, topic, partition)."""

    offset: int
    metadata: str = ""
    commit_time: float = 0.0


#: Shapes accepted by :meth:`OffsetStore.commit_many`: a mapping of
#: ``(topic, partition) -> offset`` or an iterable of such pairs.
GroupOffsets = Union[
    Mapping[TopicPartition, int],
    Iterable[Tuple[TopicPartition, int]],
]


class OffsetStore:
    """Thread-safe store of committed offsets, indexed by consumer group."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._clock: Clock = clock if clock is not None else SystemClock()
        #: group_id -> {(topic, partition) -> CommittedOffset}.  The
        #: per-group index keeps group-scoped reads/writes O(partitions of
        #: that group) rather than O(all commits in the store).
        self._groups: Dict[str, Dict[TopicPartition, CommittedOffset]] = {}  #: guarded_by _lock
        self._lock = create_rlock("OffsetStore")

    def commit(
        self,
        group_id: str,
        topic: str,
        partition: int,
        offset: int,
        metadata: str = "",
    ) -> CommittedOffset:
        """Record that ``group_id`` has processed everything below ``offset``."""
        if offset < 0:
            raise InvalidRequestError("committed offset must be >= 0")
        committed = CommittedOffset(
            offset=offset, metadata=metadata, commit_time=self._clock.now()
        )
        with self._lock:
            self._groups.setdefault(group_id, {})[(topic, partition)] = committed
        return committed

    def commit_many(
        self,
        group_id: str,
        offsets: GroupOffsets,
        metadata: str = "",
    ) -> Dict[TopicPartition, CommittedOffset]:
        """Commit a whole group's offsets under one lock acquisition.

        The batch is atomic: every offset is validated before any is
        written, so a negative offset anywhere in the batch leaves the
        store untouched.  All entries share one commit timestamp.
        """
        items = offsets.items() if isinstance(offsets, Mapping) else offsets
        now = self._clock.now()
        # Build (and thereby validate) every entry before touching the
        # store: a bad offset anywhere must leave no partial commit, and
        # entry construction costs nothing under the lock this way.
        out: Dict[TopicPartition, CommittedOffset] = {}
        for tp, offset in items:
            if offset < 0:
                raise InvalidRequestError(
                    f"committed offset must be >= 0 (got {offset} for {tp[0]}-{tp[1]})"
                )
            out[tp] = CommittedOffset(offset, metadata, now)
        with self._lock:
            group = self._groups.get(group_id)
            if group is None:
                group = self._groups[group_id] = {}
            group.update(out)
        return out

    def committed(self, group_id: str, topic: str, partition: int) -> Optional[int]:
        """Last committed offset, or ``None`` if the group never committed."""
        with self._lock:
            group = self._groups.get(group_id)
            if group is None:
                return None
            entry = group.get((topic, partition))
            return entry.offset if entry is not None else None

    def committed_entry(
        self, group_id: str, topic: str, partition: int
    ) -> Optional[CommittedOffset]:
        with self._lock:
            group = self._groups.get(group_id)
            return group.get((topic, partition)) if group is not None else None

    def group_offsets(self, group_id: str) -> Dict[TopicPartition, int]:
        """All committed offsets for a group, keyed by (topic, partition)."""
        with self._lock:
            group = self._groups.get(group_id, {})
            return {tp: entry.offset for tp, entry in group.items()}

    def reset_group(self, group_id: str, topic: Optional[str] = None) -> int:
        """Delete commits for a group (optionally only one topic); return count."""
        with self._lock:
            group = self._groups.get(group_id)
            if group is None:
                return 0
            if topic is None:
                del self._groups[group_id]
                return len(group)
            keys = [tp for tp in group if tp[0] == topic]
            for tp in keys:
                del group[tp]
            if not group:
                del self._groups[group_id]
            return len(keys)

    def lag(
        self,
        group_id: str,
        topic: str,
        partition: int,
        log_end_offset: int,
        beginning_offset: int = 0,
    ) -> int:
        """Consumer lag: records appended but not yet committed by the group.

        The group's position is clamped against ``beginning_offset``: a
        group that never committed starts at the log's beginning (not 0),
        and a commit that retention has since truncated past cannot make
        the group look further behind than the oldest record that still
        exists.  Without the clamp, a retention-truncated topic reports
        phantom lag that no amount of consuming can drain.
        """
        committed = self.committed(group_id, topic, partition)
        position = committed if committed is not None else beginning_offset
        position = max(position, beginning_offset)
        return max(0, log_end_offset - position)
