"""Consumer-group coordination: membership, generations and assignment.

Every Octopus trigger gets its own consumer group so that many Lambda
instances can drain a topic without disturbing other consumers
(Section IV-D).  The coordinator implements a simplified version of the
Kafka group protocol with *incremental cooperative rebalancing*:

* Partition assignment is **sticky**: :func:`sticky_cooperative_assign`
  preserves each surviving member's prior partitions and moves only the
  minimal delta needed to rebalance, instead of reshuffling everything
  the way an eager range assignor does.
* Rebalances that must move partitions between surviving members run in
  **two phases**.  First the coordinator bumps the generation and shrinks
  each member to the partitions it *retains* — members keep fetching
  those throughout.  Once every member has acknowledged the revocation
  via :meth:`ConsumerGroupCoordinator.sync`, the coordinator bumps the
  generation again and installs the full target assignment.  Membership
  changes that only hand out free partitions (first join, a leave, an
  eviction) complete in a single phase.
* **Liveness is real**: each member carries a ``last_heartbeat`` stamped
  by the coordinator's injectable clock, and members whose heartbeat is
  older than their session timeout are evicted — their partitions
  re-stick to the survivors.  Expiry runs on the coordinator's own read
  paths (``join``/``generation``), so a group whose consumers keep
  polling sheds dead members without an external reaper.

Commits carrying a stale generation are rejected, which is what produces
at-least-once (rather than at-most-once) semantics across rebalances.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.common.clock import Clock, SystemClock
from repro.common.sync import create_rlock
from repro.fabric.errors import IllegalGenerationError

TopicPartition = Tuple[str, int]

#: Rebalance phases a group can be in.
PHASE_STABLE = "stable"
PHASE_REVOKING = "revoking"


@dataclass
class GroupMember:
    """One consumer process inside a group."""

    member_id: str
    client_id: str
    joined_at: float = 0.0
    last_heartbeat: float = 0.0
    assignment: List[TopicPartition] = field(default_factory=list)
    #: Partitions the member's *client* may still be fetching: its last
    #: acknowledged assignment plus anything granted since.  ``assignment``
    #: can shrink ahead of the client during a revoke phase; ``owned``
    #: shrinks only when the member acknowledges via ``sync``.  A
    #: partition is never granted to another member while it is still in
    #: someone's ``owned`` set — that is what makes revocation safe.
    owned: List[TopicPartition] = field(default_factory=list)
    #: Per-member session timeout; ``None`` falls back to the coordinator's.
    session_timeout: Optional[float] = None


@dataclass
class GroupState:
    """Coordinator-side state of one consumer group."""

    group_id: str
    generation: int = 0
    members: Dict[str, GroupMember] = field(default_factory=dict)
    subscribed_topics: List[str] = field(default_factory=list)
    #: Last partition list supplied by a join/leave — used when the
    #: coordinator itself triggers a rebalance (eviction).
    partitions: List[TopicPartition] = field(default_factory=list)
    #: Two-phase rebalance state: while ``phase == PHASE_REVOKING``,
    #: ``pending`` holds the target assignment that is installed once
    #: every member in ``synced`` has acknowledged its revocation.
    phase: str = PHASE_STABLE
    pending: Optional[Dict[str, List[TopicPartition]]] = None
    synced: Set[str] = field(default_factory=set)


def range_assign(
    members: Sequence[str], partitions: Sequence[TopicPartition]
) -> Dict[str, List[TopicPartition]]:
    """Deterministic *eager* range assignment of partitions to members.

    Partitions are sorted, members are sorted, and each member receives a
    contiguous range.  The union of all assignments is exactly the input
    partition set and no partition is assigned twice.  Kept as the
    baseline the cooperative assignor is benchmarked against (and for
    callers that want a stateless assignor).
    """
    assignment: Dict[str, List[TopicPartition]] = {m: [] for m in members}
    if not members or not partitions:
        return assignment
    ordered_members = sorted(members)
    ordered_parts = sorted(partitions)
    n_members = len(ordered_members)
    base, extra = divmod(len(ordered_parts), n_members)
    index = 0
    for rank, member in enumerate(ordered_members):
        count = base + (1 if rank < extra else 0)
        assignment[member] = ordered_parts[index : index + count]
        index += count
    return assignment


def sticky_cooperative_assign(
    members: Sequence[str],
    partitions: Sequence[TopicPartition],
    prior: Mapping[str, Sequence[TopicPartition]],
) -> Dict[str, List[TopicPartition]]:
    """Sticky assignment: keep prior owners, move only the minimal delta.

    Each member's quota is ``floor(P/N)`` or ``ceil(P/N)`` partitions;
    the larger quotas go to the members that already hold the most (ties
    broken by member id), which maximises stickiness.  A member over its
    quota releases only its excess; released and previously-unowned
    partitions fill the members below quota, fewest-loaded first.

    Invariants (property-tested):

    * the union of all assignments is exactly ``partitions``, with no
      partition assigned twice;
    * every member's new assignment intersected with its prior one is a
      subset of that prior assignment, and a member is never revoked
      below its quota — members not over quota keep everything they had;
    * assignment sizes are balanced within one partition.
    """
    if not members:
        return {}
    ordered_members = sorted(members)
    assignment: Dict[str, List[TopicPartition]] = {m: [] for m in ordered_members}
    if not partitions:
        return assignment
    partition_set = set(partitions)
    # Retained: each member keeps the prior partitions that still exist.
    # A partition claimed by two priors (impossible via the coordinator,
    # possible for direct callers) goes to the first member in id order.
    seen: Set[TopicPartition] = set()
    retained: Dict[str, List[TopicPartition]] = {}
    for member in ordered_members:
        keep: List[TopicPartition] = []
        for tp in prior.get(member, ()):
            if tp in partition_set and tp not in seen:
                seen.add(tp)
                keep.append(tp)
        retained[member] = sorted(keep)
    pool: List[TopicPartition] = sorted(partition_set - seen)
    base, extra = divmod(len(partition_set), len(ordered_members))
    by_load = sorted(ordered_members, key=lambda m: (-len(retained[m]), m))
    quota = {
        member: base + 1 if rank < extra else base
        for rank, member in enumerate(by_load)
    }
    # Shed: members over quota release their highest-sorted excess.
    for member in ordered_members:
        kept = retained[member]
        if len(kept) > quota[member]:
            pool.extend(kept[quota[member] :])
            kept = kept[: quota[member]]
        assignment[member] = kept
    pool.sort()
    # Fill: hand each free partition to the least-loaded under-quota member.
    for tp in pool:
        member = min(
            (m for m in ordered_members if len(assignment[m]) < quota[m]),
            key=lambda m: (len(assignment[m]), m),
        )
        assignment[member].append(tp)
    return assignment


class ConsumerGroupCoordinator:
    """Coordinates membership and partition assignment for all groups."""

    def __init__(
        self, *, session_timeout: float = 30.0, clock: Optional[Clock] = None
    ) -> None:
        self._groups: Dict[str, GroupState] = {}  #: guarded_by _lock
        self._lock = create_rlock("ConsumerGroupCoordinator")
        self._member_counter = itertools.count()
        self.session_timeout = session_timeout
        self.clock: Clock = clock or SystemClock()

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    def join(
        self,
        group_id: str,
        client_id: str,
        topics: Sequence[str],
        partitions: Sequence[TopicPartition],
        *,
        session_timeout: Optional[float] = None,
    ) -> tuple[str, int, List[TopicPartition]]:
        """Add a member to ``group_id`` and start a cooperative rebalance.

        Returns ``(member_id, generation, assignment)`` for the new member.
        When surviving members must give up partitions, the returned
        assignment covers only partitions that were already free; the rest
        arrive after every member has acknowledged its revocation (see
        :meth:`sync`).  Dead members are swept before the new assignment
        is computed.
        """
        with self._lock:
            now = self.clock.now()
            group = self._groups.setdefault(group_id, GroupState(group_id=group_id))
            group.partitions = list(partitions)
            self._expire_locked(group, now)
            member_id = f"{client_id}-{next(self._member_counter)}"
            group.members[member_id] = GroupMember(
                member_id=member_id,
                client_id=client_id,
                joined_at=now,
                last_heartbeat=now,
                session_timeout=session_timeout,
            )
            for topic in topics:
                if topic not in group.subscribed_topics:
                    group.subscribed_topics.append(topic)
            self._begin_rebalance(group)
            return member_id, group.generation, list(group.members[member_id].assignment)

    def leave(
        self,
        group_id: str,
        member_id: str,
        partitions: Optional[Sequence[TopicPartition]] = None,
    ) -> int:
        """Remove a member and rebalance; returns the new generation.

        A graceful leave only *frees* partitions, so the survivors keep
        everything they had and the rebalance completes in one phase.
        """
        with self._lock:
            group = self._groups.get(group_id)
            if group is None or member_id not in group.members:
                return group.generation if group else 0
            if partitions is not None:
                group.partitions = list(partitions)
            del group.members[member_id]
            group.synced.discard(member_id)
            self._begin_rebalance(group)
            return group.generation

    def heartbeat(self, group_id: str, member_id: str, generation: int) -> None:
        """Record liveness; raises if the member's generation is stale.

        Liveness is recorded *before* the staleness check: a member that
        lags a rebalance is still alive and must not be evicted while it
        catches up.
        """
        with self._lock:
            group = self._groups.get(group_id)
            if group is None or member_id not in group.members:
                raise IllegalGenerationError(f"unknown member {member_id} in {group_id}")
            group.members[member_id].last_heartbeat = self.clock.now()
            if generation != group.generation:
                raise IllegalGenerationError(
                    f"member {member_id} has generation {generation}, "
                    f"group is at {group.generation}"
                )

    def sync(
        self, group_id: str, member_id: str, generation: int
    ) -> tuple[int, List[TopicPartition]]:
        """Acknowledge ``generation``'s (revocation) assignment.

        During the revoke phase the acknowledgement means "I have stopped
        fetching and committed everything I was told to give up".  When
        the last member acknowledges, the coordinator promotes the pending
        target assignment under a fresh generation.  Returns the group's
        current ``(generation, member assignment)`` — callers loop until
        the returned generation matches the one they adopted.

        Raises :class:`IllegalGenerationError` for an unknown (e.g.
        evicted) member, which a live consumer answers by rejoining.  A
        stale ``generation`` is not an error: the caller simply observes
        the newer generation in the return value and adopts it.
        """
        with self._lock:
            group = self._groups.get(group_id)
            if group is None or member_id not in group.members:
                raise IllegalGenerationError(f"unknown member {member_id} in {group_id}")
            member = group.members[member_id]
            if generation == group.generation:
                # The ack confirms the client has released everything
                # outside its current assignment — its partitions outside
                # it become grantable.
                member.owned = list(member.assignment)
                if group.phase == PHASE_REVOKING:
                    group.synced.add(member_id)
                    if set(group.members) <= group.synced:
                        self._complete_rebalance(group)
            return group.generation, list(member.assignment)

    def update_partitions(
        self, group_id: str, partitions: Sequence[TopicPartition]
    ) -> int:
        """Refresh the group's partition set (topic growth); returns the generation.

        Consumers call this when they observe the cluster's metadata epoch
        move: if the partition set actually changed, a cooperative
        rebalance distributes the new (free) partitions — typically in a
        single phase, since nothing is taken from anyone.
        """
        with self._lock:
            group = self._groups.get(group_id)
            if group is None:
                return 0
            if set(partitions) != set(group.partitions):
                group.partitions = list(partitions)
                self._begin_rebalance(group)
            return group.generation

    def expire_members(
        self,
        group_id: str,
        partitions: Optional[Sequence[TopicPartition]] = None,
        now: Optional[float] = None,
    ) -> List[str]:
        """Evict members whose heartbeat is older than their session timeout."""
        with self._lock:
            group = self._groups.get(group_id)
            if group is None:
                return []
            if partitions is not None:
                group.partitions = list(partitions)
            return self._expire_locked(
                group, now if now is not None else self.clock.now()
            )

    # ------------------------------------------------------------------ #
    # Assignment queries
    # ------------------------------------------------------------------ #
    def assignment(self, group_id: str, member_id: str) -> List[TopicPartition]:
        with self._lock:
            group = self._groups.get(group_id)
            if group is None or member_id not in group.members:
                return []
            return list(group.members[member_id].assignment)

    def generation(self, group_id: str) -> int:
        """The group's current generation; sweeps expired members first.

        This is the signal consumers poll, so piggy-backing expiry here
        means a group whose live members keep polling evicts dead ones
        without any external driver.
        """
        with self._lock:
            group = self._groups.get(group_id)
            if group is None:
                return 0
            self._expire_locked(group, self.clock.now())
            return group.generation

    def current_assignment(
        self, group_id: str, member_id: str
    ) -> tuple[int, List[TopicPartition]]:
        """Atomic ``(generation, assignment)`` snapshot for one member.

        Consumers adopting a rebalance must read both under one lock
        acquisition: separate ``generation()``/``assignment()`` calls can
        interleave with another member's join, pairing generation G with
        G+1's assignment — the commit-on-revoke for that adoption would
        then be rejected as stale and silently lost.  Sweeps expired
        members, like :meth:`generation`.  An unknown (evicted) member
        reads an empty assignment.
        """
        with self._lock:
            group = self._groups.get(group_id)
            if group is None:
                return 0, []
            self._expire_locked(group, self.clock.now())
            member = group.members.get(member_id)
            return group.generation, list(member.assignment) if member else []

    def rebalance_phase(self, group_id: str) -> str:
        with self._lock:
            group = self._groups.get(group_id)
            return group.phase if group else PHASE_STABLE

    def members(self, group_id: str) -> List[str]:
        with self._lock:
            group = self._groups.get(group_id)
            return sorted(group.members) if group else []

    def group_ids(self) -> List[str]:
        """Every group the coordinator knows (admin introspection)."""
        with self._lock:
            return sorted(self._groups)

    def describe(self, group_id: str) -> dict:
        with self._lock:
            group = self._groups.get(group_id)
            if group is None:
                return {
                    "group_id": group_id,
                    "members": [],
                    "generation": 0,
                    "phase": PHASE_STABLE,
                }
            return {
                "group_id": group_id,
                "generation": group.generation,
                "phase": group.phase,
                "subscribed_topics": list(group.subscribed_topics),
                "members": {
                    mid: list(member.assignment) for mid, member in group.members.items()
                },
            }

    def validate_generation(self, group_id: str, member_id: str, generation: int) -> None:
        """Used by the offset-commit path to reject stale commits."""
        with self._lock:
            group = self._groups.get(group_id)
            if group is None or member_id not in group.members:
                raise IllegalGenerationError(f"unknown member {member_id} in {group_id}")
            if generation != group.generation:
                raise IllegalGenerationError(
                    f"stale generation {generation} (current {group.generation})"
                )

    # ------------------------------------------------------------------ #
    # Internals (call with the lock held)
    # ------------------------------------------------------------------ #
    def _expire_locked(self, group: GroupState, now: float) -> List[str]:
        expired = [
            mid
            for mid, member in group.members.items()
            if now - member.last_heartbeat
            > (member.session_timeout or self.session_timeout)
        ]
        for member_id in expired:
            del group.members[member_id]
            group.synced.discard(member_id)
        if expired:
            self._begin_rebalance(group)
        elif group.phase == PHASE_REVOKING and set(group.members) <= group.synced:
            # Every still-live member has acknowledged (the blocker left or
            # was evicted through another path): finish the rebalance.
            self._complete_rebalance(group)
        return expired

    def _begin_rebalance(self, group: GroupState) -> None:
        """Compute the sticky target and enter the appropriate phase.

        Both stickiness and the revoke decision are computed from each
        member's ``owned`` set — what its client may *actually* still be
        fetching — not from the coordinator-side assignment, which may
        already have shrunk in an earlier, still-unacknowledged revoke
        phase.  A partition someone still owns is never granted elsewhere
        in the same step: if any owned partition must move, enter the
        revoke phase (members shrink to what they retain, the target
        waits in ``pending`` until everyone syncs).  If the change only
        hands out genuinely free partitions, install the target in one
        step.
        """
        group.synced = set()
        if not group.members:
            group.generation += 1
            group.phase = PHASE_STABLE
            group.pending = None
            return
        prior = {mid: list(m.owned) for mid, m in group.members.items()}
        target = sticky_cooperative_assign(
            list(group.members), group.partitions, prior
        )
        needs_revoke = False
        for mid, member in group.members.items():
            keep = set(target.get(mid, ()))
            if any(tp not in keep for tp in member.owned):
                needs_revoke = True
                break
        group.generation += 1
        if needs_revoke:
            group.phase = PHASE_REVOKING
            group.pending = target
            for mid, member in group.members.items():
                keep = set(target.get(mid, ()))
                member.assignment = [tp for tp in member.owned if tp in keep]
        else:
            group.phase = PHASE_STABLE
            group.pending = None
            for mid, member in group.members.items():
                member.assignment = list(target.get(mid, ()))
                member.owned = list(member.assignment)

    def _complete_rebalance(self, group: GroupState) -> None:
        """Promote the pending target: the assign phase of the rebalance.

        Only reached once every member has acknowledged its revocation,
        so each member's ``owned`` set equals its retained assignment and
        the granted partitions are genuinely free.
        """
        if group.pending is None:
            group.phase = PHASE_STABLE
            group.synced = set()
            return
        group.generation += 1
        for mid, member in group.members.items():
            member.assignment = list(group.pending.get(mid, ()))
            member.owned = list(member.assignment)
        group.phase = PHASE_STABLE
        group.pending = None
        group.synced = set()
