"""Consumer-group coordination: membership, generations and assignment.

Every Octopus trigger gets its own consumer group so that many Lambda
instances can drain a topic without disturbing other consumers
(Section IV-D).  The coordinator implements a simplified version of the
Kafka group protocol: members join/leave, each membership change bumps the
group generation, and partitions are redistributed with a range-style
assignor.  Commits carrying a stale generation are rejected, which is what
produces at-least-once (rather than at-most-once) semantics across
rebalances.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fabric.errors import IllegalGenerationError

TopicPartition = Tuple[str, int]


@dataclass
class GroupMember:
    """One consumer process inside a group."""

    member_id: str
    client_id: str
    joined_at: float = field(default_factory=time.time)
    last_heartbeat: float = field(default_factory=time.time)
    assignment: List[TopicPartition] = field(default_factory=list)


@dataclass
class GroupState:
    """Coordinator-side state of one consumer group."""

    group_id: str
    generation: int = 0
    members: Dict[str, GroupMember] = field(default_factory=dict)
    subscribed_topics: List[str] = field(default_factory=list)


def range_assign(
    members: Sequence[str], partitions: Sequence[TopicPartition]
) -> Dict[str, List[TopicPartition]]:
    """Deterministic range assignment of partitions to members.

    Partitions are sorted, members are sorted, and each member receives a
    contiguous range.  The union of all assignments is exactly the input
    partition set and no partition is assigned twice — invariants the
    property-based tests check.
    """
    assignment: Dict[str, List[TopicPartition]] = {m: [] for m in members}
    if not members or not partitions:
        return assignment
    ordered_members = sorted(members)
    ordered_parts = sorted(partitions)
    n_members = len(ordered_members)
    base, extra = divmod(len(ordered_parts), n_members)
    index = 0
    for rank, member in enumerate(ordered_members):
        count = base + (1 if rank < extra else 0)
        assignment[member] = ordered_parts[index : index + count]
        index += count
    return assignment


class ConsumerGroupCoordinator:
    """Coordinates membership and partition assignment for all groups."""

    def __init__(self, *, session_timeout: float = 30.0) -> None:
        self._groups: Dict[str, GroupState] = {}
        self._lock = threading.RLock()
        self._member_counter = itertools.count()
        self.session_timeout = session_timeout

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    def join(
        self,
        group_id: str,
        client_id: str,
        topics: Sequence[str],
        partitions: Sequence[TopicPartition],
    ) -> tuple[str, int, List[TopicPartition]]:
        """Add a member to ``group_id`` and rebalance.

        Returns ``(member_id, generation, assignment)`` for the new member.
        """
        with self._lock:
            group = self._groups.setdefault(group_id, GroupState(group_id=group_id))
            member_id = f"{client_id}-{next(self._member_counter)}"
            group.members[member_id] = GroupMember(member_id=member_id, client_id=client_id)
            for topic in topics:
                if topic not in group.subscribed_topics:
                    group.subscribed_topics.append(topic)
            self._rebalance(group, partitions)
            return member_id, group.generation, list(group.members[member_id].assignment)

    def leave(
        self, group_id: str, member_id: str, partitions: Sequence[TopicPartition]
    ) -> int:
        """Remove a member and rebalance; returns the new generation."""
        with self._lock:
            group = self._groups.get(group_id)
            if group is None or member_id not in group.members:
                return self._groups[group_id].generation if group_id in self._groups else 0
            del group.members[member_id]
            self._rebalance(group, partitions)
            return group.generation

    def heartbeat(self, group_id: str, member_id: str, generation: int) -> None:
        """Record liveness; raises if the member's generation is stale."""
        with self._lock:
            group = self._groups.get(group_id)
            if group is None or member_id not in group.members:
                raise IllegalGenerationError(f"unknown member {member_id} in {group_id}")
            if generation != group.generation:
                raise IllegalGenerationError(
                    f"member {member_id} has generation {generation}, "
                    f"group is at {group.generation}"
                )
            group.members[member_id].last_heartbeat = time.time()

    def expire_members(
        self, group_id: str, partitions: Sequence[TopicPartition], now: Optional[float] = None
    ) -> List[str]:
        """Evict members whose heartbeat is older than the session timeout."""
        now = now if now is not None else time.time()
        with self._lock:
            group = self._groups.get(group_id)
            if group is None:
                return []
            expired = [
                mid
                for mid, member in group.members.items()
                if now - member.last_heartbeat > self.session_timeout
            ]
            for member_id in expired:
                del group.members[member_id]
            if expired:
                self._rebalance(group, partitions)
            return expired

    # ------------------------------------------------------------------ #
    # Assignment queries
    # ------------------------------------------------------------------ #
    def assignment(self, group_id: str, member_id: str) -> List[TopicPartition]:
        with self._lock:
            group = self._groups.get(group_id)
            if group is None or member_id not in group.members:
                return []
            return list(group.members[member_id].assignment)

    def generation(self, group_id: str) -> int:
        with self._lock:
            group = self._groups.get(group_id)
            return group.generation if group else 0

    def members(self, group_id: str) -> List[str]:
        with self._lock:
            group = self._groups.get(group_id)
            return sorted(group.members) if group else []

    def group_ids(self) -> List[str]:
        """Every group the coordinator knows (admin introspection)."""
        with self._lock:
            return sorted(self._groups)

    def describe(self, group_id: str) -> dict:
        with self._lock:
            group = self._groups.get(group_id)
            if group is None:
                return {"group_id": group_id, "members": [], "generation": 0}
            return {
                "group_id": group_id,
                "generation": group.generation,
                "subscribed_topics": list(group.subscribed_topics),
                "members": {
                    mid: list(member.assignment) for mid, member in group.members.items()
                },
            }

    def validate_generation(self, group_id: str, member_id: str, generation: int) -> None:
        """Used by the offset-commit path to reject stale commits."""
        with self._lock:
            group = self._groups.get(group_id)
            if group is None or member_id not in group.members:
                raise IllegalGenerationError(f"unknown member {member_id} in {group_id}")
            if generation != group.generation:
                raise IllegalGenerationError(
                    f"stale generation {generation} (current {group.generation})"
                )

    # ------------------------------------------------------------------ #
    def _rebalance(self, group: GroupState, partitions: Sequence[TopicPartition]) -> None:
        group.generation += 1
        assignment = range_assign(list(group.members), partitions)
        for member_id, member in group.members.items():
            member.assignment = assignment.get(member_id, [])
