"""Exception hierarchy for the event fabric.

Mirrors the error classes a Kafka client distinguishes between: retriable
transport/leadership errors versus fatal configuration or authorization
errors.  The Octopus SDK producer (Section IV-F of the paper) retries a
configurable number of times on retriable errors before surfacing the
failure to the caller.
"""

from __future__ import annotations


class FabricError(Exception):
    """Base class for all event-fabric errors."""

    #: Whether a client may transparently retry the failed operation.
    retriable: bool = False


class UnknownTopicError(FabricError):
    """The requested topic does not exist on the cluster."""


class UnknownPartitionError(FabricError):
    """The requested partition index does not exist for the topic."""


class TopicAlreadyExistsError(FabricError):
    """Attempted to create a topic whose name is already registered."""


class NotLeaderError(FabricError):
    """The broker contacted is not the leader for the partition.

    Retriable: clients refresh metadata and retry against the new leader.
    """

    retriable = True


class NotEnoughReplicasError(FabricError):
    """``acks="all"`` was requested but the ISR is below ``min.insync.replicas``."""

    retriable = True


class BrokerUnavailableError(FabricError):
    """The broker is offline (failure injection or administrative stop)."""

    retriable = True


class AuthorizationError(FabricError):
    """The principal is not authorized for the operation on the resource."""


class OffsetOutOfRangeError(FabricError):
    """A fetch requested an offset below the log start or above the end."""


class RecordTooLargeError(FabricError):
    """A record exceeds the topic's ``max.message.bytes`` limit."""


class CorruptBatchError(FabricError):
    """A packed batch failed CRC32 verification (or its header is invalid).

    Raised on broker ingress (``append_packed``/``append_stored`` of a
    CRC-stamped chunk) and on the first decode of a stored chunk, so a
    corrupted batch can never reach a consumer as silently-wrong records.
    Retriable: a reader can re-fetch (the replica recovery path rebuilds a
    follower from its leader's intact copy).
    """

    retriable = True


class UnknownCodecError(FabricError):
    """A batch names a compression codec this process has not registered."""


class InvalidConfigError(FabricError):
    """A topic, producer or consumer configuration value is invalid."""


class RebalanceInProgressError(FabricError):
    """The consumer group is rebalancing; the member must rejoin."""

    retriable = True


class IllegalGenerationError(FabricError):
    """A consumer presented a stale group generation id."""

    retriable = True


class CommitFailedError(FabricError):
    """An offset commit was rejected (stale member or generation)."""
