"""Exception hierarchy for the event fabric.

Mirrors the error classes a Kafka client distinguishes between: retriable
transport/leadership errors versus fatal configuration or authorization
errors.  The Octopus SDK producer (Section IV-F of the paper) retries a
configurable number of times on retriable errors before surfacing the
failure to the caller.

Every error in the taxonomy derives from :class:`FabricError` and carries
two machine-readable attributes the HTTP gateway maps onto the wire
(:mod:`repro.gateway.errors`):

``code``
    A stable ``UPPER_SNAKE`` identifier, unique per class.  Clients
    dispatch on the code, never on the human-readable message.
``retriable``
    Whether a client may transparently retry the failed operation.

Raising anything that is *not* a :class:`FabricError` from the produce,
fetch or commit paths is a bug: the gateway would have to answer 500
INTERNAL for it.  :class:`InvalidRequestError` doubles as ``ValueError``
so call sites that historically raised ``ValueError`` stay
backward-compatible.
"""

from __future__ import annotations


class FabricError(Exception):
    """Base class for all event-fabric errors."""

    #: Stable machine-readable identifier for this error class.
    code: str = "FABRIC_ERROR"

    #: Whether a client may transparently retry the failed operation.
    retriable: bool = False


class UnknownTopicError(FabricError):
    """The requested topic does not exist on the cluster."""

    code = "UNKNOWN_TOPIC"


class UnknownPartitionError(FabricError):
    """The requested partition index does not exist for the topic."""

    code = "UNKNOWN_PARTITION"


class UnknownBrokerError(FabricError):
    """The requested broker id is not part of the cluster."""

    code = "UNKNOWN_BROKER"


class UnknownGroupError(FabricError):
    """The requested consumer group is not known to the coordinator."""

    code = "UNKNOWN_GROUP"


class TopicAlreadyExistsError(FabricError):
    """Attempted to create a topic whose name is already registered."""

    code = "TOPIC_ALREADY_EXISTS"


class NotLeaderError(FabricError):
    """The broker contacted is not the leader for the partition.

    Retriable: clients refresh metadata and retry against the new leader.
    """

    code = "NOT_LEADER"
    retriable = True


class FencedLeaderError(FabricError):
    """A writer presented a leader epoch older than the log has seen.

    Elections stamp a monotonically increasing epoch on the partition
    assignment; a deposed leader that keeps writing (network partition,
    paused process) is *fenced* — its appends and replication pushes are
    rejected rather than silently forked into a second history.
    Retriable: the stale writer refreshes metadata, discovers the new
    leader and epoch, and routes there.
    """

    code = "FENCED_LEADER"
    retriable = True


class NotEnoughReplicasError(FabricError):
    """``acks="all"`` was requested but the ISR is below ``min.insync.replicas``."""

    code = "NOT_ENOUGH_REPLICAS"
    retriable = True


class BrokerUnavailableError(FabricError):
    """The broker is offline (failure injection or administrative stop)."""

    code = "BROKER_UNAVAILABLE"
    retriable = True


class AuthorizationError(FabricError):
    """The principal is not authorized for the operation on the resource."""

    code = "AUTHORIZATION_FAILED"


class OffsetOutOfRangeError(FabricError):
    """A fetch requested an offset below the log start or above the end."""

    code = "OFFSET_OUT_OF_RANGE"


class RecordTooLargeError(FabricError):
    """A record exceeds the topic's ``max.message.bytes`` limit."""

    code = "RECORD_TOO_LARGE"


class CorruptBatchError(FabricError):
    """A packed batch failed CRC32 verification (or its header is invalid).

    Raised on broker ingress (``append_packed``/``append_stored`` of a
    CRC-stamped chunk) and on the first decode of a stored chunk, so a
    corrupted batch can never reach a consumer as silently-wrong records.
    Retriable: a reader can re-fetch (the replica recovery path rebuilds a
    follower from its leader's intact copy).
    """

    code = "CORRUPT_BATCH"
    retriable = True


class UnknownCodecError(FabricError):
    """A batch names a compression codec this process has not registered."""

    code = "UNKNOWN_CODEC"


class InvalidConfigError(FabricError):
    """A topic, producer or consumer configuration value is invalid."""

    code = "INVALID_CONFIG"


class InvalidRequestError(FabricError, ValueError):
    """A data-plane request is malformed (bad offset, missing member id...).

    Subclasses ``ValueError`` for backward compatibility: the offset and
    commit paths raised bare ``ValueError`` before the error taxonomy was
    frozen, and callers catching that keep working.
    """

    code = "INVALID_REQUEST"


class RebalanceInProgressError(FabricError):
    """The consumer group is rebalancing; the member must rejoin."""

    code = "REBALANCE_IN_PROGRESS"
    retriable = True


class IllegalGenerationError(FabricError):
    """A consumer presented a stale group generation id."""

    code = "ILLEGAL_GENERATION"
    retriable = True


class CommitFailedError(FabricError):
    """An offset commit was rejected (stale member or generation)."""

    code = "COMMIT_FAILED"


__all__ = [
    "FabricError",
    "UnknownTopicError",
    "UnknownPartitionError",
    "UnknownBrokerError",
    "UnknownGroupError",
    "TopicAlreadyExistsError",
    "NotLeaderError",
    "FencedLeaderError",
    "NotEnoughReplicasError",
    "BrokerUnavailableError",
    "AuthorizationError",
    "OffsetOutOfRangeError",
    "RecordTooLargeError",
    "CorruptBatchError",
    "UnknownCodecError",
    "InvalidConfigError",
    "InvalidRequestError",
    "RebalanceInProgressError",
    "IllegalGenerationError",
    "CommitFailedError",
]
