"""Administrative (control-plane) client for the event fabric.

The paper's system splits a managed control plane — topic, ACL and broker
administration through the Octopus Web Service — from the client data
plane that serves event traffic (Sections IV-B/IV-F).
:class:`FabricAdmin` is the control-plane half of that split for the
in-process fabric: every operation that changes cluster *metadata* (topic
creation/deletion, config and partition updates, broker failure
injection/restoration, retention runs, authorizer wiring) lives here,
behind one authorization path, while :class:`~repro.fabric.cluster.FabricCluster`
keeps only the hot data plane (produce, fetch, offsets).

Like Kafka's ``AdminClient``, a :class:`FabricAdmin` is a *view* onto a
cluster rather than a separate server: it is cheap to construct, several
may exist per cluster (e.g. one per principal), and all of them mutate
the same underlying metadata under the cluster's lock.

The old ``FabricCluster`` control-plane methods still work but emit
:class:`DeprecationWarning` and delegate here; see the README migration
table.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.fabric.errors import (
    AuthorizationError,
    TopicAlreadyExistsError,
    UnknownBrokerError,
    UnknownPartitionError,
    UnknownTopicError,
)
from repro.fabric.record import StoredRecord
from repro.fabric.replication import PartitionAssignment
from repro.fabric.topic import Topic, TopicConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.fabric.broker import Broker
    from repro.fabric.cluster import Authorizer, FabricCluster

#: Admin authorizer callback signature: (principal, operation, resource) -> bool.
#: Operations are control-plane verbs (``CREATE_TOPIC``, ``FAIL_BROKER``, ...),
#: resources are ``topic:<name>``, ``broker:<id>`` or ``cluster``.
AdminAuthorizer = Callable[[Optional[str], str, str], bool]


class FabricAdmin:
    """Control-plane operations on a :class:`FabricCluster`.

    Parameters
    ----------
    cluster:
        The cluster whose metadata this admin manages.
    principal:
        Identity performing the administrative operations; checked by
        ``authorizer`` on every call.
    authorizer:
        Optional ``(principal, operation, resource) -> bool`` hook — the
        single authorization path every control operation goes through.
        ``None`` allows everything (in-process trusted controller).
    """

    def __init__(
        self,
        cluster: "FabricCluster",
        *,
        principal: Optional[str] = None,
        authorizer: Optional[AdminAuthorizer] = None,
    ) -> None:
        self._cluster = cluster
        self.principal = principal
        self._authorizer = authorizer

    # ------------------------------------------------------------------ #
    # The one authorization path
    # ------------------------------------------------------------------ #
    def _authorize(self, operation: str, resource: str) -> None:
        if self._authorizer is not None and not self._authorizer(
            self.principal, operation, resource
        ):
            raise AuthorizationError(
                f"principal {self.principal!r} is not authorized to "
                f"{operation} on {resource}"
            )

    # ------------------------------------------------------------------ #
    # Topic administration
    # ------------------------------------------------------------------ #
    def create_topic(self, name: str, config: Optional[TopicConfig] = None) -> Topic:
        """Create a topic and place its partition replicas on brokers."""
        self._authorize("CREATE_TOPIC", f"topic:{name}")
        c = self._cluster
        config = config or TopicConfig()
        config.validate()
        with c._lock:
            if name in c._topics:
                raise TopicAlreadyExistsError(f"topic {name!r} already exists")
            if config.replication_factor > len(c._brokers):
                config = config.with_updates(replication_factor=len(c._brokers))
            topic = Topic(name=name, config=config, clock=c.clock)
            c._topics[name] = topic
            for partition in range(config.num_partitions):
                self._place_partition(topic, partition)
            return topic

    def delete_topic(self, name: str) -> None:
        """Remove a topic, its broker replicas and its replication state."""
        self._authorize("DELETE_TOPIC", f"topic:{name}")
        c = self._cluster
        with c._lock:
            topic = c._topics.pop(name, None)
            if topic is None:
                raise UnknownTopicError(f"topic {name!r} does not exist")
            for broker in c._brokers.values():
                for partition in range(topic.num_partitions):
                    broker.drop_replica(name, partition)
            c._replication.unregister_topic(name)
        c._bump_metadata_epoch()

    def update_topic_config(self, name: str, **updates) -> TopicConfig:
        """Apply config updates; new partitions get replica placements."""
        self._authorize("ALTER_TOPIC", f"topic:{name}")
        c = self._cluster
        with c._lock:
            topic = c.topic(name)
            before = topic.num_partitions
            config = topic.update_config(**updates)
            for partition in range(before, topic.num_partitions):
                self._place_partition(topic, partition)
            grew = topic.num_partitions > before
        if grew:
            # Producers cache per-topic partition counts keyed on the
            # metadata epoch; bumping it makes them route to the new
            # partitions immediately instead of after metadata max-age.
            c._bump_metadata_epoch()
        return config

    def set_partitions(self, name: str, num_partitions: int) -> TopicConfig:
        """``POST /topic/<topic>/partitions`` — grow the partition count."""
        return self.update_topic_config(name, num_partitions=num_partitions)

    def _place_partition(self, topic: Topic, partition: int) -> PartitionAssignment:
        """Round-robin replica placement across brokers, leader = first replica."""
        c = self._cluster
        broker_ids = sorted(c._brokers)
        rf = min(topic.config.replication_factor, len(broker_ids))
        start = c._placement_cursor
        c._placement_cursor += 1
        replicas = [broker_ids[(start + i) % len(broker_ids)] for i in range(rf)]
        for broker_id in replicas:
            c._brokers[broker_id].create_replica(
                topic.name, partition, **topic.config.log_kwargs()
            )
        assignment = PartitionAssignment(
            topic=topic.name, partition=partition, replicas=replicas, leader=replicas[0]
        )
        c._replication.register(assignment)
        return assignment

    # ------------------------------------------------------------------ #
    # Broker administration / failure injection
    # ------------------------------------------------------------------ #
    def _broker(self, broker_id: int) -> "Broker":
        try:
            return self._cluster._brokers[broker_id]
        except KeyError:
            raise UnknownBrokerError(
                f"broker {broker_id} is not part of cluster {self._cluster.name!r}"
            ) from None

    def fail_broker(self, broker_id: int) -> List[PartitionAssignment]:
        """Crash a broker and re-elect leaders for its partitions."""
        self._authorize("FAIL_BROKER", f"broker:{broker_id}")
        c = self._cluster
        self._broker(broker_id).shutdown()
        c._bump_metadata_epoch()
        return c._replication.handle_broker_failure(broker_id)

    def restore_broker(self, broker_id: int) -> None:
        """Bring a broker back; followers re-sync on the next replication pass."""
        self._authorize("RESTORE_BROKER", f"broker:{broker_id}")
        c = self._cluster
        self._broker(broker_id).restart()
        c._bump_metadata_epoch()
        for assignment in c._replication.all_assignments():
            if broker_id in assignment.replicas:
                c._replication.replicate_from_leader(
                    assignment.topic, assignment.partition
                )

    # ------------------------------------------------------------------ #
    # Retention
    # ------------------------------------------------------------------ #
    def run_retention(self, topic_name: Optional[str] = None) -> Dict[str, Dict[int, int]]:
        """Run retention/compaction on one topic or every topic."""
        self._authorize("RUN_RETENTION", f"topic:{topic_name}" if topic_name else "cluster")
        c = self._cluster
        with c._lock:
            names = [topic_name] if topic_name else list(c._topics)
        removed: Dict[str, Dict[int, int]] = {}
        for name in names:
            removed[name] = c._retention.enforce(c.topic(name))
            # Propagate truncation to broker replicas so fetches agree.
            for assignment in c._replication.assignments_for_topic(name):
                canonical = c.topic(name).partition(assignment.partition)
                for broker_id in assignment.replicas:
                    broker = c._brokers[broker_id]
                    if broker.online and broker.has_replica(name, assignment.partition):
                        broker.replica(name, assignment.partition).truncate_before(
                            canonical.log_start_offset
                        )
        return removed

    # ------------------------------------------------------------------ #
    # Authorization wiring and persistence
    # ------------------------------------------------------------------ #
    def set_authorizer(self, authorizer: Optional["Authorizer"]) -> None:
        """Install (or clear) the data-plane per-topic authorizer.

        Bumps the cluster's auth epoch, so standing fetch sessions discard
        their cached per-topic authorization and re-check on their next
        fetch.  ACL stores whose *internal* state changes without the
        authorizer callable being replaced should call
        :meth:`FabricCluster.bump_auth_epoch` on every mutation (see
        :meth:`repro.auth.acl.AclStore.add_invalidation_listener`).
        """
        self._authorize("SET_AUTHORIZER", "cluster")
        self._cluster._set_authorizer(authorizer)

    def add_persistence_sink(
        self, sink: Callable[[str, int, StoredRecord], None]
    ) -> None:
        """Register a callback invoked for every record on persistent topics.

        This models the red "persistence to reliable cloud storage" arrow in
        Figure 2 of the paper; :mod:`repro.services.storage` provides an
        S3-like sink.
        """
        self._authorize("ADD_PERSISTENCE_SINK", "cluster")
        self._cluster._persistence_sinks.append(sink)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def describe_cluster(self) -> dict:
        self._authorize("DESCRIBE", "cluster")
        c = self._cluster
        with c._lock:
            return {
                "name": c.name,
                "brokers": [b.describe() for b in c._brokers.values()],
                "topics": sorted(c._topics),
            }

    def describe_topic(self, name: str) -> dict:
        self._authorize("DESCRIBE", f"topic:{name}")
        return self._cluster.topic(name).describe()

    def describe_segments(self, name: str, partition: Optional[int] = None) -> dict:
        """Per-partition storage-segment layout of a topic's canonical logs.

        Returns, per partition, the log start/end offsets, retained byte
        counts — ``size_bytes`` is *physical* (compressed chunks at their
        stored size, what retention charges), ``logical_size_bytes`` the
        uncompressed record bytes consumers receive — and every segment's
        ``{base_offset, end_offset, records, size_bytes,
        logical_size_bytes, min_append_time, max_append_time, sealed,
        contiguous}`` — the operator's view of what a retention run would
        drop whole, where the active segment sits, and how much batch
        compression is actually saving on disk.  Each partition also
        carries its replication placement — ``leader``, ``leader_epoch``,
        ``isr`` and the leader log's ``high_watermark`` — so the failover
        state (who leads, under which fencing epoch, how far committed
        reads go) is inspectable from the same call.  Pass ``partition``
        to restrict the answer to one partition.
        """
        self._authorize("DESCRIBE", f"topic:{name}")
        c = self._cluster
        topic = c.topic(name)
        indices = [partition] if partition is not None else sorted(topic.partitions())
        partitions = {}
        for index in indices:
            log = topic.partition(index)
            entry = {
                "log_start_offset": log.log_start_offset,
                "log_end_offset": log.log_end_offset,
                "size_bytes": log.size_bytes,
                "logical_size_bytes": log.logical_size_bytes,
                "num_segments": log.num_segments,
                "segments": log.describe_segments(),
            }
            try:
                assignment = c._replication.assignment(name, index)
            except UnknownPartitionError:
                assignment = None  # canonical-only topic: no placement yet
            if assignment is not None:
                entry["leader"] = assignment.leader
                entry["leader_epoch"] = assignment.leader_epoch
                entry["isr"] = list(assignment.isr)
                leader_broker = c._brokers.get(assignment.leader)
                entry["high_watermark"] = (
                    leader_broker.replica(name, index).high_watermark
                    if leader_broker is not None
                    and leader_broker.online
                    and leader_broker.has_replica(name, index)
                    else None
                )
            partitions[index] = entry
        return {"topic": name, "partitions": partitions}

    def list_topics(self) -> List[str]:
        self._authorize("DESCRIBE", "cluster")
        return self._cluster.topics()

    def list_groups(self) -> List[str]:
        self._authorize("DESCRIBE", "cluster")
        return self._cluster.groups.group_ids()

    def describe_group(self, group_id: str) -> dict:
        self._authorize("DESCRIBE", f"group:{group_id}")
        return self._cluster.groups.describe(group_id)
