"""The fabric cluster: brokers, controller, topic metadata and the data path.

:class:`FabricCluster` is the stand-in for an MSK deployment (Table II of
the paper): a set of brokers plus the controller logic that creates
topics, places replicas, routes produces to partition leaders, serves
fetches and coordinates consumer groups.  Per-topic authorization is
delegated to an optional :class:`~repro.auth.acl.AclStore`-compatible
authorizer, matching how MSK enforces IAM ACLs maintained through the
Octopus Web Service.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.fabric.broker import Broker, BrokerSpec
from repro.fabric.errors import (
    AuthorizationError,
    BrokerUnavailableError,
    NotLeaderError,
    TopicAlreadyExistsError,
    UnknownTopicError,
)
from repro.fabric.group import ConsumerGroupCoordinator, TopicPartition
from repro.fabric.offsets import OffsetStore
from repro.fabric.record import EventRecord, RecordMetadata, StoredRecord
from repro.fabric.replication import PartitionAssignment, ReplicationManager
from repro.fabric.retention import RetentionEnforcer
from repro.fabric.topic import Topic, TopicConfig

#: Authorizer callback signature: (principal, operation, topic) -> bool.
Authorizer = Callable[[Optional[str], str, str], bool]


def _allow_all(principal: Optional[str], operation: str, topic: str) -> bool:
    return True


class FabricCluster:
    """An in-process cluster of brokers exposing a Kafka-like API."""

    def __init__(
        self,
        num_brokers: int = 2,
        *,
        instance_type: str = "kafka.m5.large",
        vcpus_per_broker: int = 2,
        memory_gb_per_broker: int = 8,
        authorizer: Optional[Authorizer] = None,
        name: str = "octopus-msk",
    ) -> None:
        if num_brokers < 1:
            raise ValueError("a cluster needs at least one broker")
        self.name = name
        zones = ("us-east-1a", "us-east-1b", "us-east-1c", "us-east-1d")
        self._brokers: Dict[int, Broker] = {
            broker_id: Broker(
                BrokerSpec(
                    broker_id=broker_id,
                    instance_type=instance_type,
                    vcpus=vcpus_per_broker,
                    memory_gb=memory_gb_per_broker,
                    availability_zone=zones[broker_id % len(zones)],
                )
            )
            for broker_id in range(num_brokers)
        }
        self._topics: Dict[str, Topic] = {}
        self._lock = threading.RLock()
        self._replication = ReplicationManager(self._brokers)
        self._offsets = OffsetStore()
        self._groups = ConsumerGroupCoordinator()
        self._retention = RetentionEnforcer()
        self._authorizer: Authorizer = authorizer or _allow_all
        self._append_locks: Dict[Tuple[str, int], threading.Lock] = {}
        self._placement_cursor = 0
        self._persistence_sinks: List[Callable[[str, int, StoredRecord], None]] = []

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def brokers(self) -> Dict[int, Broker]:
        return dict(self._brokers)

    @property
    def offsets(self) -> OffsetStore:
        return self._offsets

    @property
    def groups(self) -> ConsumerGroupCoordinator:
        return self._groups

    @property
    def replication(self) -> ReplicationManager:
        return self._replication

    def set_authorizer(self, authorizer: Optional[Authorizer]) -> None:
        self._authorizer = authorizer or _allow_all

    def add_persistence_sink(
        self, sink: Callable[[str, int, StoredRecord], None]
    ) -> None:
        """Register a callback invoked for every record on persistent topics.

        This models the red "persistence to reliable cloud storage" arrow in
        Figure 2 of the paper; :mod:`repro.services.storage` provides an
        S3-like sink.
        """
        self._persistence_sinks.append(sink)

    def describe(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "brokers": [b.describe() for b in self._brokers.values()],
                "topics": sorted(self._topics),
            }

    # ------------------------------------------------------------------ #
    # Topic management (controller)
    # ------------------------------------------------------------------ #
    def create_topic(
        self,
        name: str,
        config: Optional[TopicConfig] = None,
        *,
        principal: Optional[str] = None,
    ) -> Topic:
        """Create a topic and place its partition replicas on brokers."""
        config = config or TopicConfig()
        config.validate()
        with self._lock:
            if name in self._topics:
                raise TopicAlreadyExistsError(f"topic {name!r} already exists")
            if config.replication_factor > len(self._brokers):
                config = config.with_updates(replication_factor=len(self._brokers))
            topic = Topic(name=name, config=config)
            self._topics[name] = topic
            for partition in range(config.num_partitions):
                self._place_partition(topic, partition)
            return topic

    def delete_topic(self, name: str, *, principal: Optional[str] = None) -> None:
        # Administrative operation: ownership checks happen in the control
        # plane (OWS TopicService); the data-plane authorizer is not consulted.
        with self._lock:
            topic = self._topics.pop(name, None)
            if topic is None:
                raise UnknownTopicError(f"topic {name!r} does not exist")
            for broker in self._brokers.values():
                for partition in range(topic.num_partitions):
                    broker.drop_replica(name, partition)
            self._replication.unregister_topic(name)

    def topic(self, name: str) -> Topic:
        with self._lock:
            try:
                return self._topics[name]
            except KeyError:
                raise UnknownTopicError(f"topic {name!r} does not exist") from None

    def has_topic(self, name: str) -> bool:
        with self._lock:
            return name in self._topics

    def topics(self) -> List[str]:
        with self._lock:
            return sorted(self._topics)

    def update_topic_config(self, name: str, **updates) -> TopicConfig:
        """Apply config updates; new partitions get replica placements."""
        with self._lock:
            topic = self.topic(name)
            before = topic.num_partitions
            config = topic.update_config(**updates)
            for partition in range(before, topic.num_partitions):
                self._place_partition(topic, partition)
            return config

    def set_partitions(self, name: str, num_partitions: int) -> TopicConfig:
        """``POST /topic/<topic>/partitions`` — grow the partition count."""
        return self.update_topic_config(name, num_partitions=num_partitions)

    def _place_partition(self, topic: Topic, partition: int) -> PartitionAssignment:
        """Round-robin replica placement across brokers, leader = first replica."""
        broker_ids = sorted(self._brokers)
        rf = min(topic.config.replication_factor, len(broker_ids))
        start = self._placement_cursor
        self._placement_cursor += 1
        replicas = [broker_ids[(start + i) % len(broker_ids)] for i in range(rf)]
        for broker_id in replicas:
            self._brokers[broker_id].create_replica(
                topic.name,
                partition,
                max_message_bytes=topic.config.max_message_bytes,
            )
        assignment = PartitionAssignment(
            topic=topic.name, partition=partition, replicas=replicas, leader=replicas[0]
        )
        self._replication.register(assignment)
        return assignment

    # ------------------------------------------------------------------ #
    # Authorization
    # ------------------------------------------------------------------ #
    def _authorize(self, principal: Optional[str], operation: str, topic: str) -> None:
        if not self._authorizer(principal, operation, topic):
            raise AuthorizationError(
                f"principal {principal!r} is not authorized to {operation} topic {topic!r}"
            )

    # ------------------------------------------------------------------ #
    # Data path: produce
    # ------------------------------------------------------------------ #
    def _leader_for(self, topic_name: str, partition: int) -> Broker:
        """Resolve the online leader broker for a partition (shared fast path).

        Used by produce, batched produce and fetch so metadata lookup and
        leader election behave identically on every data-plane route.
        """
        assignment = self._replication.assignment(topic_name, partition)
        leader = self._brokers[assignment.leader]
        if not leader.online:
            new_leader = self._replication.elect_leader(topic_name, partition)
            if new_leader is None:
                raise BrokerUnavailableError(
                    f"no online replica for {topic_name}-{partition}"
                )
            leader = self._brokers[new_leader]
        return leader

    def append(
        self,
        topic_name: str,
        partition: int,
        record: EventRecord,
        *,
        acks: object = 1,
        principal: Optional[str] = None,
    ) -> RecordMetadata:
        """Append one record to a partition leader.

        ``acks`` follows Kafka semantics: ``0`` (fire and forget), ``1``
        (leader has written) or ``"all"`` (ISR must satisfy
        ``min.insync.replicas``).
        """
        return self.append_batch(
            topic_name, partition, [record], acks=acks, principal=principal
        )[0]

    def append_batch(
        self,
        topic_name: str,
        partition: int,
        records: Sequence[EventRecord],
        *,
        acks: object = 1,
        principal: Optional[str] = None,
    ) -> List[RecordMetadata]:
        """Append a whole batch of records to a partition leader.

        This is the batched data plane: one authorization check, one
        metadata lookup, one leader resolution, one leader-log lock
        round-trip and one follower-replication pass for the entire batch,
        instead of one of each per record.  ``acks`` semantics match
        :meth:`append` and apply to the batch as a unit.
        """
        records = list(records)
        if not records:
            return []
        self._authorize(principal, "WRITE", topic_name)
        topic = self.topic(topic_name)
        canonical = topic.partition(partition)  # validates the partition exists
        leader = self._leader_for(topic_name, partition)
        with self._lock:
            append_lock = self._append_locks.setdefault(
                (topic_name, partition), threading.Lock()
            )
        # The per-partition lock makes leader append + canonical mirror one
        # atomic step: without it a concurrent producer could mirror a later
        # batch first, leaving this batch permanently absent from the
        # canonical view that retention and metrics operate on.
        with append_lock:
            offsets = leader.append_batch(topic_name, partition, records)
            # Mirror into the logical topic view: adopt the leader's stored
            # records rather than re-wrapping them — append_stored skips any
            # prefix the canonical log already holds.
            if canonical.log_end_offset <= offsets[-1]:
                canonical.append_stored(
                    leader.fetch(
                        topic_name, partition, offsets[0],
                        max_records=len(records), max_bytes=None,
                    )
                )
        if acks == "all":
            self._replication.check_min_isr(
                topic_name, partition, topic.config.min_insync_replicas
            )
        elif acks in (1, "1"):
            # Leader write already durable; followers catch up asynchronously.
            pass
        # acks == 0: nothing further.
        self._replication.replicate_from_leader(topic_name, partition)
        if topic.config.persist_to_store:
            for offset, record in zip(offsets, records):
                stored = StoredRecord(
                    offset=offset, record=record, append_time=record.timestamp
                )
                for sink in self._persistence_sinks:
                    sink(topic_name, partition, stored)
        return [
            RecordMetadata(
                topic=topic_name,
                partition=partition,
                offset=offset,
                timestamp=record.timestamp,
                serialized_size=record.size_bytes(),
            )
            for offset, record in zip(offsets, records)
        ]

    # ------------------------------------------------------------------ #
    # Data path: fetch
    # ------------------------------------------------------------------ #
    def fetch(
        self,
        topic_name: str,
        partition: int,
        offset: int,
        *,
        max_records: int = 500,
        max_bytes: Optional[int] = None,
        principal: Optional[str] = None,
    ) -> List[StoredRecord]:
        """Fetch records from the partition leader starting at ``offset``."""
        self._authorize(principal, "READ", topic_name)
        self.topic(topic_name)
        leader = self._leader_for(topic_name, partition)
        return leader.fetch(
            topic_name, partition, offset, max_records=max_records, max_bytes=max_bytes
        )

    def end_offsets(self, topic_name: str) -> Dict[int, int]:
        """Log-end offsets per partition, read from the current leaders."""
        self.topic(topic_name)
        out: Dict[int, int] = {}
        for assignment in self._replication.assignments_for_topic(topic_name):
            leader = self._brokers[assignment.leader]
            if not leader.online:
                elected = self._replication.elect_leader(
                    topic_name, assignment.partition
                )
                if elected is None:
                    out[assignment.partition] = 0
                    continue
                leader = self._brokers[elected]
            out[assignment.partition] = leader.replica(
                topic_name, assignment.partition
            ).log_end_offset
        return out

    def beginning_offsets(self, topic_name: str) -> Dict[int, int]:
        self.topic(topic_name)
        out: Dict[int, int] = {}
        for assignment in self._replication.assignments_for_topic(topic_name):
            leader = self._brokers[assignment.leader]
            out[assignment.partition] = leader.replica(
                topic_name, assignment.partition
            ).log_start_offset
        return out

    def partitions_for(self, topic_name: str) -> List[TopicPartition]:
        topic = self.topic(topic_name)
        return [(topic_name, index) for index in range(topic.num_partitions)]

    def total_lag(self, group_id: str, topic_name: str) -> int:
        """Aggregate consumer lag of a group over a topic (processing pressure)."""
        lag = 0
        for partition, end in self.end_offsets(topic_name).items():
            lag += self._offsets.lag(group_id, topic_name, partition, end)
        return lag

    # ------------------------------------------------------------------ #
    # Failure injection and maintenance
    # ------------------------------------------------------------------ #
    def fail_broker(self, broker_id: int) -> List[PartitionAssignment]:
        """Crash a broker and re-elect leaders for its partitions."""
        self._brokers[broker_id].shutdown()
        return self._replication.handle_broker_failure(broker_id)

    def restore_broker(self, broker_id: int) -> None:
        """Bring a broker back; followers re-sync on the next replication pass."""
        self._brokers[broker_id].restart()
        for assignment in self._replication.all_assignments():
            if broker_id in assignment.replicas:
                self._replication.replicate_from_leader(
                    assignment.topic, assignment.partition
                )

    def run_retention(self, topic_name: Optional[str] = None) -> Dict[str, Dict[int, int]]:
        """Run retention/compaction on one topic or every topic."""
        with self._lock:
            names = [topic_name] if topic_name else list(self._topics)
        removed: Dict[str, Dict[int, int]] = {}
        for name in names:
            removed[name] = self._retention.enforce(self.topic(name))
            # Propagate truncation to broker replicas so fetches agree.
            for assignment in self._replication.assignments_for_topic(name):
                canonical = self.topic(name).partition(assignment.partition)
                for broker_id in assignment.replicas:
                    broker = self._brokers[broker_id]
                    if broker.online and broker.has_replica(name, assignment.partition):
                        broker.replica(name, assignment.partition).truncate_before(
                            canonical.log_start_offset
                        )
        return removed
