"""The fabric cluster: brokers, controller, topic metadata and the data path.

:class:`FabricCluster` is the stand-in for an MSK deployment (Table II of
the paper): a set of brokers plus the controller logic that creates
topics, places replicas, routes produces to partition leaders, serves
fetches and coordinates consumer groups.  Per-topic authorization is
delegated to an optional :class:`~repro.auth.acl.AclStore`-compatible
authorizer, matching how MSK enforces IAM ACLs maintained through the
Octopus Web Service.
"""

from __future__ import annotations

import threading
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.fabric.broker import Broker, BrokerSpec
from repro.fabric.errors import (
    AuthorizationError,
    BrokerUnavailableError,
    NotLeaderError,
    TopicAlreadyExistsError,
    UnknownTopicError,
)
from repro.fabric.group import ConsumerGroupCoordinator, TopicPartition
from repro.fabric.offsets import OffsetStore
from repro.fabric.record import EventRecord, RecordMetadata, StoredRecord
from repro.fabric.replication import PartitionAssignment, ReplicationManager
from repro.fabric.retention import RetentionEnforcer
from repro.fabric.topic import Topic, TopicConfig

#: Authorizer callback signature: (principal, operation, topic) -> bool.
Authorizer = Callable[[Optional[str], str, str], bool]


def _allow_all(principal: Optional[str], operation: str, topic: str) -> bool:
    return True


class FetchRequest(NamedTuple):
    """One partition's slice of a multi-partition fetch.

    ``max_records`` is an optional per-partition cap layered *under* the
    session-wide record cap — ``None`` means the partition may use whatever
    remains of the session budget.
    """

    topic: str
    partition: int
    offset: int
    max_records: Optional[int] = None


#: Shapes accepted by :meth:`FabricCluster.fetch_many` / :meth:`FetchSession.fetch`:
#: a mapping of ``(topic, partition) -> offset`` or an ordered iterable of
#: :class:`FetchRequest`-compatible tuples.
FetchRequests = Union[
    Mapping[TopicPartition, int],
    Iterable[Union[FetchRequest, Tuple[str, int, int]]],
]


class FetchSession:
    """A reader's standing context for multi-partition fetches.

    Mirrors Kafka's incremental fetch sessions: the expensive parts of a
    fetch — leader resolution per partition — are cached on the session and
    reused across calls, while authorization is still checked once per
    topic per call.  The cache is invalidated when the cluster's metadata
    epoch moves (broker failure/restore, leader election, topic deletion)
    or when a cached leader is observed offline, so a session held across a
    broker crash transparently fails over to the new leader on its next
    fetch.
    """

    def __init__(self, cluster: "FabricCluster", *, principal: Optional[str] = None) -> None:
        self._cluster = cluster
        self.principal = principal
        #: (topic, partition) -> (leader broker, its replica log).  Caching
        #: the log alongside the broker lets repeat fetches skip the broker's
        #: replica-table lock entirely.
        self._leaders: Dict[TopicPartition, Tuple[Broker, "object"]] = {}
        self._epoch = cluster.metadata_epoch
        # Assignment mode: a standing partition list whose (leader, log)
        # arrays are resolved once and reused verbatim every fetch.
        self._assignment: List[TopicPartition] = []
        self._assignment_topics: Tuple[str, ...] = ()
        self._assignment_brokers: Optional[List[Broker]] = None
        self._assignment_logs: Optional[list] = None

    def invalidate(self) -> None:
        """Drop every cached leader; the next fetch re-resolves from metadata."""
        self._leaders.clear()
        self._assignment_brokers = None
        self._assignment_logs = None

    def cached_leaders(self) -> Dict[TopicPartition, int]:
        """Snapshot of the cached leader broker id per partition (introspection)."""
        return {tp: broker.broker_id for tp, (broker, _) in self._leaders.items()}

    def fetch(
        self,
        requests: FetchRequests,
        *,
        max_records: int = 500,
        max_bytes: Optional[int] = None,
    ) -> Dict[TopicPartition, List[StoredRecord]]:
        """Fetch every requested partition in one pass under shared caps."""
        return self._cluster._session_fetch(
            self,
            _normalize_fetch_requests(requests),
            max_records=max_records,
            max_bytes=max_bytes,
        )

    def set_assignment(self, partitions: Sequence[TopicPartition]) -> None:
        """Declare the standing partition set served by :meth:`fetch_assignment`.

        Mirrors Kafka's incremental fetch sessions: the member's assignment
        is registered once (per rebalance), so per-fetch requests carry only
        offsets, and leader/log resolution happens once per metadata epoch
        instead of once per fetch.
        """
        self._assignment = [(topic, partition) for topic, partition in partitions]
        seen: List[str] = []
        for topic, _ in self._assignment:
            if topic not in seen:
                seen.append(topic)
        self._assignment_topics = tuple(seen)
        self._assignment_brokers = None
        self._assignment_logs = None

    def fetch_assignment(
        self,
        positions: Mapping[TopicPartition, int],
        *,
        start: int = 0,
        max_records: int = 500,
        max_bytes: Optional[int] = None,
    ) -> Dict[TopicPartition, List[StoredRecord]]:
        """Fetch the standing assignment from ``positions`` in one pass.

        ``start`` rotates which partition the session-wide
        ``max_records``/``max_bytes`` budget is charged to first, so a
        caller polling in a loop can keep the budget fair across the
        assignment.  ``positions`` is read during the call only.
        """
        return self._cluster._assignment_fetch(
            self, positions, start, max_records, max_bytes
        )

    def _resolve(self, topic: str, partition: int) -> Tuple[Broker, "object"]:
        """Cached (leader, log) lookup, re-resolving offline/unknown entries."""
        tp = (topic, partition)
        entry = self._leaders.get(tp)
        if entry is None or not entry[0].online:
            broker = self._cluster._leader_for(topic, partition)
            entry = (broker, broker.replica(topic, partition))
            self._leaders[tp] = entry
        return entry


def _normalize_fetch_requests(requests: FetchRequests) -> List[FetchRequest]:
    if isinstance(requests, Mapping):
        return [
            FetchRequest(topic, partition, offset)
            for (topic, partition), offset in requests.items()
        ]
    # Fast path for the common caller (consumer/mirror polls build uniform
    # FetchRequest lists every cycle): no re-wrapping, one type check per
    # element — mixed FetchRequest/tuple lists fall through to the general
    # normalization below.
    if type(requests) is list and all(type(req) is FetchRequest for req in requests):
        return requests
    return [
        req if isinstance(req, FetchRequest) else FetchRequest(*req)
        for req in requests
    ]


class FabricCluster:
    """An in-process cluster of brokers exposing a Kafka-like API."""

    def __init__(
        self,
        num_brokers: int = 2,
        *,
        instance_type: str = "kafka.m5.large",
        vcpus_per_broker: int = 2,
        memory_gb_per_broker: int = 8,
        authorizer: Optional[Authorizer] = None,
        name: str = "octopus-msk",
    ) -> None:
        if num_brokers < 1:
            raise ValueError("a cluster needs at least one broker")
        self.name = name
        zones = ("us-east-1a", "us-east-1b", "us-east-1c", "us-east-1d")
        self._brokers: Dict[int, Broker] = {
            broker_id: Broker(
                BrokerSpec(
                    broker_id=broker_id,
                    instance_type=instance_type,
                    vcpus=vcpus_per_broker,
                    memory_gb=memory_gb_per_broker,
                    availability_zone=zones[broker_id % len(zones)],
                )
            )
            for broker_id in range(num_brokers)
        }
        self._topics: Dict[str, Topic] = {}
        self._lock = threading.RLock()
        self._replication = ReplicationManager(self._brokers)
        self._offsets = OffsetStore()
        self._groups = ConsumerGroupCoordinator()
        self._retention = RetentionEnforcer()
        self._authorizer: Authorizer = authorizer or _allow_all
        self._append_locks: Dict[Tuple[str, int], threading.Lock] = {}
        self._placement_cursor = 0
        self._persistence_sinks: List[Callable[[str, int, StoredRecord], None]] = []
        self._metadata_epoch = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def brokers(self) -> Dict[int, Broker]:
        return dict(self._brokers)

    @property
    def offsets(self) -> OffsetStore:
        return self._offsets

    @property
    def groups(self) -> ConsumerGroupCoordinator:
        return self._groups

    @property
    def replication(self) -> ReplicationManager:
        return self._replication

    @property
    def metadata_epoch(self) -> int:
        """Monotonic counter bumped whenever leadership metadata may change.

        Fetch sessions compare their snapshot against this to decide when
        cached leader resolutions must be discarded.
        """
        with self._lock:
            return self._metadata_epoch

    def _bump_metadata_epoch(self) -> None:
        with self._lock:
            self._metadata_epoch += 1

    def set_authorizer(self, authorizer: Optional[Authorizer]) -> None:
        self._authorizer = authorizer or _allow_all

    def add_persistence_sink(
        self, sink: Callable[[str, int, StoredRecord], None]
    ) -> None:
        """Register a callback invoked for every record on persistent topics.

        This models the red "persistence to reliable cloud storage" arrow in
        Figure 2 of the paper; :mod:`repro.services.storage` provides an
        S3-like sink.
        """
        self._persistence_sinks.append(sink)

    def describe(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "brokers": [b.describe() for b in self._brokers.values()],
                "topics": sorted(self._topics),
            }

    # ------------------------------------------------------------------ #
    # Topic management (controller)
    # ------------------------------------------------------------------ #
    def create_topic(
        self,
        name: str,
        config: Optional[TopicConfig] = None,
        *,
        principal: Optional[str] = None,
    ) -> Topic:
        """Create a topic and place its partition replicas on brokers."""
        config = config or TopicConfig()
        config.validate()
        with self._lock:
            if name in self._topics:
                raise TopicAlreadyExistsError(f"topic {name!r} already exists")
            if config.replication_factor > len(self._brokers):
                config = config.with_updates(replication_factor=len(self._brokers))
            topic = Topic(name=name, config=config)
            self._topics[name] = topic
            for partition in range(config.num_partitions):
                self._place_partition(topic, partition)
            return topic

    def delete_topic(self, name: str, *, principal: Optional[str] = None) -> None:
        # Administrative operation: ownership checks happen in the control
        # plane (OWS TopicService); the data-plane authorizer is not consulted.
        with self._lock:
            topic = self._topics.pop(name, None)
            if topic is None:
                raise UnknownTopicError(f"topic {name!r} does not exist")
            for broker in self._brokers.values():
                for partition in range(topic.num_partitions):
                    broker.drop_replica(name, partition)
            self._replication.unregister_topic(name)
        self._bump_metadata_epoch()

    def topic(self, name: str) -> Topic:
        with self._lock:
            try:
                return self._topics[name]
            except KeyError:
                raise UnknownTopicError(f"topic {name!r} does not exist") from None

    def has_topic(self, name: str) -> bool:
        with self._lock:
            return name in self._topics

    def topics(self) -> List[str]:
        with self._lock:
            return sorted(self._topics)

    def update_topic_config(self, name: str, **updates) -> TopicConfig:
        """Apply config updates; new partitions get replica placements."""
        with self._lock:
            topic = self.topic(name)
            before = topic.num_partitions
            config = topic.update_config(**updates)
            for partition in range(before, topic.num_partitions):
                self._place_partition(topic, partition)
            return config

    def set_partitions(self, name: str, num_partitions: int) -> TopicConfig:
        """``POST /topic/<topic>/partitions`` — grow the partition count."""
        return self.update_topic_config(name, num_partitions=num_partitions)

    def _place_partition(self, topic: Topic, partition: int) -> PartitionAssignment:
        """Round-robin replica placement across brokers, leader = first replica."""
        broker_ids = sorted(self._brokers)
        rf = min(topic.config.replication_factor, len(broker_ids))
        start = self._placement_cursor
        self._placement_cursor += 1
        replicas = [broker_ids[(start + i) % len(broker_ids)] for i in range(rf)]
        for broker_id in replicas:
            self._brokers[broker_id].create_replica(
                topic.name,
                partition,
                max_message_bytes=topic.config.max_message_bytes,
            )
        assignment = PartitionAssignment(
            topic=topic.name, partition=partition, replicas=replicas, leader=replicas[0]
        )
        self._replication.register(assignment)
        return assignment

    # ------------------------------------------------------------------ #
    # Authorization
    # ------------------------------------------------------------------ #
    def _authorize(self, principal: Optional[str], operation: str, topic: str) -> None:
        if not self._authorizer(principal, operation, topic):
            raise AuthorizationError(
                f"principal {principal!r} is not authorized to {operation} topic {topic!r}"
            )

    # ------------------------------------------------------------------ #
    # Data path: produce
    # ------------------------------------------------------------------ #
    def _leader_for(self, topic_name: str, partition: int) -> Broker:
        """Resolve the online leader broker for a partition (shared fast path).

        Used by produce, batched produce and fetch so metadata lookup and
        leader election behave identically on every data-plane route.
        """
        assignment = self._replication.assignment(topic_name, partition)
        leader = self._brokers[assignment.leader]
        if not leader.online:
            new_leader = self._replication.elect_leader(topic_name, partition)
            if new_leader is None:
                raise BrokerUnavailableError(
                    f"no online replica for {topic_name}-{partition}"
                )
            leader = self._brokers[new_leader]
            # Leadership moved: standing fetch sessions must re-resolve.
            self._bump_metadata_epoch()
        return leader

    def append(
        self,
        topic_name: str,
        partition: int,
        record: EventRecord,
        *,
        acks: object = 1,
        principal: Optional[str] = None,
    ) -> RecordMetadata:
        """Append one record to a partition leader.

        ``acks`` follows Kafka semantics: ``0`` (fire and forget), ``1``
        (leader has written) or ``"all"`` (ISR must satisfy
        ``min.insync.replicas``).
        """
        return self.append_batch(
            topic_name, partition, [record], acks=acks, principal=principal
        )[0]

    def append_batch(
        self,
        topic_name: str,
        partition: int,
        records: Sequence[EventRecord],
        *,
        acks: object = 1,
        principal: Optional[str] = None,
    ) -> List[RecordMetadata]:
        """Append a whole batch of records to a partition leader.

        This is the batched data plane: one authorization check, one
        metadata lookup, one leader resolution, one leader-log lock
        round-trip and one follower-replication pass for the entire batch,
        instead of one of each per record.  ``acks`` semantics match
        :meth:`append` and apply to the batch as a unit.
        """
        records = list(records)
        if not records:
            return []
        self._authorize(principal, "WRITE", topic_name)
        topic = self.topic(topic_name)
        canonical = topic.partition(partition)  # validates the partition exists
        leader = self._leader_for(topic_name, partition)
        with self._lock:
            append_lock = self._append_locks.setdefault(
                (topic_name, partition), threading.Lock()
            )
        # The per-partition lock makes leader append + canonical mirror one
        # atomic step: without it a concurrent producer could mirror a later
        # batch first, leaving this batch permanently absent from the
        # canonical view that retention and metrics operate on.
        with append_lock:
            offsets = leader.append_batch(topic_name, partition, records)
            # Mirror into the logical topic view: adopt the leader's stored
            # records rather than re-wrapping them — append_stored skips any
            # prefix the canonical log already holds.
            if canonical.log_end_offset <= offsets[-1]:
                canonical.append_stored(
                    leader.fetch(
                        topic_name, partition, offsets[0],
                        max_records=len(records), max_bytes=None,
                    )
                )
        if acks == "all":
            self._replication.check_min_isr(
                topic_name, partition, topic.config.min_insync_replicas
            )
        elif acks in (1, "1"):
            # Leader write already durable; followers catch up asynchronously.
            pass
        # acks == 0: nothing further.
        self._replication.replicate_from_leader(topic_name, partition)
        if topic.config.persist_to_store:
            for offset, record in zip(offsets, records):
                stored = StoredRecord(
                    offset=offset, record=record, append_time=record.timestamp
                )
                for sink in self._persistence_sinks:
                    sink(topic_name, partition, stored)
        return [
            RecordMetadata(
                topic=topic_name,
                partition=partition,
                offset=offset,
                timestamp=record.timestamp,
                serialized_size=record.size_bytes(),
            )
            for offset, record in zip(offsets, records)
        ]

    # ------------------------------------------------------------------ #
    # Data path: fetch
    # ------------------------------------------------------------------ #
    def fetch(
        self,
        topic_name: str,
        partition: int,
        offset: int,
        *,
        max_records: int = 500,
        max_bytes: Optional[int] = None,
        principal: Optional[str] = None,
    ) -> List[StoredRecord]:
        """Fetch records from the partition leader starting at ``offset``."""
        self._authorize(principal, "READ", topic_name)
        self.topic(topic_name)
        leader = self._leader_for(topic_name, partition)
        return leader.fetch(
            topic_name, partition, offset, max_records=max_records, max_bytes=max_bytes
        )

    def fetch_session(self, *, principal: Optional[str] = None) -> FetchSession:
        """Open a standing fetch session for a reader of this cluster."""
        return FetchSession(self, principal=principal)

    def fetch_many(
        self,
        requests: FetchRequests,
        *,
        max_records: int = 500,
        max_bytes: Optional[int] = None,
        principal: Optional[str] = None,
    ) -> Dict[TopicPartition, List[StoredRecord]]:
        """Fetch several partitions (possibly several topics) in one pass.

        One authorization check per distinct topic, one leader resolution
        per partition, and the ``max_records``/``max_bytes`` caps are
        charged across the whole request set in request order — the
        multi-partition mirror of :meth:`append_batch`.  Long-lived readers
        should hold a :class:`FetchSession` (see :meth:`fetch_session`) so
        leader resolutions are also cached *across* calls.
        """
        return FetchSession(self, principal=principal).fetch(
            requests, max_records=max_records, max_bytes=max_bytes
        )

    def _session_fetch(
        self,
        session: FetchSession,
        requests: List[FetchRequest],
        *,
        max_records: int,
        max_bytes: Optional[int],
    ) -> Dict[TopicPartition, List[StoredRecord]]:
        out: Dict[TopicPartition, List[StoredRecord]] = {}
        if not requests:
            return out
        seen_topics = set()
        for request in requests:
            if request.topic not in seen_topics:
                seen_topics.add(request.topic)
                self._authorize(session.principal, "READ", request.topic)
                self.topic(request.topic)  # raises UnknownTopicError
        epoch = self.metadata_epoch
        if session._epoch != epoch:
            session.invalidate()
            session._epoch = epoch
        # Resolve (leader, log) via the session cache: a dict hit per
        # partition on the hot path, full metadata resolution on a miss.
        # A cached-but-offline leader is caught by the broker's own online
        # check below and handled by the failover path, so no liveness
        # probe is paid per partition here.
        cache_get = session._leaders.get
        brokers: List[Broker] = []
        logs: List[object] = []
        brokers_append = brokers.append
        logs_append = logs.append
        for request in requests:
            tp = (request[0], request[1])
            entry = cache_get(tp)
            if entry is None:
                broker = self._leader_for(request[0], request[1])
                entry = (broker, broker.replica(request[0], request[1]))
                session._leaders[tp] = entry
            brokers_append(entry[0])
            logs_append(entry[1])
        remaining = max_records
        budget = max_bytes
        index = 0
        n = len(requests)
        while index < n and remaining > 0 and (budget is None or budget > 0):
            # Serve the longest run of consecutive requests that share a
            # leader in one broker round trip; request order (and therefore
            # budget fairness) is preserved across runs.  FetchRequest is a
            # NamedTuple, so the slice feeds the broker's tuple protocol
            # without re-packing.
            leader = brokers[index]
            run_start = index
            while index < n and brokers[index] is leader:
                index += 1
            run = requests[run_start:index]
            try:
                served, count, nbytes = leader.fetch_many(
                    run,
                    max_records=remaining,
                    max_bytes=budget,
                    logs=logs[run_start:index],
                )
            except BrokerUnavailableError:
                # The leader crashed between resolution and fetch: fail over
                # per partition and keep charging the same session budget.
                session.invalidate()
                served = {}
                count = 0
                nbytes = 0
                for item in run:
                    fresh, _ = session._resolve(item[0], item[1])
                    sub, sub_count, sub_bytes = fresh.fetch_many(
                        [item],
                        max_records=remaining - count,
                        max_bytes=None if budget is None else budget - nbytes,
                    )
                    served.update(sub)
                    count += sub_count
                    nbytes += sub_bytes
            if out:
                out.update(served)
            else:
                out = served  # single-run fast path: adopt, don't re-insert
            remaining -= count
            if budget is not None:
                budget -= nbytes
        return out

    def _assignment_fetch(
        self,
        session: FetchSession,
        positions: Mapping[TopicPartition, int],
        start: int,
        max_records: int,
        max_bytes: Optional[int],
    ) -> Dict[TopicPartition, List[StoredRecord]]:
        """Serve a session's standing assignment (see :meth:`FetchSession.set_assignment`).

        The steady-state hot path touches, per partition: two array reads,
        one position lookup and one log fetch — authorization is per topic,
        leader/log resolution is amortised across every call of a metadata
        epoch, and liveness is checked once per same-leader run.

        The serve loops below deliberately inline the budget charging that
        :meth:`Broker.fetch_many` also implements: routing through the
        broker would rebuild per-partition request tuples on every call,
        which is precisely the per-fetch work assignment mode removes.
        Keep the charging rules (record cap, byte budget, make-progress
        first record) in lockstep with :meth:`Broker.fetch_many`.
        """
        assignment = session._assignment
        n = len(assignment)
        out: Dict[TopicPartition, List[StoredRecord]] = {}
        if n == 0:
            return out
        for topic in session._assignment_topics:
            self._authorize(session.principal, "READ", topic)
            self.topic(topic)  # raises UnknownTopicError
        epoch = self.metadata_epoch
        if session._epoch != epoch or session._assignment_brokers is None:
            session._epoch = epoch
            session._leaders.clear()
            brokers: List[Broker] = []
            logs: list = []
            for topic, partition in assignment:
                broker = self._leader_for(topic, partition)
                log = broker.replica(topic, partition)
                session._leaders[(topic, partition)] = (broker, log)
                brokers.append(broker)
                logs.append(log)
            session._assignment_brokers = brokers
            session._assignment_logs = logs
        brokers = session._assignment_brokers
        logs = session._assignment_logs
        if start:
            start %= n
            assignment = assignment[start:] + assignment[:start]
            brokers = brokers[start:] + brokers[:start]
            logs = logs[start:] + logs[:start]
        remaining = max_records
        budget = max_bytes
        k = 0
        while k < n and remaining > 0 and (budget is None or budget > 0):
            leader = brokers[k]
            run_start = k
            while k < n and brokers[k] is leader:
                k += 1
            if leader.online:
                if budget is None:
                    for i in range(run_start, k):
                        if remaining <= 0:
                            break
                        tp = assignment[i]
                        records, _ = logs[i].fetch_with_usage(
                            positions[tp], max_records=remaining
                        )
                        if records:
                            out[tp] = records
                            remaining -= len(records)
                else:
                    for i in range(run_start, k):
                        if remaining <= 0 or budget <= 0:
                            break
                        tp = assignment[i]
                        records, used = logs[i].fetch_with_usage(
                            positions[tp], max_records=remaining, max_bytes=budget
                        )
                        if records:
                            out[tp] = records
                            remaining -= len(records)
                            budget -= used
            else:
                # The cached leader crashed since resolution: fail over per
                # partition (electing where needed) and force a full
                # re-resolution on the next call.
                session._assignment_brokers = None
                for i in range(run_start, k):
                    if remaining <= 0 or (budget is not None and budget <= 0):
                        break
                    tp = assignment[i]
                    _, log = session._resolve(tp[0], tp[1])
                    records, used = log.fetch_with_usage(
                        positions[tp], max_records=remaining, max_bytes=budget
                    )
                    if records:
                        out[tp] = records
                        remaining -= len(records)
                        if budget is not None:
                            budget -= used
        return out

    def end_offsets(self, topic_name: str) -> Dict[int, int]:
        """Log-end offsets per partition, read from the current leaders."""
        self.topic(topic_name)
        out: Dict[int, int] = {}
        for assignment in self._replication.assignments_for_topic(topic_name):
            leader = self._brokers[assignment.leader]
            if not leader.online:
                elected = self._replication.elect_leader(
                    topic_name, assignment.partition
                )
                if elected is None:
                    out[assignment.partition] = 0
                    continue
                leader = self._brokers[elected]
            out[assignment.partition] = leader.replica(
                topic_name, assignment.partition
            ).log_end_offset
        return out

    def beginning_offsets(self, topic_name: str) -> Dict[int, int]:
        self.topic(topic_name)
        out: Dict[int, int] = {}
        for assignment in self._replication.assignments_for_topic(topic_name):
            leader = self._brokers[assignment.leader]
            out[assignment.partition] = leader.replica(
                topic_name, assignment.partition
            ).log_start_offset
        return out

    def end_offset(self, topic_name: str, partition: int) -> int:
        """Log-end offset of a single partition.

        O(1) in the topic's partition count, unlike :meth:`end_offsets`
        which walks every assignment — consumers seeking or lag-checking
        one partition at a time should use this.
        """
        self.topic(topic_name)
        try:
            leader = self._leader_for(topic_name, partition)
        except BrokerUnavailableError:
            return 0  # matches end_offsets() when no replica is online
        return leader.replica(topic_name, partition).log_end_offset

    def beginning_offset(self, topic_name: str, partition: int) -> int:
        """Log-start offset of a single partition (see :meth:`end_offset`)."""
        self.topic(topic_name)
        assignment = self._replication.assignment(topic_name, partition)
        return self._brokers[assignment.leader].replica(
            topic_name, partition
        ).log_start_offset

    def partitions_for(self, topic_name: str) -> List[TopicPartition]:
        topic = self.topic(topic_name)
        return [(topic_name, index) for index in range(topic.num_partitions)]

    def total_lag(self, group_id: str, topic_name: str) -> int:
        """Aggregate consumer lag of a group over a topic (processing pressure)."""
        lag = 0
        for partition, end in self.end_offsets(topic_name).items():
            lag += self._offsets.lag(group_id, topic_name, partition, end)
        return lag

    # ------------------------------------------------------------------ #
    # Failure injection and maintenance
    # ------------------------------------------------------------------ #
    def fail_broker(self, broker_id: int) -> List[PartitionAssignment]:
        """Crash a broker and re-elect leaders for its partitions."""
        self._brokers[broker_id].shutdown()
        self._bump_metadata_epoch()
        return self._replication.handle_broker_failure(broker_id)

    def restore_broker(self, broker_id: int) -> None:
        """Bring a broker back; followers re-sync on the next replication pass."""
        self._brokers[broker_id].restart()
        self._bump_metadata_epoch()
        for assignment in self._replication.all_assignments():
            if broker_id in assignment.replicas:
                self._replication.replicate_from_leader(
                    assignment.topic, assignment.partition
                )

    def run_retention(self, topic_name: Optional[str] = None) -> Dict[str, Dict[int, int]]:
        """Run retention/compaction on one topic or every topic."""
        with self._lock:
            names = [topic_name] if topic_name else list(self._topics)
        removed: Dict[str, Dict[int, int]] = {}
        for name in names:
            removed[name] = self._retention.enforce(self.topic(name))
            # Propagate truncation to broker replicas so fetches agree.
            for assignment in self._replication.assignments_for_topic(name):
                canonical = self.topic(name).partition(assignment.partition)
                for broker_id in assignment.replicas:
                    broker = self._brokers[broker_id]
                    if broker.online and broker.has_replica(name, assignment.partition):
                        broker.replica(name, assignment.partition).truncate_before(
                            canonical.log_start_offset
                        )
        return removed
