"""The fabric cluster: brokers, topic metadata and the data path.

:class:`FabricCluster` is the stand-in for an MSK deployment (Table II of
the paper): a set of brokers serving the client *data plane* — batched
produces routed to partition leaders, multi-partition fetch sessions,
offset lookups and batched group commits.  Control-plane operations
(topic/broker administration, retention, authorizer wiring) live on
:class:`~repro.fabric.admin.FabricAdmin` (``cluster.admin()``); the old
delegating shims on ``FabricCluster`` have been removed.

Produce is *one-encode*: :meth:`FabricCluster.append_batch` packs the
records once (or accepts a producer-sealed
:class:`~repro.fabric.record.PackedRecordBatch`), the leader log adopts
the packed batch by reference, and the offset-stamped result — still
sharing the same record tuple and payload — is forwarded to the
canonical partition view, persistence sinks and producer metadata
without re-materialising a single record.

Per-topic authorization is delegated to an optional
:class:`~repro.auth.acl.AclStore`-compatible authorizer, matching how MSK
enforces IAM ACLs maintained through the Octopus Web Service.  Fetch
sessions cache the outcome per topic, scoped to the cluster's *auth
epoch*: installing a new authorizer (or mutating the backing ACL store)
bumps the epoch, so a session authorizes each topic once per epoch rather
than once per fetch and still sees revocations on its next call.
"""

from __future__ import annotations

import threading
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.common.clock import Clock, SystemClock
from repro.common.sync import create_lock, create_rlock
from repro.fabric.broker import Broker, BrokerSpec
from repro.fabric.errors import (
    AuthorizationError,
    BrokerUnavailableError,
    InvalidRequestError,
    RecordTooLargeError,
    UnknownTopicError,
)
from repro.fabric.group import ConsumerGroupCoordinator, TopicPartition
from repro.fabric.offsets import CommittedOffset, GroupOffsets, OffsetStore
from repro.fabric.record import (
    EventRecord,
    PackedRecordBatch,
    RecordMetadata,
    StoredRecord,
)
from repro.fabric.replication import PartitionAssignment, ReplicationManager
from repro.fabric.retention import RetentionEnforcer
from repro.fabric.topic import Topic

if TYPE_CHECKING:  # pragma: no cover - type-only import (cycle otherwise)
    from repro.fabric.admin import AdminAuthorizer, FabricAdmin

#: Authorizer callback signature: (principal, operation, topic) -> bool.
Authorizer = Callable[[Optional[str], str, str], bool]


def _allow_all(principal: Optional[str], operation: str, topic: str) -> bool:
    return True


class FetchRequest(NamedTuple):
    """One partition's slice of a multi-partition fetch.

    ``max_records`` is an optional per-partition cap layered *under* the
    session-wide record cap — ``None`` means the partition may use whatever
    remains of the session budget.
    """

    topic: str
    partition: int
    offset: int
    max_records: Optional[int] = None


#: Shapes accepted by :meth:`FabricCluster.fetch_many` / :meth:`FetchSession.fetch`:
#: a mapping of ``(topic, partition) -> offset`` or an ordered iterable of
#: :class:`FetchRequest`-compatible tuples.
FetchRequests = Union[
    Mapping[TopicPartition, int],
    Iterable[Union[FetchRequest, Tuple[str, int, int]]],
]


class FetchSession:
    """A reader's standing context for multi-partition fetches.

    Mirrors Kafka's incremental fetch sessions: the expensive parts of a
    fetch — leader resolution per partition — are cached on the session and
    reused across calls, while authorization is still checked once per
    topic per call.  The cache is invalidated when the cluster's metadata
    epoch moves (broker failure/restore, leader election, topic deletion)
    or when a cached leader is observed offline, so a session held across a
    broker crash transparently fails over to the new leader on its next
    fetch.
    """

    def __init__(self, cluster: "FabricCluster", *, principal: Optional[str] = None) -> None:
        self._cluster = cluster
        self.principal = principal
        #: (topic, partition) -> (leader broker, its replica log).  Caching
        #: the log alongside the broker lets repeat fetches skip the broker's
        #: replica-table lock entirely.
        self._leaders: Dict[TopicPartition, Tuple[Broker, "object"]] = {}
        self._epoch = cluster.metadata_epoch
        # Per-topic authorization outcomes, valid for one auth epoch: the
        # session re-checks a topic only when the cluster's authorizer (or
        # its backing ACL store) changes.
        self._auth_epoch = cluster.auth_epoch
        self._authorized_topics: Set[str] = set()
        # Assignment mode: a standing partition list whose (leader, log)
        # arrays are resolved once and reused verbatim every fetch.
        self._assignment: List[TopicPartition] = []
        self._assignment_topics: Tuple[str, ...] = ()
        self._assignment_brokers: Optional[List[Broker]] = None
        self._assignment_logs: Optional[list] = None

    def invalidate(self) -> None:
        """Drop every cached leader; the next fetch re-resolves from metadata.

        Cached topic authorizations are dropped too: metadata moves (topic
        deletion in particular) must force the next fetch back through the
        full authorize-and-resolve path.
        """
        self._leaders.clear()
        self._assignment_brokers = None
        self._assignment_logs = None
        self._authorized_topics.clear()

    def cached_leaders(self) -> Dict[TopicPartition, int]:
        """Snapshot of the cached leader broker id per partition (introspection)."""
        return {tp: broker.broker_id for tp, (broker, _) in self._leaders.items()}

    def fetch(
        self,
        requests: FetchRequests,
        *,
        max_records: int = 500,
        max_bytes: Optional[int] = None,
        isolation: str = "committed",
    ) -> Dict[TopicPartition, List[StoredRecord]]:
        """Fetch every requested partition in one pass under shared caps.

        ``isolation="committed"`` (the default) serves only offsets below
        each partition's high watermark; ``"uncommitted"`` opts back into
        reading to the log end.
        """
        return self._cluster._session_fetch(
            self,
            _normalize_fetch_requests(requests),
            max_records=max_records,
            max_bytes=max_bytes,
            isolation=isolation,
        )

    def set_assignment(self, partitions: Sequence[TopicPartition]) -> None:
        """Declare the standing partition set served by :meth:`fetch_assignment`.

        Mirrors Kafka's incremental fetch sessions: the member's assignment
        is registered once (per rebalance), so per-fetch requests carry only
        offsets, and leader/log resolution happens once per metadata epoch
        instead of once per fetch.
        """
        self._assignment = [(topic, partition) for topic, partition in partitions]
        seen: List[str] = []
        for topic, _ in self._assignment:
            if topic not in seen:
                seen.append(topic)
        self._assignment_topics = tuple(seen)
        self._assignment_brokers = None
        self._assignment_logs = None

    def fetch_assignment(
        self,
        positions: Mapping[TopicPartition, int],
        *,
        start: int = 0,
        max_records: int = 500,
        max_bytes: Optional[int] = None,
        isolation: str = "committed",
    ) -> Dict[TopicPartition, List[StoredRecord]]:
        """Fetch the standing assignment from ``positions`` in one pass.

        ``start`` rotates which partition the session-wide
        ``max_records``/``max_bytes`` budget is charged to first, so a
        caller polling in a loop can keep the budget fair across the
        assignment.  ``positions`` is read during the call only.
        """
        return self._cluster._assignment_fetch(
            self, positions, start, max_records, max_bytes, isolation
        )

    def _resolve(self, topic: str, partition: int) -> Tuple[Broker, "object"]:
        """Cached (leader, log) lookup, re-resolving offline/unknown entries."""
        tp = (topic, partition)
        entry = self._leaders.get(tp)
        if entry is None or not entry[0].online:
            broker = self._cluster._leader_for(topic, partition)
            entry = (broker, broker.replica(topic, partition))
            self._leaders[tp] = entry
        return entry


def _normalize_fetch_requests(requests: FetchRequests) -> List[FetchRequest]:
    if isinstance(requests, Mapping):
        return [
            FetchRequest(topic, partition, offset)
            for (topic, partition), offset in requests.items()
        ]
    # Fast path for the common caller (consumer/mirror polls build uniform
    # FetchRequest lists every cycle): no re-wrapping, one type check per
    # element — mixed FetchRequest/tuple lists fall through to the general
    # normalization below.
    if type(requests) is list and all(type(req) is FetchRequest for req in requests):
        return requests
    return [
        req if isinstance(req, FetchRequest) else FetchRequest(*req)
        for req in requests
    ]


class FabricCluster:
    """An in-process cluster of brokers exposing a Kafka-like API."""

    def __init__(
        self,
        num_brokers: int = 2,
        *,
        instance_type: str = "kafka.m5.large",
        vcpus_per_broker: int = 2,
        memory_gb_per_broker: int = 8,
        authorizer: Optional[Authorizer] = None,
        name: str = "octopus-msk",
        clock: Optional[Clock] = None,
    ) -> None:
        if num_brokers < 1:
            raise ValueError("a cluster needs at least one broker")
        self.name = name
        # One injectable clock feeds every time-aware component — offset
        # commit stamps, group liveness, log append times and retention —
        # so a ManualClock drives the whole cluster deterministically.
        self._clock: Clock = clock if clock is not None else SystemClock()
        zones = ("us-east-1a", "us-east-1b", "us-east-1c", "us-east-1d")
        self._brokers: Dict[int, Broker] = {
            broker_id: Broker(
                BrokerSpec(
                    broker_id=broker_id,
                    instance_type=instance_type,
                    vcpus=vcpus_per_broker,
                    memory_gb=memory_gb_per_broker,
                    availability_zone=zones[broker_id % len(zones)],
                ),
                clock=self._clock,
            )
            for broker_id in range(num_brokers)
        }
        self._topics: Dict[str, Topic] = {}
        self._lock = create_rlock("FabricCluster")
        self._replication = ReplicationManager(self._brokers, clock=self._clock)
        self._offsets = OffsetStore(clock=self._clock)
        self._groups = ConsumerGroupCoordinator(clock=self._clock)
        self._retention = RetentionEnforcer(now_fn=self._clock.now)
        self._authorizer: Authorizer = authorizer or _allow_all
        self._append_locks: Dict[Tuple[str, int], threading.Lock] = {}
        self._placement_cursor = 0
        self._persistence_sinks: List[Callable[[str, int, StoredRecord], None]] = []
        self._metadata_epoch = 0
        self._auth_epoch = 0
        self._default_admin: Optional["FabricAdmin"] = None
        # Data-availability signal for long-poll fetches: the version
        # counter moves (and waiters wake) after every successful append.
        # A Condition rather than an Event so many pollers can park on it;
        # both fields are touched only under the condition's own lock.
        self._data_cond = threading.Condition()
        self._append_version = 0
        self._wire_authorizer_invalidation(authorizer)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def brokers(self) -> Dict[int, Broker]:
        return dict(self._brokers)

    @property
    def clock(self) -> Clock:
        """The injectable clock every cluster component shares."""
        return self._clock

    @property
    def offsets(self) -> OffsetStore:
        return self._offsets

    @property
    def groups(self) -> ConsumerGroupCoordinator:
        return self._groups

    @property
    def replication(self) -> ReplicationManager:
        return self._replication

    @property
    def metadata_epoch(self) -> int:
        """Monotonic counter bumped whenever leadership metadata may change.

        Fetch sessions compare their snapshot against this to decide when
        cached leader resolutions must be discarded.  Read without the
        cluster lock: a torn read is impossible for a CPython int, and the
        worst case of racing a bump is one extra invalidation.
        """
        return self._metadata_epoch

    def _bump_metadata_epoch(self) -> None:
        with self._lock:
            self._metadata_epoch += 1

    @property
    def auth_epoch(self) -> int:
        """Monotonic counter bumped whenever authorization state may change.

        Fetch sessions cache per-topic authorization outcomes scoped to
        this epoch; installing a new authorizer or mutating the backing
        ACL store bumps it (see :meth:`bump_auth_epoch`), forcing every
        session to re-authorize on its next fetch.  Lock-free read, like
        :attr:`metadata_epoch`.
        """
        return self._auth_epoch

    def bump_auth_epoch(self) -> None:
        """Invalidate every session's cached per-topic authorization.

        ACL stores call this (directly or via
        :meth:`repro.auth.acl.AclStore.add_invalidation_listener`) whenever
        a grant or revocation changes what the current authorizer would
        answer.
        """
        with self._lock:
            self._auth_epoch += 1

    @property
    def append_version(self) -> int:
        """Monotonic counter bumped after every successful append.

        The long-poll primitive: a reader that finds nothing to fetch
        snapshots this version, re-checks its position, and parks in
        :meth:`wait_for_data` until the version moves (any partition
        received data) or its wait budget expires.  Reading it outside
        the condition's lock is safe for the same reason as
        :attr:`metadata_epoch` — the worst race is one spurious wakeup.
        """
        return self._append_version

    def wait_for_data(self, version: int, timeout: float) -> int:
        """Block until :attr:`append_version` moves past ``version``.

        Returns the current version (which may equal ``version`` when the
        wait timed out).  Used by the HTTP gateway's ``max_wait_ms`` fetch
        long-poll; the snapshot-then-wait protocol means an append that
        lands between the caller's empty fetch and this wait is never
        missed — the version has already moved, so the wait returns
        immediately.
        """
        with self._data_cond:
            if self._append_version == version and timeout > 0:
                self._data_cond.wait(timeout)
            return self._append_version

    def _notify_data(self) -> None:
        """Wake every parked long-poller: new records were appended."""
        with self._data_cond:
            self._append_version += 1
            self._data_cond.notify_all()

    def interrupt_waiters(self) -> None:
        """Wake every parked long-poller *without* signalling new data.

        The graceful-drain hook: :attr:`append_version` does not move, so
        a woken poller re-checks its deadline (and the gateway its drain
        flag) and returns promptly instead of parking out its full wait
        budget against a server that is shutting down.
        """
        with self._data_cond:
            self._data_cond.notify_all()

    def _set_authorizer(self, authorizer: Optional[Authorizer]) -> None:
        """Install the data-plane authorizer (control plane: FabricAdmin)."""
        self._authorizer = authorizer or _allow_all
        self._wire_authorizer_invalidation(authorizer)
        self.bump_auth_epoch()

    def _wire_authorizer_invalidation(self, authorizer: Optional[Authorizer]) -> None:
        """Auto-subscribe to an authorizer's invalidation hook, if it has one.

        Epoch-scoped ACL caching is only safe if mutations of the
        authorizer's *backing state* bump the auth epoch.  Authorizers built
        by :meth:`repro.auth.acl.AclStore.as_authorizer` expose the store's
        ``add_invalidation_listener`` on the callable; wiring it here means
        every way of installing one — constructor, ``FabricAdmin`` — keeps
        revocations enforced on standing sessions with no call-site wiring.
        """
        hook = getattr(authorizer, "add_invalidation_listener", None)
        if callable(hook):
            hook(self.bump_auth_epoch)

    # ------------------------------------------------------------------ #
    # Control-plane access
    # ------------------------------------------------------------------ #
    def admin(
        self,
        *,
        principal: Optional[str] = None,
        authorizer: Optional["AdminAuthorizer"] = None,
    ) -> "FabricAdmin":
        """An administrative (control-plane) client for this cluster.

        With no arguments the same allow-all default admin is returned on
        every call; passing ``principal``/``authorizer`` builds a dedicated
        admin whose operations all flow through that authorizer.
        """
        from repro.fabric.admin import FabricAdmin

        if principal is None and authorizer is None:
            with self._lock:
                if self._default_admin is None:
                    self._default_admin = FabricAdmin(self)
                return self._default_admin
        return FabricAdmin(self, principal=principal, authorizer=authorizer)

    # ------------------------------------------------------------------ #
    # Topic metadata (read-only; the control plane mutates via FabricAdmin)
    # ------------------------------------------------------------------ #
    def topic(self, name: str) -> Topic:
        with self._lock:
            try:
                return self._topics[name]
            except KeyError:
                raise UnknownTopicError(f"topic {name!r} does not exist") from None

    def has_topic(self, name: str) -> bool:
        with self._lock:
            return name in self._topics

    def topics(self) -> List[str]:
        with self._lock:
            return sorted(self._topics)

    # ------------------------------------------------------------------ #
    # Authorization
    # ------------------------------------------------------------------ #
    def _authorize(self, principal: Optional[str], operation: str, topic: str) -> None:
        if not self._authorizer(principal, operation, topic):
            raise AuthorizationError(
                f"principal {principal!r} is not authorized to {operation} topic {topic!r}"
            )

    def _session_authorize(self, session: "FetchSession", topics: Iterable[str]) -> None:
        """Authorize a session's topics, cached for the current auth epoch.

        A topic is checked (READ permission + existence) at most once per
        auth epoch per session; :meth:`bump_auth_epoch` — called on
        authorizer installation and ACL mutation — drops the cache, so a
        revocation is enforced on the session's very next fetch.
        """
        epoch = self._auth_epoch
        if session._auth_epoch != epoch:
            session._authorized_topics.clear()
            session._auth_epoch = epoch
        authorized = session._authorized_topics
        for topic in topics:
            if topic not in authorized:
                self._authorize(session.principal, "READ", topic)
                self.topic(topic)  # raises UnknownTopicError
                authorized.add(topic)

    # ------------------------------------------------------------------ #
    # Data path: produce
    # ------------------------------------------------------------------ #
    def _leader_for(self, topic_name: str, partition: int) -> Broker:
        """Resolve the online leader broker for a partition (shared fast path).

        Used by produce, batched produce and fetch so metadata lookup and
        leader election behave identically on every data-plane route.
        """
        assignment = self._replication.assignment(topic_name, partition)
        leader = self._brokers[assignment.leader]
        if not leader.online:
            new_leader = self._replication.elect_leader(topic_name, partition)
            if new_leader is None:
                raise BrokerUnavailableError(
                    f"no online replica for {topic_name}-{partition}"
                )
            leader = self._brokers[new_leader]
            # Leadership moved: standing fetch sessions must re-resolve.
            self._bump_metadata_epoch()
        return leader

    def append(
        self,
        topic_name: str,
        partition: int,
        record: EventRecord,
        *,
        acks: object = 1,
        principal: Optional[str] = None,
    ) -> RecordMetadata:
        """Append one record to a partition leader.

        ``acks`` follows Kafka semantics: ``0`` (fire and forget), ``1``
        (leader has written) or ``"all"`` (ISR must satisfy
        ``min.insync.replicas``).
        """
        return self.append_batch(
            topic_name, partition, [record], acks=acks, principal=principal
        )[0]

    def append_batch(
        self,
        topic_name: str,
        partition: int,
        records: Union[Sequence[EventRecord], PackedRecordBatch],
        *,
        acks: object = 1,
        principal: Optional[str] = None,
    ) -> List[RecordMetadata]:
        """Append a whole batch of records to a partition leader.

        This is the batched data plane: one authorization check, one
        metadata lookup, one leader resolution, one leader-log lock
        round-trip and one follower-replication pass for the entire batch,
        instead of one of each per record.  ``records`` may be a plain
        sequence (packed here, once) or an already-sealed
        :class:`PackedRecordBatch` from the producer — either way every
        layer below holds the same object.  ``acks`` semantics match
        :meth:`append` and apply to the batch as a unit.
        """
        if isinstance(records, PackedRecordBatch):
            packed = records
        else:
            records = list(records)
            if not records:
                return []
            packed = PackedRecordBatch.from_events(records)
        if len(packed) == 0:
            return []
        return self.append_chunks(
            topic_name, partition, (packed,), acks=acks, principal=principal
        )

    def append_chunks(
        self,
        topic_name: str,
        partition: int,
        chunks: Sequence[PackedRecordBatch],
        *,
        acks: object = 1,
        principal: Optional[str] = None,
    ) -> List[RecordMetadata]:
        """Append pre-packed batches under one authorization/leader round.

        The zero-copy forwarding entry point (packed produce, MirrorMaker):
        each chunk is adopted by the leader log *by reference*, and the
        offset-stamped result — still sharing the caller's record tuple
        and payload bytes — is mirrored into the canonical partition view
        and persistence sinks without re-encoding anything.
        """
        self._authorize(principal, "WRITE", topic_name)
        topic = self.topic(topic_name)
        canonical = topic.partition(partition)  # validates the partition exists
        leader = self._leader_for(topic_name, partition)
        # Snapshot the leader epoch *after* leader resolution (which may
        # have elected): the epoch fences this produce — if leadership
        # moves concurrently, the stale append raises a retriable
        # FencedLeaderError instead of forking history on a deposed leader.
        leader_epoch = self._replication.assignment(topic_name, partition).leader_epoch
        if len(chunks) > 1:
            # Validate every chunk up front so a multi-chunk forward stays
            # atomic: the single-chunk path validates inside append_packed.
            limit = canonical.max_message_bytes
            for chunk in chunks:
                oversize = chunk.check_max_record_size(limit)
                if oversize is not None:
                    raise RecordTooLargeError(
                        f"record of {oversize} B exceeds "
                        f"max.message.bytes={limit} for {topic_name}-{partition}"
                    )
        with self._lock:
            append_lock = self._append_locks.setdefault(
                (topic_name, partition),
                create_lock(f"append[{topic_name}-{partition}]"),
            )
        # The per-partition lock makes leader append + canonical mirror one
        # atomic step: without it a concurrent producer could mirror a later
        # batch first, leaving this batch permanently absent from the
        # canonical view that retention and metrics operate on.
        stamped_chunks: List[PackedRecordBatch] = []
        with append_lock:
            for chunk in chunks:
                if len(chunk) == 0:
                    continue
                stamped = leader.append_packed(
                    topic_name, partition, chunk, leader_epoch=leader_epoch
                )
                stamped_chunks.append(stamped)
                # Mirror into the logical topic view by reference: the
                # canonical log adopts the leader's packed chunk directly,
                # skipping any prefix it already holds.
                if canonical.log_end_offset < stamped.end_offset:
                    canonical.append_stored(stamped)
        if not stamped_chunks:
            return []
        try:
            if acks == "all":
                # check_min_isr replicates as a side effect (advancing the
                # high watermark), so no second pass is needed.
                self._replication.check_min_isr(
                    topic_name, partition, topic.config.min_insync_replicas
                )
            else:
                # acks 0/1: leader write is durable; one synchronous
                # replication round keeps followers and the high watermark
                # moving with the append.
                self._replication.replicate_from_leader(topic_name, partition)
        finally:
            # Wake long-poll fetchers only after replication has advanced
            # the high watermark — committed readers woken earlier would
            # find nothing below the watermark and burn their wait budget.
            # ``finally`` keeps waiters live when acks=all raises.
            self._notify_data()
        if topic.config.persist_to_store:
            for stamped in stamped_chunks:
                for index in range(len(stamped)):
                    record = stamped.record_at(index)
                    stored = StoredRecord(
                        offset=stamped.offset_at(index),
                        record=record,
                        append_time=record.timestamp,
                    )
                    for sink in self._persistence_sinks:
                        sink(topic_name, partition, stored)
        return [
            RecordMetadata(
                topic=topic_name,
                partition=partition,
                offset=stamped.offset_at(index),
                timestamp=stamped.timestamp_at(index),
                serialized_size=stamped.size_at(index),
            )
            for stamped in stamped_chunks
            for index in range(len(stamped))
        ]

    # ------------------------------------------------------------------ #
    # Data path: fetch
    # ------------------------------------------------------------------ #
    def fetch(
        self,
        topic_name: str,
        partition: int,
        offset: int,
        *,
        max_records: int = 500,
        max_bytes: Optional[int] = None,
        principal: Optional[str] = None,
        isolation: str = "committed",
    ) -> List[StoredRecord]:
        """Fetch records from the partition leader starting at ``offset``.

        ``isolation="committed"`` (the default) serves only offsets below
        the high watermark — records every in-sync replica holds;
        ``"uncommitted"`` reads to the log end (the pre-watermark
        behaviour, and what replication itself uses).
        """
        self._authorize(principal, "READ", topic_name)
        self.topic(topic_name)
        leader = self._leader_for(topic_name, partition)
        return leader.fetch(
            topic_name, partition, offset, max_records=max_records,
            max_bytes=max_bytes, isolation=isolation,
        )

    def fetch_session(self, *, principal: Optional[str] = None) -> FetchSession:
        """Open a standing fetch session for a reader of this cluster."""
        return FetchSession(self, principal=principal)

    def fetch_many(
        self,
        requests: FetchRequests,
        *,
        max_records: int = 500,
        max_bytes: Optional[int] = None,
        principal: Optional[str] = None,
        isolation: str = "committed",
    ) -> Dict[TopicPartition, List[StoredRecord]]:
        """Fetch several partitions (possibly several topics) in one pass.

        One authorization check per distinct topic, one leader resolution
        per partition, and the ``max_records``/``max_bytes`` caps are
        charged across the whole request set in request order — the
        multi-partition mirror of :meth:`append_batch`.  Long-lived readers
        should hold a :class:`FetchSession` (see :meth:`fetch_session`) so
        leader resolutions are also cached *across* calls.
        """
        return FetchSession(self, principal=principal).fetch(
            requests, max_records=max_records, max_bytes=max_bytes,
            isolation=isolation,
        )

    def _session_fetch(
        self,
        session: FetchSession,
        requests: List[FetchRequest],
        *,
        max_records: int,
        max_bytes: Optional[int],
        isolation: str = "committed",
    ) -> Dict[TopicPartition, List[StoredRecord]]:
        out: Dict[TopicPartition, List[StoredRecord]] = {}
        if not requests:
            return out
        # Metadata first: a moved epoch (topic deletion, failover) must
        # clear the cached authorizations before they are consulted.
        epoch = self.metadata_epoch
        if session._epoch != epoch:
            session.invalidate()
            session._epoch = epoch
        seen_topics = set()
        for request in requests:
            seen_topics.add(request.topic)
        self._session_authorize(session, seen_topics)
        # Resolve (leader, log) via the session cache: a dict hit per
        # partition on the hot path, full metadata resolution on a miss.
        # A cached-but-offline leader is caught by the broker's own online
        # check below and handled by the failover path, so no liveness
        # probe is paid per partition here.
        cache_get = session._leaders.get
        brokers: List[Broker] = []
        logs: List[object] = []
        brokers_append = brokers.append
        logs_append = logs.append
        for request in requests:
            tp = (request[0], request[1])
            entry = cache_get(tp)
            if entry is None:
                broker = self._leader_for(request[0], request[1])
                entry = (broker, broker.replica(request[0], request[1]))
                session._leaders[tp] = entry
            brokers_append(entry[0])
            logs_append(entry[1])
        remaining = max_records
        budget = max_bytes
        index = 0
        n = len(requests)
        while index < n and remaining > 0 and (budget is None or budget > 0):
            # Serve the longest run of consecutive requests that share a
            # leader in one broker round trip; request order (and therefore
            # budget fairness) is preserved across runs.  FetchRequest is a
            # NamedTuple, so the slice feeds the broker's tuple protocol
            # without re-packing.
            leader = brokers[index]
            run_start = index
            while index < n and brokers[index] is leader:
                index += 1
            run = requests[run_start:index]
            try:
                served, count, nbytes = leader.fetch_many(
                    run,
                    max_records=remaining,
                    max_bytes=budget,
                    logs=logs[run_start:index],
                    isolation=isolation,
                )
            except BrokerUnavailableError:
                # The leader crashed between resolution and fetch: fail over
                # per partition and keep charging the same session budget.
                session.invalidate()
                served = {}
                count = 0
                nbytes = 0
                for item in run:
                    fresh, _ = session._resolve(item[0], item[1])
                    sub, sub_count, sub_bytes = fresh.fetch_many(
                        [item],
                        max_records=remaining - count,
                        max_bytes=None if budget is None else budget - nbytes,
                        isolation=isolation,
                    )
                    served.update(sub)
                    count += sub_count
                    nbytes += sub_bytes
            if out:
                out.update(served)
            else:
                out = served  # single-run fast path: adopt, don't re-insert
            remaining -= count
            if budget is not None:
                budget -= nbytes
        return out

    def _assignment_fetch(
        self,
        session: FetchSession,
        positions: Mapping[TopicPartition, int],
        start: int,
        max_records: int,
        max_bytes: Optional[int],
        isolation: str = "committed",
    ) -> Dict[TopicPartition, List[StoredRecord]]:
        """Serve a session's standing assignment (see :meth:`FetchSession.set_assignment`).

        The steady-state hot path touches, per partition: two array reads,
        one position lookup and one log fetch — authorization is per topic,
        leader/log resolution is amortised across every call of a metadata
        epoch, and liveness is checked once per same-leader run.

        The serve loops below deliberately inline the budget charging that
        :meth:`Broker.fetch_many` also implements: routing through the
        broker would rebuild per-partition request tuples on every call,
        which is precisely the per-fetch work assignment mode removes.
        Keep the charging rules (record cap, byte budget, make-progress
        first record) in lockstep with :meth:`Broker.fetch_many`.
        """
        assignment = session._assignment
        n = len(assignment)
        out: Dict[TopicPartition, List[StoredRecord]] = {}
        if n == 0:
            return out
        epoch = self.metadata_epoch
        if session._epoch != epoch:
            session.invalidate()
        self._session_authorize(session, session._assignment_topics)
        if session._epoch != epoch or session._assignment_brokers is None:
            session._epoch = epoch
            session._leaders.clear()
            brokers: List[Broker] = []
            logs: list = []
            for topic, partition in assignment:
                broker = self._leader_for(topic, partition)
                log = broker.replica(topic, partition)
                session._leaders[(topic, partition)] = (broker, log)
                brokers.append(broker)
                logs.append(log)
            session._assignment_brokers = brokers
            session._assignment_logs = logs
        brokers = session._assignment_brokers
        logs = session._assignment_logs
        if start:
            start %= n
            assignment = assignment[start:] + assignment[:start]
            brokers = brokers[start:] + brokers[:start]
            logs = logs[start:] + logs[:start]
        remaining = max_records
        budget = max_bytes
        k = 0
        while k < n and remaining > 0 and (budget is None or budget > 0):
            leader = brokers[k]
            run_start = k
            while k < n and brokers[k] is leader:
                k += 1
            if leader.online:
                if budget is None:
                    for i in range(run_start, k):
                        if remaining <= 0:
                            break
                        tp = assignment[i]
                        records, _ = logs[i].fetch_with_usage(
                            positions[tp], max_records=remaining,
                            isolation=isolation,
                        )
                        if records:
                            out[tp] = records
                            remaining -= len(records)
                else:
                    for i in range(run_start, k):
                        if remaining <= 0 or budget <= 0:
                            break
                        tp = assignment[i]
                        records, used = logs[i].fetch_with_usage(
                            positions[tp], max_records=remaining, max_bytes=budget,
                            isolation=isolation,
                        )
                        if records:
                            out[tp] = records
                            remaining -= len(records)
                            budget -= used
            else:
                # The cached leader crashed since resolution: fail over per
                # partition (electing where needed) and force a full
                # re-resolution on the next call.
                session._assignment_brokers = None
                for i in range(run_start, k):
                    if remaining <= 0 or (budget is not None and budget <= 0):
                        break
                    tp = assignment[i]
                    _, log = session._resolve(tp[0], tp[1])
                    records, used = log.fetch_with_usage(
                        positions[tp], max_records=remaining, max_bytes=budget,
                        isolation=isolation,
                    )
                    if records:
                        out[tp] = records
                        remaining -= len(records)
                        if budget is not None:
                            budget -= used
        return out

    def _online_leader_log(self, assignment: PartitionAssignment):
        """The live leader's log for an assignment, electing if the registered
        leader is offline; ``None`` when no replica is online at all."""
        leader = self._brokers[assignment.leader]
        if not leader.online:
            elected = self._replication.elect_leader(
                assignment.topic, assignment.partition
            )
            if elected is None:
                return None
            leader = self._brokers[elected]
        return leader.replica(assignment.topic, assignment.partition)

    def end_offsets(self, topic_name: str) -> Dict[int, int]:
        """Log-end offsets per partition, read from the current leaders."""
        self.topic(topic_name)
        out: Dict[int, int] = {}
        for assignment in self._replication.assignments_for_topic(topic_name):
            log = self._online_leader_log(assignment)
            out[assignment.partition] = log.log_end_offset if log is not None else 0
        return out

    def beginning_offsets(self, topic_name: str) -> Dict[int, int]:
        self.topic(topic_name)
        out: Dict[int, int] = {}
        for assignment in self._replication.assignments_for_topic(topic_name):
            leader = self._brokers[assignment.leader]
            out[assignment.partition] = leader.replica(
                topic_name, assignment.partition
            ).log_start_offset
        return out

    def end_offset(self, topic_name: str, partition: int) -> int:
        """Log-end offset of a single partition.

        O(1) in the topic's partition count, unlike :meth:`end_offsets`
        which walks every assignment — consumers seeking or lag-checking
        one partition at a time should use this.
        """
        self.topic(topic_name)
        try:
            leader = self._leader_for(topic_name, partition)
        except BrokerUnavailableError:
            return 0  # matches end_offsets() when no replica is online
        return leader.replica(topic_name, partition).log_end_offset

    def high_watermark(self, topic_name: str, partition: int) -> int:
        """Committed offset bound of one partition, from the leader log.

        Consumers catching up on lag should measure against this, not
        :meth:`end_offset`: offsets in ``[high_watermark, log_end)`` are
        not yet fully ISR-replicated and are invisible to committed reads.
        """
        self.topic(topic_name)
        try:
            leader = self._leader_for(topic_name, partition)
        except BrokerUnavailableError:
            return 0  # matches end_offset() when no replica is online
        return leader.replica(topic_name, partition).high_watermark

    def beginning_offset(self, topic_name: str, partition: int) -> int:
        """Log-start offset of a single partition (see :meth:`end_offset`)."""
        self.topic(topic_name)
        assignment = self._replication.assignment(topic_name, partition)
        return self._brokers[assignment.leader].replica(
            topic_name, partition
        ).log_start_offset

    def partitions_for(self, topic_name: str) -> List[TopicPartition]:
        topic = self.topic(topic_name)
        return [(topic_name, index) for index in range(topic.num_partitions)]

    def total_lag(self, group_id: str, topic_name: str) -> int:
        """Aggregate consumer lag of a group over a topic (processing pressure).

        One walk over the topic's assignments reads each partition's end
        *and* beginning offset from the same leader log, and lag is clamped
        against the beginning offset so retention-truncated records are not
        reported as phantom backlog.
        """
        self.topic(topic_name)
        lag = 0
        for assignment in self._replication.assignments_for_topic(topic_name):
            log = self._online_leader_log(assignment)
            if log is None:
                continue  # no online replica: nothing fetchable to lag on
            lag += self._offsets.lag(
                group_id,
                topic_name,
                assignment.partition,
                log.log_end_offset,
                beginning_offset=log.log_start_offset,
            )
        return lag

    # ------------------------------------------------------------------ #
    # Offset commits
    # ------------------------------------------------------------------ #
    def commit_group(
        self,
        group_id: str,
        offsets: GroupOffsets,
        *,
        generation: Optional[int] = None,
        member_id: Optional[str] = None,
        metadata: str = "",
    ) -> Dict[TopicPartition, CommittedOffset]:
        """Commit a whole group's offsets in one batched round.

        The group generation is validated once for the batch (when
        ``generation`` is given — ``member_id`` must identify the
        committing member) and the offsets are installed under a single
        :class:`~repro.fabric.offsets.OffsetStore` lock acquisition — the
        group-commit mirror of :meth:`append_batch`/:meth:`fetch_many`.
        The batch is atomic: a stale generation or an invalid offset
        anywhere in it commits nothing.

        Raises :class:`~repro.fabric.errors.IllegalGenerationError` on a
        stale generation or unknown member.
        """
        if generation is not None:
            if member_id is None:
                raise InvalidRequestError(
                    "member_id is required when generation is given"
                )
            self._groups.validate_generation(group_id, member_id, generation)
        return self._offsets.commit_many(group_id, offsets, metadata=metadata)

