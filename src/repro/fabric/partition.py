"""Append-only partition logs on segmented, packed-batch storage.

A partition is the unit of ordering, parallelism and replication in the
fabric.  Each partition is a strictly ordered, append-only log of
records; offsets are assigned contiguously starting from the log start
offset.  Retention and compaction may advance the log start offset, but
never reorder or renumber records.

Storage is Kafka-style **segmented**: one mutable *active* segment takes
appends, behind it sits a list of *sealed*, immutable segments.  Since
the one-encode refactor a segment holds its records as a short list of
immutable :class:`~repro.fabric.record.PackedRecordBatch` *chunks* plus
an append-only tail of per-record
:class:`~repro.fabric.record.StoredRecord` (single appends land in the
tail; batched appends, follower adoption and sealing produce chunks).
That representation buys the hot paths their complexity budget:

* **Appends adopt batches by reference** — a producer-sealed packed
  batch becomes a segment chunk without materialising per-record
  tuples; only the roll-threshold boundaries ever split one.
* **Fetches return views, not copies** — ``fetch``/``fetch_with_usage``
  answer with a :class:`~repro.fabric.record.PackedView` of
  ``(chunk, start, stop)`` runs: O(runs) to build regardless of the
  record count, decoded lazily only when a consumer touches a record.
  Byte budgets bisect each chunk's size prefix sums instead of walking
  records.
* **Retention is O(segments), not O(records)** — ``truncate_before``
  drops whole sealed segments by pointer and rebuilds at most the one
  boundary segment; time/size cutoffs are found from per-segment bounds
  with only the boundary segment's chunk columns consulted.
* **Reads are lock-split** — chunks are immutable and both the chunk
  tuple (inside each segment) and the segment tuple are swapped
  atomically, so fetches snapshot and serve without the write lock;
  the tail list only ever grows and views bound it at build time.
* **Timestamp lookup binary-searches** per-segment time covers, then
  one segment's per-chunk time columns.
"""

from __future__ import annotations

import bisect
import itertools
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.common.clock import Clock, SystemClock
from repro.common.sync import create_rlock
from repro.fabric.errors import (
    FencedLeaderError,
    OffsetOutOfRangeError,
    RecordTooLargeError,
)
from repro.fabric.record import (
    EventRecord,
    PackedRecordBatch,
    PackedView,
    StoredRecord,
)

#: Default roll thresholds: the active segment is sealed once it holds
#: this many records or bytes.  Small enough that seven-day retention
#: over a busy partition drops *whole* segments, large enough that the
#: per-segment overhead is negligible next to the records themselves.
DEFAULT_SEGMENT_RECORDS = 4096
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

#: Batches below this size ride the per-record tail path instead of
#: becoming packed chunks: a stream of one-record produce calls must not
#: degrade a segment into thousands of single-record chunks.
_MIN_CHUNK_RECORDS = 4


def _base_offset(segment: "LogSegment") -> int:
    return segment.base_offset


def _max_append_time(segment: "LogSegment") -> float:
    return segment.max_append_time


def _append_time(stored: StoredRecord) -> float:
    return stored.append_time


class LogSegment:
    """One run of a partition's records: packed chunks plus a tail.

    The record storage lives in a single atomically-swapped ``_state``
    attribute ``(chunks, tail, cum)`` — ``chunks`` an immutable tuple of
    :class:`PackedRecordBatch`, ``tail`` an append-only list of
    :class:`StoredRecord` logically *after* every chunk, and ``cum`` a
    prefix-sum tuple of chunk record counts (``cum[i]`` = records held by
    ``chunks[:i]``) so position lookups bisect straight to the owning
    chunk instead of walking the chunk list.  Readers
    snapshot ``_state`` once and are then immune to later mutation:
    chunk adoption swaps in a whole new state tuple, per-record appends
    only ever extend the tail, and views bound the tail length at build
    time.  Sealing packs the tail into a final chunk and freezes the
    segment.

    ``min_append_time``/``max_append_time`` are *conservative covers* of
    the records' append times (exact until the segment is sliced at a
    truncation boundary, which inherits the parent's bounds rather than
    re-walking the kept records); the time searches treat them as covers
    and stay exact.
    """

    __slots__ = (
        "base_offset",
        "end_offset",
        "size_bytes",
        "logical_size_bytes",
        "min_append_time",
        "max_append_time",
        "sealed",
        "contiguous",
        "count",
        "_state",
    )

    def __init__(self, base_offset: int) -> None:
        self.base_offset = base_offset
        #: Offset the next record after this segment would take
        #: (last record's offset + 1 once non-empty).
        self.end_offset = base_offset
        #: Physical bytes: compressed chunks count at their stored (wire)
        #: size.  Roll thresholds and size retention charge this — what
        #: the segment actually occupies.
        self.size_bytes = 0
        #: Logical bytes: the per-record serialized sizes, what consumers
        #: receive.  Equal to ``size_bytes`` for uncompressed storage.
        self.logical_size_bytes = 0
        self.min_append_time: float = 0.0
        self.max_append_time: float = 0.0
        self.sealed = False
        self.contiguous = True
        self.count = 0
        self._state: Tuple[
            Tuple[PackedRecordBatch, ...], List[StoredRecord], Tuple[int, ...]
        ] = ((), [], (0,))

    @classmethod
    def sealed_from(cls, records: Sequence[StoredRecord]) -> "LogSegment":
        """Build an immutable segment from a non-empty, offset-ordered run."""
        chunk = PackedRecordBatch.from_stored(records)
        segment = cls(chunk.base_offset)
        segment._state = ((chunk,), [], (0, len(chunk)))
        segment.end_offset = chunk.end_offset
        segment.size_bytes = chunk.physical_size_bytes
        segment.logical_size_bytes = chunk.size_bytes
        segment.min_append_time = chunk.min_append_time
        segment.max_append_time = chunk.max_append_time
        segment.contiguous = chunk.contiguous
        segment.count = len(chunk)
        segment.sealed = True
        return segment

    def seal(self) -> None:
        """Freeze the segment: the tail (if any) is packed into a final
        chunk.  Holders of the old state keep a valid (identical) view."""
        chunks, tail, cum = self._state
        if tail:
            self._state = (
                chunks + (PackedRecordBatch.from_stored(tail),),
                [],
                cum + (cum[-1] + len(tail),),
            )
        self.sealed = True

    @property
    def records(self) -> PackedView:
        """The segment's records as a lazy, list-like view."""
        chunks, tail, cum = self._state
        runs: List[tuple] = [
            (chunk, 0, cum[i + 1] - cum[i]) for i, chunk in enumerate(chunks)
        ]
        length = cum[-1]
        if tail:
            runs.append((tail, 0, len(tail)))
            length += len(tail)
        return PackedView(tuple(runs), length)

    # -- mutation (caller holds the owning log's write lock) ----------- #
    def append(self, stored: StoredRecord) -> None:
        if self.count == 0:
            self.base_offset = stored.offset
            self.min_append_time = stored.append_time
            self.max_append_time = stored.append_time
        else:
            when = stored.append_time
            if when < self.min_append_time:
                self.min_append_time = when
            if when > self.max_append_time:
                self.max_append_time = when
        self._state[1].append(stored)
        self.end_offset = stored.offset + 1
        self.count += 1
        size = stored.size_bytes()
        self.size_bytes += size
        self.logical_size_bytes += size

    def append_chunk(self, chunk: PackedRecordBatch) -> None:
        """Adopt a packed batch by reference as the segment's next chunk.

        A pending tail is packed first so chunks stay in offset order;
        the whole transition is one ``_state`` swap, invisible to
        concurrent readers of the previous state.
        """
        chunks, tail, cum = self._state
        if tail:
            packed_tail = PackedRecordBatch.from_stored(tail)
            mid = cum[-1] + len(packed_tail)
            self._state = (
                chunks + (packed_tail, chunk),
                [],
                cum + (mid, mid + len(chunk)),
            )
        else:
            self._state = (chunks + (chunk,), tail, cum + (cum[-1] + len(chunk),))
        if self.count == 0:
            self.base_offset = chunk.base_offset
            self.min_append_time = chunk.min_append_time
            self.max_append_time = chunk.max_append_time
            self.contiguous = chunk.contiguous
        else:
            if chunk.min_append_time < self.min_append_time:
                self.min_append_time = chunk.min_append_time
            if chunk.max_append_time > self.max_append_time:
                self.max_append_time = chunk.max_append_time
            if chunk.base_offset != self.end_offset or not chunk.contiguous:
                self.contiguous = False
        self.end_offset = chunk.end_offset
        self.count += len(chunk)
        self.size_bytes += chunk.physical_size_bytes
        self.logical_size_bytes += chunk.size_bytes

    # -- lookup (safe without the write lock) -------------------------- #
    def locate(self, offset: int) -> int:
        """Index of the first record with offset >= ``offset``.

        O(1) for contiguous segments; gapped (compacted) segments bisect
        each chunk's offset table.
        """
        if self.contiguous:
            position = offset - self.base_offset
            return 0 if position < 0 else position
        chunks, tail, cum = self._state
        position = cum[-1]
        for index, chunk in enumerate(chunks):
            if offset < chunk.end_offset:
                return cum[index] + chunk.index_of_offset(offset)
        if tail:
            length = len(tail)
            delta = offset - tail[0].offset
            if delta < 0:
                delta = 0
            return position + (delta if delta < length else length)
        return position

    def runs_from(self, position: int, needed: Optional[int] = None) -> List[tuple]:
        """The ``(source, start, stop)`` runs covering records from
        logical ``position`` on — the currency of the fetch path.

        The prefix-sum column bisects straight to the chunk owning
        ``position``; with ``needed`` the walk stops as soon as that many
        records are covered (the last run may overshoot — the caller
        truncates), so a bounded fetch pays O(log chunks + runs used).
        """
        chunks, tail, cum = self._state
        runs: List[tuple] = []
        total = cum[-1]
        if position < total:
            index = bisect.bisect_right(cum, position) - 1
            start = position - cum[index]
            for j in range(index, len(chunks)):
                length = cum[j + 1] - cum[j]
                runs.append((chunks[j], start, length))
                if needed is not None:
                    needed -= length - start
                    if needed <= 0:
                        return runs
                start = 0
            position = 0
        else:
            position -= total
        length = len(tail)
        if position < length:
            runs.append((tail, position, length))
        return runs

    def first_offset_at_or_after_time(self, timestamp: float) -> Optional[int]:
        """Offset of the first record with append time >= ``timestamp``,
        assuming (as the log guarantees) non-decreasing append times."""
        chunks, tail, _ = self._state
        for chunk in chunks:
            if chunk.max_append_time < timestamp:
                continue
            index = chunk.first_index_at_or_after_time(timestamp)
            if index < len(chunk):
                return chunk.offset_at(index)
        length = len(tail)
        if length:
            index = bisect.bisect_left(tail, timestamp, 0, length, key=_append_time)
            if index < length:
                return tail[index].offset
        return None

    def slice_from(self, position: int) -> "LogSegment":
        """New segment holding the records from ``position`` on
        (truncation boundary).

        Chunks wholly past the boundary are kept by reference; at most
        one chunk is sliced (itself sharing the parent's payload and
        record tuple), so the rebuild is O(runs), not O(records).  Time
        bounds are inherited from the parent as a **conservative
        cover** — the time searches tolerate covers by falling through
        to the next segment.
        """
        runs = self.runs_from(position)
        chunks: List[PackedRecordBatch] = []
        tail: List[StoredRecord] = []
        kept = 0
        size = 0
        logical = 0
        first_offset = None
        for source, start, stop in runs:
            kept += stop - start
            if isinstance(source, PackedRecordBatch):
                piece = source.slice(start, stop)
                chunks.append(piece)
                size += piece.physical_size_bytes
                logical += piece.size_bytes
                if first_offset is None:
                    first_offset = piece.base_offset
            else:
                tail = list(source[start:stop])
                tail_size = sum(stored.size_bytes() for stored in tail)
                size += tail_size
                logical += tail_size
                if first_offset is None:
                    first_offset = tail[0].offset
        fresh = LogSegment(first_offset)
        cum = [0]
        for piece in chunks:
            cum.append(cum[-1] + len(piece))
        fresh._state = (tuple(chunks), tail, tuple(cum))
        fresh.end_offset = self.end_offset
        fresh.count = kept
        fresh.size_bytes = size
        fresh.logical_size_bytes = logical
        fresh.min_append_time = self.min_append_time
        fresh.max_append_time = self.max_append_time
        fresh.contiguous = fresh.end_offset - fresh.base_offset == kept
        if self.sealed:
            fresh.seal()
        return fresh

    def describe(self) -> dict:
        count = self.count
        return {
            "base_offset": self.base_offset,
            "end_offset": self.end_offset,
            "records": count,
            "size_bytes": self.size_bytes,
            "logical_size_bytes": self.logical_size_bytes,
            "min_append_time": self.min_append_time if count else None,
            "max_append_time": self.max_append_time if count else None,
            "sealed": self.sealed,
            "contiguous": self.contiguous,
        }


class PartitionLog:
    """A single partition's segmented log: thread-safe append and fetch.

    Parameters
    ----------
    topic:
        Topic name (used only for error messages and metrics labels).
    partition:
        Partition index within the topic.
    max_message_bytes:
        Per-record size limit; appends of larger records raise
        :class:`~repro.fabric.errors.RecordTooLargeError`.
    segment_records / segment_bytes:
        Active-segment roll thresholds; ``None`` selects the module
        defaults.  Smaller segments make retention finer-grained, larger
        ones reduce per-segment overhead.

    Concurrency model (the lock split): one write lock serializes every
    mutation — appends to the active segment, sealing, truncation,
    compaction and the atomic swap of the segment tuple.  Read paths
    (``fetch``/``fetch_with_usage``, ``offset_for_timestamp``,
    ``size_bytes``, ``read_all``) never take it: they snapshot
    ``_next_offset`` *then* the segment tuple (appends publish records
    before advancing ``_next_offset``, so every offset below the snapshot
    is reachable) and serve from immutable packed chunks plus the
    append-only active tail.
    """

    def __init__(
        self,
        topic: str,
        partition: int,
        *,
        max_message_bytes: int = 8 * 1024 * 1024,
        segment_records: Optional[int] = None,
        segment_bytes: Optional[int] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.topic = topic
        self.partition = partition
        self.max_message_bytes = int(max_message_bytes)
        self.segment_records = (
            int(segment_records) if segment_records is not None else DEFAULT_SEGMENT_RECORDS
        )
        self.segment_bytes = (
            int(segment_bytes) if segment_bytes is not None else DEFAULT_SEGMENT_BYTES
        )
        if self.segment_records < 1:
            raise ValueError("segment_records must be >= 1")
        if self.segment_bytes < 1:
            raise ValueError("segment_bytes must be >= 1")
        self._segments: Tuple[LogSegment, ...] = (LogSegment(0),)
        self._log_start_offset = 0
        self._next_offset = 0
        self._clock: Clock = clock if clock is not None else SystemClock()
        self._lock = create_rlock(f"PartitionLog[{topic}-{partition}]")
        self._total_appended = 0  #: guarded_by _lock
        self._total_bytes = 0  #: guarded_by _lock
        self._last_append_time = 0.0  #: guarded_by _lock
        #: Min fully-ISR-replicated offset.  ``None`` marks an *unmanaged*
        #: log (no replication manager advancing it): the high watermark
        #: then equals the log end, preserving standalone-log semantics.
        #: Mutated under ``_lock``; read lock-free like ``_next_offset``
        #: (a torn read is impossible for a CPython int, and monotonicity
        #: makes a stale read merely conservative).
        self._high_watermark: Optional[int] = None
        #: Highest leader epoch seen; same locking discipline as above.
        self._leader_epoch = 0
        #: ``(epoch, start_offset)`` pairs, one per epoch this log has
        #: written or adopted under — Kafka's leader-epoch checkpoint.
        self._epoch_starts: List[Tuple[int, int]] = [(0, 0)]  #: guarded_by _lock

    # ------------------------------------------------------------------ #
    # Offsets
    # ------------------------------------------------------------------ #
    @property
    def log_start_offset(self) -> int:
        """First offset still retained in the log (lock-free read)."""
        return self._log_start_offset

    @property
    def log_end_offset(self) -> int:
        """Offset that the *next* appended record will receive (lock-free)."""
        return self._next_offset

    @property
    def high_watermark(self) -> int:
        """First offset *not* safe to serve to committed readers.

        Replication advances it to the min fully-ISR-replicated offset;
        a log nothing replicates (``None`` sentinel — standalone tests,
        canonical mirrors) reports its log end, the pre-HW behaviour.
        Clamped to the log end so truncation can never leave it dangling.
        """
        hw = self._high_watermark
        end = self._next_offset
        return end if hw is None else min(hw, end)

    def advance_high_watermark(self, offset: int) -> int:
        """Monotonically raise the high watermark (never past the log end).

        First call switches the log into *managed* mode: committed
        readers are bounded by the watermark from then on.  Returns the
        effective watermark.
        """
        with self._lock:
            bounded = min(int(offset), self._next_offset)
            current = self._high_watermark
            if current is None or bounded > current:
                self._high_watermark = bounded
            return self.high_watermark

    # ------------------------------------------------------------------ #
    # Leader-epoch fencing
    # ------------------------------------------------------------------ #
    @property
    def leader_epoch(self) -> int:
        """Highest leader epoch this log has written or adopted under."""
        return self._leader_epoch

    def leader_epoch_history(self) -> List[Tuple[int, int]]:
        """``(epoch, start_offset)`` checkpoint pairs, oldest first."""
        with self._lock:
            return list(self._epoch_starts)

    def note_leader_epoch(self, epoch: Optional[int]) -> None:
        """Fence a writer's epoch against the log's history.

        ``None`` (an unfenced legacy writer) is accepted unchanged.  An
        epoch older than the highest seen raises
        :class:`FencedLeaderError` — the writer was deposed and must
        refresh metadata.  A newer epoch is adopted and checkpointed at
        the current log end.
        """
        if epoch is None:
            return
        with self._lock:
            if epoch < self._leader_epoch:
                raise FencedLeaderError(
                    f"epoch {epoch} for {self.topic}-{self.partition} is "
                    f"fenced: log has seen epoch {self._leader_epoch}"
                )
            if epoch > self._leader_epoch:
                self._leader_epoch = epoch
                self._epoch_starts.append((epoch, self._next_offset))

    def __len__(self) -> int:
        with self._lock:
            return sum(segment.count for segment in self._segments)

    @property
    def size_bytes(self) -> int:
        """Total *physical* bytes currently retained (compressed chunks at
        their stored size): a sum of cached per-segment counters,
        O(segments) instead of a walk over every record."""
        return sum(segment.size_bytes for segment in self._segments)

    @property
    def logical_size_bytes(self) -> int:
        """Total logical (uncompressed, per-record) bytes retained."""
        return sum(segment.logical_size_bytes for segment in self._segments)

    @property
    def total_appended(self) -> int:
        """Number of records appended over the log's lifetime."""
        with self._lock:
            return self._total_appended

    @property
    def total_bytes_appended(self) -> int:
        with self._lock:
            return self._total_bytes

    # ------------------------------------------------------------------ #
    # Segment lifecycle (callers hold the write lock)
    # ------------------------------------------------------------------ #
    def _should_roll(self, active: LogSegment) -> bool:
        return active.count > 0 and (
            active.count >= self.segment_records
            or active.size_bytes >= self.segment_bytes
        )

    def _roll_active(self, base_offset: int) -> LogSegment:
        """Seal the active segment and open a fresh one at ``base_offset``."""
        self._segments[-1].seal()
        fresh = LogSegment(base_offset)
        self._segments = self._segments + (fresh,)
        return fresh

    def _assign_time_locked(self, append_time: Optional[float]) -> float:
        """Log append time: monotone non-decreasing when log-assigned.

        Caller holds ``_lock``.  Callers supplying an explicit
        ``append_time`` (retention tests, follower adoption) are trusted
        to keep it non-decreasing — the time-bound searches assume it.
        """
        if append_time is None:
            when = self._clock.now()
            if when < self._last_append_time:
                when = self._last_append_time
        else:
            when = append_time
        if when > self._last_append_time:
            self._last_append_time = when
        return when

    def describe_segments(self) -> List[dict]:
        """Per-segment introspection (base/end offset, size, time bounds)."""
        return [segment.describe() for segment in self._segments]

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    # ------------------------------------------------------------------ #
    # Append / fetch
    # ------------------------------------------------------------------ #
    def append(self, record: EventRecord, append_time: Optional[float] = None) -> int:
        """Append ``record`` and return the offset it was assigned."""
        size = record.size_bytes()
        if size > self.max_message_bytes:
            raise RecordTooLargeError(
                f"record of {size} B exceeds max.message.bytes="
                f"{self.max_message_bytes} for {self.topic}-{self.partition}"
            )
        with self._lock:
            offset = self._next_offset
            stored = StoredRecord(
                offset=offset,
                record=record,
                append_time=self._assign_time_locked(append_time),
            )
            active = self._segments[-1]
            if self._should_roll(active):
                active = self._roll_active(offset)
            active.append(stored)
            self._next_offset = offset + 1
            self._total_appended += 1
            self._total_bytes += size
            return offset

    def append_batch(
        self,
        records: Union[Iterable[EventRecord], PackedRecordBatch],
        append_time: Optional[float] = None,
    ) -> list[int]:
        """Append every record under one lock acquisition; return their offsets.

        The batch is atomic: sizes are validated up front, so either every
        record receives a contiguous offset or none does.  This is the leader
        half of the batched produce path — an already-packed batch (or one
        packed here) is adopted as segment chunks *by reference*, one lock
        round-trip and zero per-record materialisation; oversize batches
        roll segments as they go.
        """
        if not isinstance(records, PackedRecordBatch):
            records = PackedRecordBatch.from_events(list(records))
        stamped = self.append_packed(records, append_time)
        return list(range(stamped.base_offset, stamped.end_offset))

    def append_packed(
        self,
        packed: PackedRecordBatch,
        append_time: Optional[float] = None,
    ) -> "PackedRecordBatch":
        """Adopt a packed batch under leader-assigned offsets.

        Returns the restamped batch (sharing the caller's records and
        payload) so the produce path can forward the *same* object to the
        canonical partition, persistence sinks and producer metadata
        without re-reading the log.  Batches below the chunk-size floor
        devolve to the per-record tail path.
        """
        length = len(packed)
        # Ingress integrity: a CRC-stamped batch is verified before any of
        # it is admitted (memoized — cheap for batches this process sealed).
        packed.verify_crc()
        oversize = packed.check_max_record_size(self.max_message_bytes)
        if oversize is not None:
            raise RecordTooLargeError(
                f"record of {oversize} B exceeds max.message.bytes="
                f"{self.max_message_bytes} for {self.topic}-{self.partition}"
            )
        with self._lock:
            if length == 0:
                return packed.with_offsets(self._next_offset, self._last_append_time)
            when = self._assign_time_locked(append_time)
            base = self._next_offset
            stamped = packed.with_offsets(base, when)
            if length < _MIN_CHUNK_RECORDS:
                active = self._segments[-1]
                for index in range(length):
                    if self._should_roll(active):
                        active = self._roll_active(base + index)
                    active.append(stamped.stored_at(index))
            else:
                self._place_chunk(stamped)
            self._next_offset = base + length
            self._total_appended += length
            self._total_bytes += stamped.size_bytes
            return stamped

    def _chunk_take(
        self, active: LogSegment, chunk: PackedRecordBatch, index: int, remaining: int
    ) -> int:
        """How many records of ``chunk[index:]`` the active segment takes
        before the per-record roll check would fire (>= 1: the caller
        rolls first whenever the segment is already due)."""
        if active.count:
            by_count = self.segment_records - active.count
        else:
            by_count = self.segment_records
        cum = chunk._cum
        if cum is None:
            # Wire-decoded chunk whose size column is still lazy: splitting
            # it exactly would force a decompression on the ingress path,
            # so the roll boundary is estimated from the average record
            # size instead (the header's uncompressed size / count).
            average = max(1, chunk.size_bytes // max(1, len(chunk)))
            by_bytes = max(1, (self.segment_bytes - active.size_bytes) // average)
        else:
            target = cum[index] + (self.segment_bytes - active.size_bytes)
            by_bytes = bisect.bisect_left(cum, target, index, index + remaining) - index
        take = min(remaining, by_count, by_bytes)
        return take if take > 0 else 1

    def _place_chunk(self, chunk: PackedRecordBatch) -> None:
        """Distribute one stamped chunk over the active segment, slicing
        only at roll boundaries (same boundaries the per-record path
        would produce)."""
        active = self._segments[-1]
        index = 0
        length = len(chunk)
        while index < length:
            first_offset = chunk.offset_at(index)
            if self._should_roll(active) or (
                active.count and first_offset != active.end_offset
            ):
                active = self._roll_active(first_offset)
            take = self._chunk_take(active, chunk, index, length - index)
            active.append_chunk(chunk.slice(index, index + take))
            index += take

    def append_stored(
        self,
        records: Union[Iterable[StoredRecord], PackedRecordBatch, PackedView],
    ) -> int:
        """Follower path: adopt leader-assigned offsets for missing records.

        Records at offsets the replica already holds are skipped; the rest
        are appended under one lock acquisition, preserving the leader's
        offsets.  Packed chunks (what a leader fetch view carries) are
        adopted *by reference* — sliced, never re-encoded — so replication
        and canonical mirroring forward the leader's bytes verbatim.  A
        leader-side compaction gap rolls the active segment so the active
        segment stays offset-contiguous (gaps live only between segments
        or inside sealed chunks' offset tables).  Returns the new log end
        offset.
        """
        if isinstance(records, PackedRecordBatch):
            runs: Sequence[tuple] = ((records, 0, len(records)),)
        elif isinstance(records, PackedView):
            runs = records.runs()
        else:
            materialized = list(records)
            runs = ((materialized, 0, len(materialized)),)
        # Ingress integrity (outside the lock): CRC-stamped chunks are
        # verified before any offsets are adopted.
        for source, _, _ in runs:
            if isinstance(source, PackedRecordBatch):
                source.verify_crc()
        with self._lock:
            for source, start, stop in runs:
                if isinstance(source, PackedRecordBatch):
                    self._adopt_chunk_locked(source, start, stop)
                else:
                    self._adopt_stored_locked(source, start, stop)
            return self._next_offset

    def _adopt_stored_locked(
        self, source: Sequence[StoredRecord], start: int, stop: int
    ) -> None:
        active = self._segments[-1]
        added = 0
        added_bytes = 0
        for index in range(start, stop):
            stored = source[index]
            if stored.offset < self._next_offset:
                continue
            if self._should_roll(active) or (
                active.count and stored.offset != active.end_offset
            ):
                active = self._roll_active(stored.offset)
            active.append(stored)
            self._next_offset = stored.offset + 1
            added += 1
            added_bytes += stored.size_bytes()
            if stored.append_time > self._last_append_time:
                self._last_append_time = stored.append_time
        self._total_appended += added
        self._total_bytes += added_bytes

    def _adopt_chunk_locked(
        self, chunk: PackedRecordBatch, start: int, stop: int
    ) -> None:
        next_offset = self._next_offset
        if chunk.end_offset <= next_offset:
            return  # the replica already holds this whole run
        skip = chunk.index_of_offset(next_offset)
        if skip > start:
            start = skip
        if start >= stop:
            return
        length = stop - start
        if length < _MIN_CHUNK_RECORDS:
            self._adopt_stored_locked(chunk, start, stop)
            return
        sub = chunk.slice(start, stop)
        self._place_chunk(sub)
        self._next_offset = sub.end_offset
        self._total_appended += length
        self._total_bytes += sub.size_bytes
        if sub.max_append_time > self._last_append_time:
            self._last_append_time = sub.max_append_time

    @staticmethod
    def _count_before(segments: Sequence[LogSegment], bound: int) -> int:
        """Records in the snapshot whose offset is below ``bound``."""
        total = 0
        for segment in segments:
            if segment.count and segment.end_offset <= bound:
                total += segment.count
                continue
            if segment.base_offset < bound:
                total += segment.locate(bound)
            break
        return total

    def fetch(
        self,
        offset: int,
        max_records: int = 500,
        max_bytes: Optional[int] = None,
        isolation: str = "committed",
    ) -> Sequence[StoredRecord]:
        """Return up to ``max_records`` records starting at ``offset``.

        Fetching exactly at the log end returns an empty list (the consumer
        is caught up).  Fetching below the log start or beyond the end
        raises :class:`OffsetOutOfRangeError`, matching Kafka semantics.
        The result is a lazy :class:`PackedView` over the log's packed
        chunks — list-compatible, decoded only on access.

        ``isolation="committed"`` (the default) serves only offsets below
        the :attr:`high_watermark`; ``"uncommitted"`` serves up to the
        log end — the replication path reads uncommitted (followers catch
        up on exactly the records that are not yet fully replicated).
        """
        return self.fetch_with_usage(
            offset, max_records=max_records, max_bytes=max_bytes,
            isolation=isolation,
        )[0]

    def fetch_with_usage(
        self,
        offset: int,
        max_records: int = 500,
        max_bytes: Optional[int] = None,
        isolation: str = "committed",
    ) -> tuple[Sequence[StoredRecord], int]:
        """Like :meth:`fetch` but also returns the bytes consumed.

        The byte count lets a caller serving several partitions (a fetch
        session) charge this partition's records against a budget shared
        across the whole session instead of granting ``max_bytes`` to each
        partition independently.  With ``max_bytes=None`` no budget exists
        and the reported usage is ``0`` (the replication fast path pays
        nothing for accounting).

        Runs entirely without the write lock: the segment tuple is
        snapshotted and chunks are immutable, so fetches of old data
        never contend with appends.  The byte-budget walk bisects each
        chunk's size prefix sums — O(runs · log chunk) — instead of
        sizing records one by one.
        """
        # Committed readers stop at the high watermark; ``hw`` stays
        # ``None`` (no bound) for uncommitted readers and for unmanaged
        # logs (nothing replicates them — standalone use, canonical
        # mirrors).  The common committed-unmanaged path must cost one
        # string compare and one attribute load: the fetch bench floor
        # measures exactly this loop against the flat log.
        if isolation == "committed":
            hw = self._high_watermark
        elif isolation == "uncommitted":
            hw = None
        else:
            raise ValueError(
                f"isolation must be 'committed' or 'uncommitted', "
                f"got {isolation!r}"
            )
        end = self._next_offset
        if offset == end:
            return [], 0
        # Snapshot the segment tuple *before* reading the start offset: a
        # truncation that lands in between raises out-of-range (as the
        # locked flat implementation did), while one that lands after is
        # served consistently from this snapshot — its dropped segments
        # are still referenced here.  Reading the start first instead
        # would pass the range check and then silently serve from the
        # post-truncation segments at a far later offset.
        segments = self._segments
        start = self._log_start_offset
        if offset < start or offset > end:
            raise OffsetOutOfRangeError(
                f"offset {offset} out of range "
                f"[{start}, {end}] "
                f"for {self.topic}-{self.partition}"
            )
        first = bisect.bisect_right(segments, offset, key=_base_offset) - 1
        if first < 0:
            first = 0
        position = segments[first].locate(offset)
        if hw is not None and hw < end:
            bound = hw
            if offset >= bound:
                return [], 0
            # With offset gaps (compaction) the cap must count *records*,
            # not offsets: the record-count positions of `bound` and
            # `offset` in this snapshot bound how many records are safe
            # to serve.
            before_offset = position
            for segment in segments[:first]:
                before_offset += segment.count
            allowed = self._count_before(segments, bound) - before_offset
            if allowed <= 0:
                return [], 0
            if allowed < max_records:
                max_records = allowed
        runs: List[tuple] = []
        if max_bytes is None:
            # No byte budget: gather whole runs (the replication path).
            needed = max_records
            for segment in segments[first:]:
                for source, run_start, run_stop in segment.runs_from(
                    position, needed
                ):
                    span = run_stop - run_start
                    if span > needed:
                        run_stop = run_start + needed
                        span = needed
                    runs.append((source, run_start, run_stop))
                    needed -= span
                    if needed <= 0:
                        break
                if needed <= 0:
                    break
                position = 0
            if not runs:
                return [], 0
            return PackedView(tuple(runs), max_records - needed), 0
        budget = max_bytes
        taken = 0
        done = False
        for segment in segments[first:]:
            for source, run_start, run_stop in segment.runs_from(
                position, max_records - taken
            ):
                while run_start < run_stop and not done:
                    if taken >= max_records:
                        done = True
                        break
                    if isinstance(source, PackedRecordBatch):
                        if taken and budget <= 0:
                            done = True
                            break
                        limit = min(run_stop, run_start + max_records - taken)
                        grant = source.take_within(run_start, limit, budget)
                        if grant <= 0:
                            if taken:
                                done = True
                                break
                            grant = 1  # make progress: the first record is always granted
                        runs.append((source, run_start, run_start + grant))
                        budget -= source.size_range(run_start, run_start + grant)
                        taken += grant
                        if grant < limit - run_start:
                            done = True  # byte budget stopped inside the run
                        run_start += grant
                    else:
                        index = run_start
                        while index < run_stop and taken < max_records:
                            size = source[index].size_bytes()
                            if taken and size > budget:
                                break
                            budget -= size
                            taken += 1
                            index += 1
                        if index > run_start:
                            runs.append((source, run_start, index))
                        if index < run_stop:
                            done = True
                        run_start = index
                if done:
                    break
            if done:
                break
            position = 0
        if not runs:
            return [], max_bytes - budget
        return PackedView(tuple(runs), taken), max_bytes - budget

    def read_all(self) -> Sequence[StoredRecord]:
        """Snapshot of every retained record (testing/persistence helper)."""
        return tuple(
            itertools.chain.from_iterable(
                segment.records for segment in self._segments
            )
        )

    def __iter__(self) -> Iterator[StoredRecord]:
        return iter(self.read_all())

    def offset_for_timestamp(self, timestamp: float) -> Optional[int]:
        """Earliest offset whose **append time** is >= ``timestamp``.

        Supports the "consume after a certain timestamp" mode described in
        Section IV-F.  The search runs on the log-assigned append time —
        which this log keeps monotonically non-decreasing — *not* on the
        client-supplied ``record.timestamp``, which carries no ordering
        guarantee (producers may ship arbitrary or out-of-order
        timestamps).  Binary-searches per-segment time covers, then one
        segment's per-chunk time columns.  Returns ``None`` when every
        retained record is older than ``timestamp``.
        """
        segments = self._segments
        if not segments[-1].count:
            segments = segments[:-1]  # only the active segment may be empty
        if not segments:
            return None
        first = bisect.bisect_left(segments, timestamp, key=_max_append_time)
        for segment in segments[first:]:
            if not segment.count:
                continue
            if segment.min_append_time >= timestamp:
                # The whole segment is at/after the timestamp: its first
                # record answers without scanning — only the one segment
                # that straddles the timestamp is ever searched.
                return segment.base_offset
            found = segment.first_offset_at_or_after_time(timestamp)
            if found is not None:
                return found
        return None

    # ------------------------------------------------------------------ #
    # Retention / compaction
    # ------------------------------------------------------------------ #
    def truncate_before(self, offset: int) -> int:
        """Drop records with offsets strictly below ``offset``.

        Whole sealed segments below the cutoff are dropped by pointer; at
        most one boundary segment is rebuilt (and inside it at most one
        chunk is sliced), so a retention run costs O(segments + one
        segment's runs), not O(retained records).  Returns the number of
        records removed.  Used by time/size retention.
        """
        with self._lock:
            offset = max(offset, self._log_start_offset)
            offset = min(offset, self._next_offset)
            segments = self._segments
            removed = 0
            kept: List[LogSegment] = []
            for index, segment in enumerate(segments):
                if segment.end_offset <= offset:
                    removed += segment.count
                    continue  # whole-segment drop: no record is touched
                if segment.base_offset < offset:
                    position = segment.locate(offset)
                    removed += position
                    if position:
                        segment = segment.slice_from(position)
                kept.append(segment)
                kept.extend(segments[index + 1 :])
                break
            if not kept or kept[-1].sealed:
                kept.append(LogSegment(self._next_offset))
            # Publish the new start *before* the new segment tuple: readers
            # snapshot segments first, then the start offset, so whoever
            # sees the truncated tuple is guaranteed to also see the new
            # start and raise out-of-range instead of silently serving
            # from the wrong offset.
            self._log_start_offset = offset
            self._segments = tuple(kept)
            return removed

    def size_retention_cutoff(self, retention_bytes: int) -> int:
        """Earliest offset to keep so retained *physical* bytes fit
        ``retention_bytes``.

        Sums cached per-segment sizes (O(segments)); only the boundary
        segment — where dropping the whole thing would over-shoot — is
        walked record-granularly, preserving the record-granular semantics
        of the flat implementation for uncompressed storage.  A compressed
        chunk that must be dropped wholesale is skipped in one step (its
        physical size is exact at chunk extent); inside one, records are
        charged their proportional share of the compressed body.
        """
        segments = self._segments
        total = sum(segment.size_bytes for segment in segments)
        cutoff = self._log_start_offset
        if total <= retention_bytes:
            return cutoff
        for segment in segments:
            if total - segment.size_bytes > retention_bytes:
                total -= segment.size_bytes
                cutoff = segment.end_offset
                continue  # dropping all of it still leaves us over: drop whole
            for source, start, stop in segment.runs_from(0):
                if isinstance(source, PackedRecordBatch):
                    chunk_bytes = source.physical_size_range(start, stop)
                    if total - chunk_bytes > retention_bytes:
                        # Whole-chunk drop: identical cutoff to the
                        # per-record walk (the budget check cannot fire
                        # mid-chunk when even dropping all of it leaves
                        # the log over budget), without materialising a
                        # lazy chunk's size column record by record.
                        total -= chunk_bytes
                        cutoff = source.offset_at(stop - 1) + 1
                        continue
                    for index in range(start, stop):
                        if total <= retention_bytes:
                            return cutoff
                        total -= source.physical_size_range(index, index + 1)
                        cutoff = source.offset_at(index) + 1
                else:
                    for index in range(start, stop):
                        if total <= retention_bytes:
                            return cutoff
                        total -= source[index].size_bytes()
                        cutoff = source[index].offset + 1
            break
        return cutoff

    def compact(self) -> int:
        """Log compaction: keep only the latest record for each key.

        Records without a key are always retained (they carry no compaction
        identity).  Runs segment-by-segment entirely under the write lock,
        so records appended concurrently are never lost — the lost-append
        race of the old snapshot/filter/replace dance is structurally
        impossible.  Untouched segments keep their objects; filtered ones
        are rebuilt sealed (fresh packed chunks, so views handed out before
        the compaction keep serving the old bytes).  A fresh active segment
        reopens at the log end.  Returns the number of records removed.
        """
        with self._lock:
            latest_for_key: dict[str, int] = {}
            for segment in self._segments:
                for stored in segment.records:
                    if stored.key is not None:
                        latest_for_key[str(stored.key)] = stored.offset
            removed = 0
            rebuilt: List[LogSegment] = []
            for segment in self._segments:
                records = segment.records
                kept = [
                    stored
                    for stored in records
                    if stored.key is None
                    or latest_for_key[str(stored.key)] == stored.offset
                ]
                dropped = len(records) - len(kept)
                removed += dropped
                if not dropped:
                    rebuilt.append(segment)  # untouched: keep the object
                elif kept:
                    rebuilt.append(LogSegment.sealed_from(kept))
            if not rebuilt or rebuilt[-1].sealed:
                rebuilt.append(LogSegment(self._next_offset))
            self._segments = tuple(rebuilt)
            return removed

    def replace_records(self, records: Sequence[StoredRecord]) -> None:
        """Replace the retained records (compaction).  Offsets must be sorted.

        Kept for compatibility with external compaction drivers; in-log
        :meth:`compact` is the raceless path.  The records are re-chunked
        into sealed segments of at most ``segment_records`` each.
        """
        with self._lock:
            offsets = [r.offset for r in records]
            if offsets != sorted(offsets):
                raise ValueError("compacted records must stay offset-ordered")
            if records:
                if records[0].offset < self._log_start_offset:
                    raise ValueError("compaction may not resurrect truncated offsets")
                if records[-1].offset >= self._next_offset:
                    raise ValueError("compaction may not invent future offsets")
            rebuilt: List[LogSegment] = [
                LogSegment.sealed_from(records[i : i + self.segment_records])
                for i in range(0, len(records), self.segment_records)
            ]
            rebuilt.append(LogSegment(self._next_offset))
            self._segments = tuple(rebuilt)
