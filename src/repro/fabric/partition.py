"""Append-only partition logs on segmented storage.

A partition is the unit of ordering, parallelism and replication in the
fabric.  Each partition is a strictly ordered, append-only log of
:class:`~repro.fabric.record.StoredRecord`; offsets are assigned
contiguously starting from the log start offset.  Retention and compaction
may advance the log start offset, but never reorder or renumber records.

Storage is Kafka-style **segmented**: one mutable *active* segment takes
appends, behind it sits a list of *sealed*, immutable segments.  Each
segment carries its base offset, cached byte size, min/max append time
and (for compaction-gapped segments) a sparse offset index, which buys
the hot paths their complexity budget:

* **Retention is O(segments), not O(records)** — ``truncate_before``
  drops whole sealed segments by pointer and rebuilds at most the one
  boundary segment; time/size cutoffs are found from per-segment bounds
  with only the boundary segment scanned.
* **Reads are lock-split** — sealed segments are immutable and the
  segment list is swapped atomically, so fetches snapshot the list and
  serve without touching the write lock; appends only ever extend the
  active segment's record list (safe to slice concurrently under
  CPython).  The single write lock covers appends, sealing, truncation
  and compaction.
* **Size accounting is O(segments)** — ``size_bytes`` sums cached
  per-segment counters instead of re-walking every retained record.
* **Timestamp lookup binary-searches** per-segment time bounds, then one
  segment's records, instead of rebuilding a full timestamp list.
"""

from __future__ import annotations

import bisect
import itertools
import threading
import time
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.fabric.errors import OffsetOutOfRangeError, RecordTooLargeError
from repro.fabric.record import EventRecord, StoredRecord

#: Default roll thresholds: the active segment is sealed once it holds
#: this many records or bytes.  Small enough that seven-day retention
#: over a busy partition drops *whole* segments, large enough that the
#: per-segment overhead is negligible next to the records themselves.
DEFAULT_SEGMENT_RECORDS = 4096
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

#: Sparse-index granularity for compaction-gapped sealed segments: one
#: index entry per this many records, so a lookup bisects the index and
#: scans at most this many records.
_INDEX_INTERVAL = 64


def _base_offset(segment: "LogSegment") -> int:
    return segment.base_offset


def _max_append_time(segment: "LogSegment") -> float:
    return segment.max_append_time


def _append_time(stored: StoredRecord) -> float:
    return stored.append_time


class LogSegment:
    """One contiguous run of a partition's records.

    A segment is *active* (mutable list of records, appended to under the
    log's write lock, always offset-contiguous) until the log seals it,
    after which it is immutable: its records become a tuple and — if
    compaction ever punched offset gaps into it — a sparse offset index
    is built for :meth:`locate`.  Readers may hold a reference across a
    seal; both representations serve the same slicing protocol.

    ``min_append_time``/``max_append_time`` are *conservative covers* of
    the records' append times (exact until the segment is sliced at a
    truncation boundary, which inherits the parent's bounds rather than
    re-walking the kept records); the time searches treat them as covers
    and stay exact.
    """

    __slots__ = (
        "base_offset",
        "end_offset",
        "records",
        "size_bytes",
        "min_append_time",
        "max_append_time",
        "sealed",
        "contiguous",
        "_index",
    )

    def __init__(self, base_offset: int) -> None:
        self.base_offset = base_offset
        #: Offset the next record after this segment would take
        #: (``records[-1].offset + 1`` once non-empty).
        self.end_offset = base_offset
        self.records: Sequence[StoredRecord] = []
        self.size_bytes = 0
        self.min_append_time: float = 0.0
        self.max_append_time: float = 0.0
        self.sealed = False
        self.contiguous = True
        self._index: Optional[Tuple[int, ...]] = None

    @classmethod
    def sealed_from(cls, records: Sequence[StoredRecord]) -> "LogSegment":
        """Build an immutable segment from a non-empty, offset-ordered run."""
        records = tuple(records)
        segment = cls(records[0].offset)
        segment.records = records
        segment.end_offset = records[-1].offset + 1
        size = 0
        low = high = records[0].append_time
        for stored in records:  # one pass: bytes and time bounds together
            size += stored.size_bytes()
            when = stored.append_time
            if when < low:
                low = when
            elif when > high:
                high = when
        segment.size_bytes = size
        segment.min_append_time = low
        segment.max_append_time = high
        segment.contiguous = (
            records[-1].offset - records[0].offset == len(records) - 1
        )
        segment.seal()
        return segment

    def seal(self) -> None:
        """Freeze the segment: records become a tuple, gapped segments
        get their sparse offset index.  Holders of the old list keep a
        valid (identical) view."""
        self.records = tuple(self.records)
        if not self.contiguous:
            self._index = tuple(
                self.records[i].offset
                for i in range(0, len(self.records), _INDEX_INTERVAL)
            )
        self.sealed = True

    # -- mutation (caller holds the owning log's write lock) ----------- #
    def append(self, stored: StoredRecord) -> None:
        if not self.records:
            self.base_offset = stored.offset
            self.min_append_time = stored.append_time
            self.max_append_time = stored.append_time
        else:
            when = stored.append_time
            if when < self.min_append_time:
                self.min_append_time = when
            if when > self.max_append_time:
                self.max_append_time = when
        self.records.append(stored)
        self.end_offset = stored.offset + 1
        self.size_bytes += stored.size_bytes()

    def extend_batch(
        self, stored: List[StoredRecord], batch_bytes: int, when: float
    ) -> None:
        """Adopt a whole same-append-time batch in one list extend."""
        if not self.records:
            self.base_offset = stored[0].offset
            self.min_append_time = when
            self.max_append_time = when
        else:
            if when < self.min_append_time:
                self.min_append_time = when
            if when > self.max_append_time:
                self.max_append_time = when
        self.records.extend(stored)
        self.end_offset = stored[-1].offset + 1
        self.size_bytes += batch_bytes

    # -- lookup (safe without the write lock) -------------------------- #
    def locate(self, offset: int) -> int:
        """Index of the first record with offset >= ``offset``.

        O(1) for contiguous segments; gapped (compacted) segments bisect
        the sparse index and scan at most ``_INDEX_INTERVAL`` records.
        """
        if self.contiguous:
            position = offset - self.base_offset
            return 0 if position < 0 else position
        position = 0
        index = self._index
        if index:
            entry = bisect.bisect_right(index, offset) - 1
            if entry > 0:
                position = entry * _INDEX_INTERVAL
        records = self.records
        length = len(records)
        while position < length and records[position].offset < offset:
            position += 1
        return position

    def slice_from(self, position: int) -> "LogSegment":
        """New segment holding ``records[position:]`` (truncation boundary).

        Byte accounting scans only the *smaller* of the dropped/kept sides
        (subtracting from the cached total otherwise), and the time bounds
        are inherited from the parent as a **conservative cover** — the
        time searches tolerate covers by falling through to the next
        segment, so the boundary rebuild never re-walks the whole segment.
        """
        kept = self.records[position:]
        fresh = LogSegment(kept[0].offset)
        fresh.end_offset = kept[-1].offset + 1
        if position * 2 <= len(self.records):
            fresh.size_bytes = self.size_bytes - sum(
                stored.size_bytes() for stored in self.records[:position]
            )
        else:
            fresh.size_bytes = sum(stored.size_bytes() for stored in kept)
        fresh.min_append_time = self.min_append_time
        fresh.max_append_time = self.max_append_time
        fresh.contiguous = kept[-1].offset - kept[0].offset == len(kept) - 1
        if self.sealed:
            fresh.records = kept  # already an immutable tuple slice
            fresh.seal()
        else:
            fresh.records = list(kept)
        return fresh

    def describe(self) -> dict:
        records = self.records
        return {
            "base_offset": self.base_offset,
            "end_offset": self.end_offset,
            "records": len(records),
            "size_bytes": self.size_bytes,
            "min_append_time": self.min_append_time if records else None,
            "max_append_time": self.max_append_time if records else None,
            "sealed": self.sealed,
            "contiguous": self.contiguous,
        }


class PartitionLog:
    """A single partition's segmented log: thread-safe append and fetch.

    Parameters
    ----------
    topic:
        Topic name (used only for error messages and metrics labels).
    partition:
        Partition index within the topic.
    max_message_bytes:
        Per-record size limit; appends of larger records raise
        :class:`~repro.fabric.errors.RecordTooLargeError`.
    segment_records / segment_bytes:
        Active-segment roll thresholds; ``None`` selects the module
        defaults.  Smaller segments make retention finer-grained, larger
        ones reduce per-segment overhead.

    Concurrency model (the lock split): one write lock serializes every
    mutation — appends to the active segment, sealing, truncation,
    compaction and the atomic swap of the segment tuple.  Read paths
    (``fetch``/``fetch_with_usage``, ``offset_for_timestamp``,
    ``size_bytes``, ``read_all``) never take it: they snapshot
    ``_next_offset`` *then* the segment tuple (appends publish records
    before advancing ``_next_offset``, so every offset below the snapshot
    is reachable) and serve from immutable sealed segments plus the
    append-only active record list.
    """

    def __init__(
        self,
        topic: str,
        partition: int,
        *,
        max_message_bytes: int = 8 * 1024 * 1024,
        segment_records: Optional[int] = None,
        segment_bytes: Optional[int] = None,
    ) -> None:
        self.topic = topic
        self.partition = partition
        self.max_message_bytes = int(max_message_bytes)
        self.segment_records = (
            int(segment_records) if segment_records is not None else DEFAULT_SEGMENT_RECORDS
        )
        self.segment_bytes = (
            int(segment_bytes) if segment_bytes is not None else DEFAULT_SEGMENT_BYTES
        )
        if self.segment_records < 1:
            raise ValueError("segment_records must be >= 1")
        if self.segment_bytes < 1:
            raise ValueError("segment_bytes must be >= 1")
        self._segments: Tuple[LogSegment, ...] = (LogSegment(0),)
        self._log_start_offset = 0
        self._next_offset = 0
        self._lock = threading.RLock()
        self._total_appended = 0
        self._total_bytes = 0
        self._last_append_time = 0.0

    # ------------------------------------------------------------------ #
    # Offsets
    # ------------------------------------------------------------------ #
    @property
    def log_start_offset(self) -> int:
        """First offset still retained in the log (lock-free read)."""
        return self._log_start_offset

    @property
    def log_end_offset(self) -> int:
        """Offset that the *next* appended record will receive (lock-free)."""
        return self._next_offset

    @property
    def high_watermark(self) -> int:
        """Highest offset exposed to consumers (== log end in this model)."""
        return self.log_end_offset

    def __len__(self) -> int:
        with self._lock:
            return sum(len(segment.records) for segment in self._segments)

    @property
    def size_bytes(self) -> int:
        """Total bytes currently retained: a sum of cached per-segment
        counters, O(segments) instead of a walk over every record."""
        return sum(segment.size_bytes for segment in self._segments)

    @property
    def total_appended(self) -> int:
        """Number of records appended over the log's lifetime."""
        with self._lock:
            return self._total_appended

    @property
    def total_bytes_appended(self) -> int:
        with self._lock:
            return self._total_bytes

    # ------------------------------------------------------------------ #
    # Segment lifecycle (callers hold the write lock)
    # ------------------------------------------------------------------ #
    def _should_roll(self, active: LogSegment) -> bool:
        return bool(active.records) and (
            len(active.records) >= self.segment_records
            or active.size_bytes >= self.segment_bytes
        )

    def _roll_active(self, base_offset: int) -> LogSegment:
        """Seal the active segment and open a fresh one at ``base_offset``."""
        self._segments[-1].seal()
        fresh = LogSegment(base_offset)
        self._segments = self._segments + (fresh,)
        return fresh

    def _assign_time(self, append_time: Optional[float]) -> float:
        """Log append time: monotone non-decreasing when log-assigned.

        Callers supplying an explicit ``append_time`` (retention tests,
        follower adoption) are trusted to keep it non-decreasing — the
        time-bound searches assume it.
        """
        if append_time is None:
            when = time.time()
            if when < self._last_append_time:
                when = self._last_append_time
        else:
            when = append_time
        if when > self._last_append_time:
            self._last_append_time = when
        return when

    def describe_segments(self) -> List[dict]:
        """Per-segment introspection (base/end offset, size, time bounds)."""
        return [segment.describe() for segment in self._segments]

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    # ------------------------------------------------------------------ #
    # Append / fetch
    # ------------------------------------------------------------------ #
    def append(self, record: EventRecord, append_time: Optional[float] = None) -> int:
        """Append ``record`` and return the offset it was assigned."""
        size = record.size_bytes()
        if size > self.max_message_bytes:
            raise RecordTooLargeError(
                f"record of {size} B exceeds max.message.bytes="
                f"{self.max_message_bytes} for {self.topic}-{self.partition}"
            )
        with self._lock:
            offset = self._next_offset
            stored = StoredRecord(
                offset=offset,
                record=record,
                append_time=self._assign_time(append_time),
            )
            active = self._segments[-1]
            if self._should_roll(active):
                active = self._roll_active(offset)
            active.append(stored)
            self._next_offset = offset + 1
            self._total_appended += 1
            self._total_bytes += size
            return offset

    def append_batch(
        self, records: Iterable[EventRecord], append_time: Optional[float] = None
    ) -> list[int]:
        """Append every record under one lock acquisition; return their offsets.

        The batch is atomic: sizes are validated up front, so either every
        record receives a contiguous offset or none does.  This is the leader
        half of the batched produce path — one lock round-trip per batch
        instead of one per record.  A batch that fits the active segment is
        adopted in a single list extend; oversize batches roll segments as
        they go.
        """
        records = list(records)
        if not records:
            return []
        sizes = [record.size_bytes() for record in records]
        for size in sizes:
            if size > self.max_message_bytes:
                raise RecordTooLargeError(
                    f"record of {size} B exceeds max.message.bytes="
                    f"{self.max_message_bytes} for {self.topic}-{self.partition}"
                )
        batch_bytes = sum(sizes)
        with self._lock:
            when = self._assign_time(append_time)
            base = self._next_offset
            offsets = list(range(base, base + len(records)))
            stored = [
                StoredRecord(offset=offset, record=record, append_time=when)
                for offset, record in zip(offsets, records)
            ]
            active = self._segments[-1]
            if self._should_roll(active):
                active = self._roll_active(base)
            if (
                len(active.records) + len(stored) <= self.segment_records
                and active.size_bytes + batch_bytes <= self.segment_bytes
            ):
                active.extend_batch(stored, batch_bytes, when)
            else:
                for item in stored:
                    if self._should_roll(active):
                        active = self._roll_active(item.offset)
                    active.append(item)
            self._next_offset = base + len(records)
            self._total_appended += len(records)
            self._total_bytes += batch_bytes
            return offsets

    def append_stored(self, records: Iterable[StoredRecord]) -> int:
        """Follower path: adopt leader-assigned offsets for missing records.

        Records at offsets the replica already holds are skipped; the rest
        are appended under one lock acquisition, preserving the leader's
        offsets.  A leader-side compaction gap rolls the active segment so
        the active segment stays offset-contiguous (gaps live only between
        segments or inside sealed, indexed ones).  Returns the new log end
        offset.
        """
        with self._lock:
            fresh = [s for s in records if s.offset >= self._next_offset]
            if not fresh:
                return self._next_offset
            active = self._segments[-1]
            added_bytes = 0
            for stored in fresh:
                if self._should_roll(active) or (
                    active.records and stored.offset != active.end_offset
                ):
                    active = self._roll_active(stored.offset)
                active.append(stored)
                self._next_offset = stored.offset + 1
                added_bytes += stored.size_bytes()
                if stored.append_time > self._last_append_time:
                    self._last_append_time = stored.append_time
            self._total_appended += len(fresh)
            self._total_bytes += added_bytes
            return self._next_offset

    def fetch(
        self,
        offset: int,
        max_records: int = 500,
        max_bytes: Optional[int] = None,
    ) -> list[StoredRecord]:
        """Return up to ``max_records`` records starting at ``offset``.

        Fetching exactly at the log end returns an empty list (the consumer
        is caught up).  Fetching below the log start or beyond the end
        raises :class:`OffsetOutOfRangeError`, matching Kafka semantics.
        """
        return self.fetch_with_usage(
            offset, max_records=max_records, max_bytes=max_bytes
        )[0]

    def fetch_with_usage(
        self,
        offset: int,
        max_records: int = 500,
        max_bytes: Optional[int] = None,
    ) -> tuple[list[StoredRecord], int]:
        """Like :meth:`fetch` but also returns the bytes consumed.

        The byte count lets a caller serving several partitions (a fetch
        session) charge this partition's records against a budget shared
        across the whole session instead of granting ``max_bytes`` to each
        partition independently.  With ``max_bytes=None`` no budget exists
        and the reported usage is ``0`` (the replication fast path keeps
        its plain slices, paying nothing for accounting).

        Runs entirely without the write lock: the segment tuple is
        snapshotted and sealed segments are immutable, so fetches of old
        data never contend with appends.
        """
        end = self._next_offset
        if offset == end:
            return [], 0
        # Snapshot the segment tuple *before* reading the start offset: a
        # truncation that lands in between raises out-of-range (as the
        # locked flat implementation did), while one that lands after is
        # served consistently from this snapshot — its dropped segments
        # are still referenced here.  Reading the start first instead
        # would pass the range check and then silently serve from the
        # post-truncation segments at a far later offset.
        segments = self._segments
        start = self._log_start_offset
        if offset < start or offset > end:
            raise OffsetOutOfRangeError(
                f"offset {offset} out of range "
                f"[{start}, {end}] "
                f"for {self.topic}-{self.partition}"
            )
        first = bisect.bisect_right(segments, offset, key=_base_offset) - 1
        if first < 0:
            first = 0
        position = segments[first].locate(offset)
        out: list[StoredRecord] = []
        if max_bytes is None:
            # No byte budget: plain slices (the replication fast path).
            needed = max_records
            for segment in segments[first:]:
                records = segment.records
                if position < len(records):
                    taken = records[position : position + needed]
                    out.extend(taken)
                    needed -= len(taken)
                    if needed <= 0:
                        break
                position = 0
            return out, 0
        budget = max_bytes
        for segment in segments[first:]:
            records = segment.records
            length = len(records)
            while position < length:
                if len(out) >= max_records:
                    return out, max_bytes - budget
                stored = records[position]
                size = stored.size_bytes()
                if out and size > budget:
                    return out, max_bytes - budget
                out.append(stored)
                budget -= size
                position += 1
            position = 0
        return out, max_bytes - budget

    def read_all(self) -> Sequence[StoredRecord]:
        """Snapshot of every retained record (testing/persistence helper)."""
        return tuple(
            itertools.chain.from_iterable(
                segment.records for segment in self._segments
            )
        )

    def __iter__(self) -> Iterator[StoredRecord]:
        return iter(self.read_all())

    def offset_for_timestamp(self, timestamp: float) -> Optional[int]:
        """Earliest offset whose **append time** is >= ``timestamp``.

        Supports the "consume after a certain timestamp" mode described in
        Section IV-F.  The search runs on the log-assigned append time —
        which this log keeps monotonically non-decreasing — *not* on the
        client-supplied ``record.timestamp``, which carries no ordering
        guarantee (producers may ship arbitrary or out-of-order
        timestamps).  Binary-searches per-segment time bounds, then one
        segment's records.  Returns ``None`` when every retained record is
        older than ``timestamp``.
        """
        segments = self._segments
        if not segments[-1].records:
            segments = segments[:-1]  # only the active segment may be empty
        if not segments:
            return None
        first = bisect.bisect_left(segments, timestamp, key=_max_append_time)
        for segment in segments[first:]:
            records = segment.records
            if not records:
                continue
            if segment.min_append_time >= timestamp:
                # The whole segment is at/after the timestamp: its first
                # record answers without scanning — only the one segment
                # that straddles the timestamp is ever searched.
                return records[0].offset
            index = bisect.bisect_left(records, timestamp, key=_append_time)
            if index < len(records):
                return records[index].offset
        return None

    # ------------------------------------------------------------------ #
    # Retention / compaction
    # ------------------------------------------------------------------ #
    def truncate_before(self, offset: int) -> int:
        """Drop records with offsets strictly below ``offset``.

        Whole sealed segments below the cutoff are dropped by pointer; at
        most one boundary segment is rebuilt, so a retention run costs
        O(segments + one segment scan), not O(retained records).  Returns
        the number of records removed.  Used by time/size retention.
        """
        with self._lock:
            offset = max(offset, self._log_start_offset)
            offset = min(offset, self._next_offset)
            segments = self._segments
            removed = 0
            kept: List[LogSegment] = []
            for index, segment in enumerate(segments):
                if segment.end_offset <= offset:
                    removed += len(segment.records)
                    continue  # whole-segment drop: no record is touched
                if segment.base_offset < offset:
                    position = segment.locate(offset)
                    removed += position
                    if position:
                        segment = segment.slice_from(position)
                kept.append(segment)
                kept.extend(segments[index + 1 :])
                break
            if not kept or kept[-1].sealed:
                kept.append(LogSegment(self._next_offset))
            # Publish the new start *before* the new segment tuple: readers
            # snapshot segments first, then the start offset, so whoever
            # sees the truncated tuple is guaranteed to also see the new
            # start and raise out-of-range instead of silently serving
            # from the wrong offset.
            self._log_start_offset = offset
            self._segments = tuple(kept)
            return removed

    def size_retention_cutoff(self, retention_bytes: int) -> int:
        """Earliest offset to keep so retained bytes fit ``retention_bytes``.

        Sums cached per-segment sizes (O(segments)); only the boundary
        segment — where dropping the whole thing would over-shoot — is
        scanned record by record, preserving the record-granular semantics
        of the flat implementation.
        """
        segments = self._segments
        total = sum(segment.size_bytes for segment in segments)
        cutoff = self._log_start_offset
        if total <= retention_bytes:
            return cutoff
        for segment in segments:
            if total - segment.size_bytes > retention_bytes:
                total -= segment.size_bytes
                cutoff = segment.end_offset
                continue  # dropping all of it still leaves us over: drop whole
            for stored in segment.records:
                if total <= retention_bytes:
                    break
                total -= stored.size_bytes()
                cutoff = stored.offset + 1
            break
        return cutoff

    def compact(self) -> int:
        """Log compaction: keep only the latest record for each key.

        Records without a key are always retained (they carry no compaction
        identity).  Runs segment-by-segment entirely under the write lock,
        so records appended concurrently are never lost — the lost-append
        race of the old snapshot/filter/replace dance is structurally
        impossible.  Untouched segments keep their objects; filtered ones
        are rebuilt sealed (with their sparse offset index), and a fresh
        active segment reopens at the log end.  Returns the number of
        records removed.
        """
        with self._lock:
            latest_for_key: dict[str, int] = {}
            for segment in self._segments:
                for stored in segment.records:
                    if stored.key is not None:
                        latest_for_key[str(stored.key)] = stored.offset
            removed = 0
            rebuilt: List[LogSegment] = []
            for segment in self._segments:
                records = segment.records
                kept = [
                    stored
                    for stored in records
                    if stored.key is None
                    or latest_for_key[str(stored.key)] == stored.offset
                ]
                dropped = len(records) - len(kept)
                removed += dropped
                if not dropped:
                    rebuilt.append(segment)  # untouched: keep the object
                elif kept:
                    rebuilt.append(LogSegment.sealed_from(kept))
            if not rebuilt or rebuilt[-1].sealed:
                rebuilt.append(LogSegment(self._next_offset))
            self._segments = tuple(rebuilt)
            return removed

    def replace_records(self, records: Sequence[StoredRecord]) -> None:
        """Replace the retained records (compaction).  Offsets must be sorted.

        Kept for compatibility with external compaction drivers; in-log
        :meth:`compact` is the raceless path.  The records are re-chunked
        into sealed segments of at most ``segment_records`` each.
        """
        with self._lock:
            offsets = [r.offset for r in records]
            if offsets != sorted(offsets):
                raise ValueError("compacted records must stay offset-ordered")
            if records:
                if records[0].offset < self._log_start_offset:
                    raise ValueError("compaction may not resurrect truncated offsets")
                if records[-1].offset >= self._next_offset:
                    raise ValueError("compaction may not invent future offsets")
            rebuilt: List[LogSegment] = [
                LogSegment.sealed_from(records[i : i + self.segment_records])
                for i in range(0, len(records), self.segment_records)
            ]
            rebuilt.append(LogSegment(self._next_offset))
            self._segments = tuple(rebuilt)
