"""Append-only partition logs.

A partition is the unit of ordering, parallelism and replication in the
fabric.  Each partition is a strictly ordered, append-only log of
:class:`~repro.fabric.record.StoredRecord`; offsets are assigned
contiguously starting from the log start offset.  Retention and compaction
may advance the log start offset, but never reorder or renumber records.
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Iterable, Iterator, Optional, Sequence

from repro.fabric.errors import OffsetOutOfRangeError, RecordTooLargeError
from repro.fabric.record import EventRecord, StoredRecord


class PartitionLog:
    """A single partition's log, with thread-safe append and fetch.

    Parameters
    ----------
    topic:
        Topic name (used only for error messages and metrics labels).
    partition:
        Partition index within the topic.
    max_message_bytes:
        Per-record size limit; appends of larger records raise
        :class:`~repro.fabric.errors.RecordTooLargeError`.
    """

    def __init__(
        self,
        topic: str,
        partition: int,
        *,
        max_message_bytes: int = 8 * 1024 * 1024,
    ) -> None:
        self.topic = topic
        self.partition = partition
        self.max_message_bytes = int(max_message_bytes)
        self._records: list[StoredRecord] = []
        self._log_start_offset = 0
        self._next_offset = 0
        self._lock = threading.RLock()
        self._total_appended = 0
        self._total_bytes = 0

    # ------------------------------------------------------------------ #
    # Offsets
    # ------------------------------------------------------------------ #
    @property
    def log_start_offset(self) -> int:
        """First offset still retained in the log."""
        with self._lock:
            return self._log_start_offset

    @property
    def log_end_offset(self) -> int:
        """Offset that the *next* appended record will receive."""
        with self._lock:
            return self._next_offset

    @property
    def high_watermark(self) -> int:
        """Highest offset exposed to consumers (== log end in this model)."""
        return self.log_end_offset

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def size_bytes(self) -> int:
        """Total bytes currently retained."""
        with self._lock:
            return sum(r.size_bytes() for r in self._records)

    @property
    def total_appended(self) -> int:
        """Number of records appended over the log's lifetime."""
        with self._lock:
            return self._total_appended

    @property
    def total_bytes_appended(self) -> int:
        with self._lock:
            return self._total_bytes

    # ------------------------------------------------------------------ #
    # Append / fetch
    # ------------------------------------------------------------------ #
    def append(self, record: EventRecord, append_time: Optional[float] = None) -> int:
        """Append ``record`` and return the offset it was assigned."""
        size = record.size_bytes()
        if size > self.max_message_bytes:
            raise RecordTooLargeError(
                f"record of {size} B exceeds max.message.bytes="
                f"{self.max_message_bytes} for {self.topic}-{self.partition}"
            )
        with self._lock:
            offset = self._next_offset
            stored = StoredRecord(
                offset=offset,
                record=record,
                append_time=append_time if append_time is not None else time.time(),
            )
            self._records.append(stored)
            self._next_offset += 1
            self._total_appended += 1
            self._total_bytes += size
            return offset

    def append_batch(
        self, records: Iterable[EventRecord], append_time: Optional[float] = None
    ) -> list[int]:
        """Append every record under one lock acquisition; return their offsets.

        The batch is atomic: sizes are validated up front, so either every
        record receives a contiguous offset or none does.  This is the leader
        half of the batched produce path — one lock round-trip per batch
        instead of one per record.
        """
        records = list(records)
        if not records:
            return []
        sizes = [record.size_bytes() for record in records]
        for size in sizes:
            if size > self.max_message_bytes:
                raise RecordTooLargeError(
                    f"record of {size} B exceeds max.message.bytes="
                    f"{self.max_message_bytes} for {self.topic}-{self.partition}"
                )
        with self._lock:
            when = append_time if append_time is not None else time.time()
            base = self._next_offset
            offsets = list(range(base, base + len(records)))
            self._records.extend(
                StoredRecord(offset=offset, record=record, append_time=when)
                for offset, record in zip(offsets, records)
            )
            self._next_offset = base + len(records)
            self._total_appended += len(records)
            self._total_bytes += sum(sizes)
            return offsets

    def append_stored(self, records: Iterable[StoredRecord]) -> int:
        """Follower path: adopt leader-assigned offsets for missing records.

        Records at offsets the replica already holds are skipped; the rest
        are appended under one lock acquisition, preserving the leader's
        offsets (including any compaction gaps).  Returns the new log end
        offset.
        """
        with self._lock:
            fresh = [s for s in records if s.offset >= self._next_offset]
            if not fresh:
                return self._next_offset
            self._records.extend(fresh)
            self._next_offset = fresh[-1].offset + 1
            self._total_appended += len(fresh)
            self._total_bytes += sum(s.size_bytes() for s in fresh)
            return self._next_offset

    def fetch(
        self,
        offset: int,
        max_records: int = 500,
        max_bytes: Optional[int] = None,
    ) -> list[StoredRecord]:
        """Return up to ``max_records`` records starting at ``offset``.

        Fetching exactly at the log end returns an empty list (the consumer
        is caught up).  Fetching below the log start or beyond the end
        raises :class:`OffsetOutOfRangeError`, matching Kafka semantics.
        """
        return self.fetch_with_usage(
            offset, max_records=max_records, max_bytes=max_bytes
        )[0]

    def fetch_with_usage(
        self,
        offset: int,
        max_records: int = 500,
        max_bytes: Optional[int] = None,
    ) -> tuple[list[StoredRecord], int]:
        """Like :meth:`fetch` but also returns the bytes consumed.

        The byte count lets a caller serving several partitions (a fetch
        session) charge this partition's records against a budget shared
        across the whole session instead of granting ``max_bytes`` to each
        partition independently.  With ``max_bytes=None`` no budget exists
        and the reported usage is ``0`` (the replication fast path keeps
        its plain slice, paying nothing for accounting).
        """
        with self._lock:
            if offset == self._next_offset:
                return [], 0
            if offset < self._log_start_offset or offset > self._next_offset:
                raise OffsetOutOfRangeError(
                    f"offset {offset} out of range "
                    f"[{self._log_start_offset}, {self._next_offset}] "
                    f"for {self.topic}-{self.partition}"
                )
            index = self._index_of(offset)
            if max_bytes is None:
                # No byte budget: a plain slice (the replication fast path).
                return self._records[index : index + max_records], 0
            out = []
            budget = max_bytes
            for stored in self._records[index:]:
                if len(out) >= max_records:
                    break
                size = stored.size_bytes()
                if out and size > budget:
                    break
                out.append(stored)
                budget -= size
            return out, max_bytes - budget

    def read_all(self) -> Sequence[StoredRecord]:
        """Snapshot of every retained record (testing/persistence helper)."""
        with self._lock:
            return tuple(self._records)

    def __iter__(self) -> Iterator[StoredRecord]:
        return iter(self.read_all())

    def offset_for_timestamp(self, timestamp: float) -> Optional[int]:
        """Earliest offset whose record timestamp is >= ``timestamp``.

        Supports the "consume after a certain timestamp" mode described in
        Section IV-F.  Returns ``None`` when every retained record is older.
        """
        with self._lock:
            timestamps = [r.record.timestamp for r in self._records]
            index = bisect.bisect_left(timestamps, timestamp)
            if index >= len(self._records):
                return None
            return self._records[index].offset

    # ------------------------------------------------------------------ #
    # Retention / compaction hooks
    # ------------------------------------------------------------------ #
    def truncate_before(self, offset: int) -> int:
        """Drop records with offsets strictly below ``offset``.

        Returns the number of records removed.  Used by time/size retention.
        """
        with self._lock:
            offset = max(offset, self._log_start_offset)
            offset = min(offset, self._next_offset)
            index = self._index_of(offset) if offset < self._next_offset else len(self._records)
            removed = index
            if removed > 0:
                self._records = self._records[index:]
            self._log_start_offset = offset
            return removed

    def replace_records(self, records: Sequence[StoredRecord]) -> None:
        """Replace the retained records (compaction).  Offsets must be sorted."""
        with self._lock:
            offsets = [r.offset for r in records]
            if offsets != sorted(offsets):
                raise ValueError("compacted records must stay offset-ordered")
            if records:
                if records[0].offset < self._log_start_offset:
                    raise ValueError("compaction may not resurrect truncated offsets")
                if records[-1].offset >= self._next_offset:
                    raise ValueError("compaction may not invent future offsets")
            self._records = list(records)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _index_of(self, offset: int) -> int:
        """Index in ``self._records`` of the first record with offset >= ``offset``."""
        lo = offset - self._log_start_offset
        # Fast path: no gaps means direct indexing; compaction introduces gaps.
        if 0 <= lo < len(self._records) and self._records[lo].offset == offset:
            return lo
        offsets = [r.offset for r in self._records]
        return bisect.bisect_left(offsets, offset)
