"""Serialization helpers shared by the fabric and the SDK.

Octopus imposes no event schema ("diversity of event schemata" is an
explicit requirement in Section III-B), so values are arbitrary
JSON-serializable objects, ``bytes`` or ``str``.  The helpers here give a
consistent size accounting and a canonical wire form.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = ["serialize", "deserialize", "serialized_size", "SerdeError"]


class SerdeError(ValueError):
    """Raised when a value cannot be serialized for the fabric."""


def serialize(value: Any) -> bytes:
    """Encode ``value`` into bytes for transport.

    ``bytes`` pass through untouched, ``str`` is UTF-8 encoded and any
    other object is JSON-encoded (sorted keys, so the encoding is
    deterministic and usable as a compaction identity).
    """
    if value is None:
        return b""
    if isinstance(value, bytes):
        return value
    if isinstance(value, bytearray):
        return bytes(value)
    if isinstance(value, str):
        return value.encode("utf-8")
    try:
        return json.dumps(value, sort_keys=True, default=str).encode("utf-8")
    except (TypeError, ValueError) as exc:  # pragma: no cover - defensive
        raise SerdeError(f"value of type {type(value)!r} is not serializable") from exc


def deserialize(payload: bytes) -> Any:
    """Best-effort inverse of :func:`serialize`.

    Attempts JSON first and falls back to UTF-8 text, then raw bytes.
    """
    if not payload:
        return None
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        try:
            return payload.decode("utf-8")
        except UnicodeDecodeError:
            return payload


def serialized_size(value: Any) -> int:
    """Size in bytes of ``value`` once serialized.

    Cheap paths for the common cases (bytes/str/int/float) avoid a full
    JSON round trip in the hot produce path.
    """
    if value is None:
        return 0
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, bool):
        return 5
    if isinstance(value, int):
        return len(str(value))
    if isinstance(value, float):
        return 18
    return len(serialize(value))
