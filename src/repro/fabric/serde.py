"""Serialization helpers shared by the fabric and the SDK.

Octopus imposes no event schema ("diversity of event schemata" is an
explicit requirement in Section III-B), so values are arbitrary
JSON-serializable objects, ``bytes`` or ``str``.  The helpers here give a
consistent size accounting and a canonical wire form.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "serialize",
    "deserialize",
    "serialized_size",
    "serialize_with_size",
    "SerdeError",
]


class SerdeError(ValueError):
    """Raised when a value cannot be serialized for the fabric."""


def _json_encode(value: Any) -> bytes:
    """The one JSON encode seam: every fabric JSON encode funnels through
    here (looked up at call time), so tests can count encode passes and
    alternative encoders can be swapped in process-wide."""
    return json.dumps(value, sort_keys=True, default=str).encode("utf-8")


def serialize(value: Any) -> bytes:
    """Encode ``value`` into bytes for transport.

    ``bytes`` pass through untouched, ``str`` is UTF-8 encoded and any
    other object is JSON-encoded (sorted keys, so the encoding is
    deterministic and usable as a compaction identity).
    """
    if value is None:
        return b""
    if isinstance(value, bytes):
        return value
    if isinstance(value, bytearray):
        return bytes(value)
    if isinstance(value, str):
        return value.encode("utf-8")
    try:
        return _json_encode(value)
    except (TypeError, ValueError) as exc:  # pragma: no cover - defensive
        raise SerdeError(f"value of type {type(value)!r} is not serializable") from exc


def serialize_with_size(value: Any) -> tuple:
    """One encode pass returning ``(encoded_or_None, size)``.

    The producer hot path needs a record's size (batch accounting, broker
    quota) *and* — when the batch is sealed to wire form — its encoded
    bytes.  Computing the size via :func:`serialized_size` and then
    encoding again in the wire packer serialized JSON values twice; this
    helper encodes once and hands both answers back so the caller
    (:meth:`EventRecord.size_bytes`) can cache the bytes for the packer.

    For the cheap scalar cases where the size is derivable without an
    encode (``bytes``/``str``/``int``/``None``) the first element is
    ``None`` and no encode happens — those types re-encode in O(len)
    anyway, so caching would only burn memory.
    """
    if value is None:
        return None, 0
    if isinstance(value, (bytes, bytearray)):
        return None, len(value)
    if isinstance(value, str):
        return None, len(value.encode("utf-8"))
    if isinstance(value, bool):
        return None, 5
    if isinstance(value, int):
        return None, len(str(value))
    if isinstance(value, float):
        return None, 18
    encoded = serialize(value)
    return encoded, len(encoded)


def deserialize(payload: bytes) -> Any:
    """Best-effort inverse of :func:`serialize`.

    Attempts JSON first and falls back to UTF-8 text, then raw bytes.
    """
    if not payload:
        return None
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        try:
            return payload.decode("utf-8")
        except UnicodeDecodeError:
            return payload


def serialized_size(value: Any) -> int:
    """Size in bytes of ``value`` once serialized.

    Cheap paths for the common cases (bytes/str/int/float) avoid a full
    JSON round trip in the hot produce path.  Callers that may later need
    the encoded bytes as well (the wire packer) should prefer
    :func:`serialize_with_size`, which shares one encode pass between the
    size computation and the encode instead of serializing twice.
    """
    return serialize_with_size(value)[1]
