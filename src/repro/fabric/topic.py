"""Topics: named groups of partitions with configuration.

The Octopus Web Service provisions topics on behalf of users and lets them
set the replication factor, retention policy and partition count
(Section IV-B).  A :class:`Topic` here is the broker-side object holding
those settings and the per-partition logs; access control lives in
:mod:`repro.auth.acl` and is enforced by the cluster front end.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.common.clock import Clock
from repro.common.sync import create_rlock
from repro.fabric.errors import InvalidConfigError, UnknownPartitionError
from repro.fabric.partition import PartitionLog

#: Default retention period (seconds) — the paper states messages are kept
#: for seven days by default (Section IV-F).
DEFAULT_RETENTION_SECONDS = 7 * 24 * 3600.0


@dataclass(frozen=True)
class TopicConfig:
    """User-settable topic configuration.

    Attributes
    ----------
    num_partitions:
        Number of partitions; unit of consumer parallelism.
    replication_factor:
        Number of brokers holding a copy of each partition.
    retention_seconds:
        Time-based retention; records older than this are eligible for
        deletion.  ``None`` disables time retention.
    retention_bytes:
        Size-based retention per partition. ``None`` disables it.
    cleanup_policy:
        ``"delete"`` (default) or ``"compact"``.
    min_insync_replicas:
        Minimum ISR size for ``acks="all"`` produces to succeed.
    max_message_bytes:
        Per-record size cap.
    persist_to_store:
        Whether events are mirrored to the cloud object store (the red
        "persistence" arrow in Figure 2).
    segment_records / segment_bytes:
        Storage-segment roll thresholds for this topic's partition logs
        (``None`` selects the :mod:`repro.fabric.partition` defaults).
        Smaller segments make retention finer-grained; larger ones lower
        the per-segment overhead.  Applied when a partition log is
        created — existing logs keep the thresholds they were built with.
    """

    num_partitions: int = 1
    replication_factor: int = 2
    retention_seconds: Optional[float] = DEFAULT_RETENTION_SECONDS
    retention_bytes: Optional[int] = None
    cleanup_policy: str = "delete"
    min_insync_replicas: int = 1
    max_message_bytes: int = 8 * 1024 * 1024
    persist_to_store: bool = False
    segment_records: Optional[int] = None
    segment_bytes: Optional[int] = None

    def validate(self) -> None:
        if self.num_partitions < 1:
            raise InvalidConfigError("num_partitions must be >= 1")
        if self.replication_factor < 1:
            raise InvalidConfigError("replication_factor must be >= 1")
        if self.cleanup_policy not in ("delete", "compact"):
            raise InvalidConfigError(
                f"cleanup_policy must be 'delete' or 'compact', got {self.cleanup_policy!r}"
            )
        if self.min_insync_replicas < 1:
            raise InvalidConfigError("min_insync_replicas must be >= 1")
        if self.min_insync_replicas > self.replication_factor:
            raise InvalidConfigError(
                "min_insync_replicas cannot exceed replication_factor"
            )
        if self.retention_seconds is not None and self.retention_seconds < 0:
            raise InvalidConfigError("retention_seconds must be >= 0")
        if self.retention_bytes is not None and self.retention_bytes < 0:
            raise InvalidConfigError("retention_bytes must be >= 0")
        if self.max_message_bytes <= 0:
            raise InvalidConfigError("max_message_bytes must be > 0")
        if self.segment_records is not None and self.segment_records < 1:
            raise InvalidConfigError("segment_records must be >= 1")
        if self.segment_bytes is not None and self.segment_bytes < 1:
            raise InvalidConfigError("segment_bytes must be >= 1")

    def with_updates(self, **updates) -> "TopicConfig":
        """Return a new config with ``updates`` applied and validated."""
        cfg = replace(self, **updates)
        cfg.validate()
        return cfg

    def to_dict(self) -> dict:
        return {
            "num_partitions": self.num_partitions,
            "replication_factor": self.replication_factor,
            "retention_seconds": self.retention_seconds,
            "retention_bytes": self.retention_bytes,
            "cleanup_policy": self.cleanup_policy,
            "min_insync_replicas": self.min_insync_replicas,
            "max_message_bytes": self.max_message_bytes,
            "persist_to_store": self.persist_to_store,
            "segment_records": self.segment_records,
            "segment_bytes": self.segment_bytes,
        }

    def log_kwargs(self) -> dict:
        """Constructor kwargs for a :class:`PartitionLog` under this config."""
        return {
            "max_message_bytes": self.max_message_bytes,
            "segment_records": self.segment_records,
            "segment_bytes": self.segment_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TopicConfig":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        cfg = cls(**{k: v for k, v in data.items() if k in known})
        cfg.validate()
        return cfg


@dataclass
class Topic:
    """A named topic and its partition logs."""

    name: str
    config: TopicConfig = field(default_factory=TopicConfig)
    #: Clock handed to every partition log (``None`` = wall clock).
    clock: Optional[Clock] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.config.validate()
        self._lock = create_rlock(f"Topic[{self.name}]")
        self._partitions: Dict[int, PartitionLog] = {  #: guarded_by _lock
            index: PartitionLog(
                self.name, index, clock=self.clock, **self.config.log_kwargs()
            )
            for index in range(self.config.num_partitions)
        }

    # ------------------------------------------------------------------ #
    @property
    def num_partitions(self) -> int:
        with self._lock:
            return len(self._partitions)

    def partition(self, index: int) -> PartitionLog:
        with self._lock:
            try:
                return self._partitions[index]
            except KeyError:
                raise UnknownPartitionError(
                    f"topic {self.name!r} has no partition {index}"
                ) from None

    def partitions(self) -> Dict[int, PartitionLog]:
        with self._lock:
            return dict(self._partitions)

    def add_partitions(self, new_total: int) -> None:
        """Grow the topic to ``new_total`` partitions (shrinking is illegal)."""
        with self._lock:
            current = len(self._partitions)
            if new_total < current:
                raise InvalidConfigError(
                    f"cannot reduce partitions from {current} to {new_total}"
                )
            for index in range(current, new_total):
                self._partitions[index] = PartitionLog(
                    self.name, index, clock=self.clock, **self.config.log_kwargs()
                )
            self.config = self.config.with_updates(num_partitions=new_total)

    def update_config(self, **updates) -> TopicConfig:
        """Apply configuration updates (partition growth handled separately)."""
        with self._lock:
            new_partitions = updates.pop("num_partitions", None)
            self.config = self.config.with_updates(**updates)
            if new_partitions is not None and new_partitions != len(self._partitions):
                self.add_partitions(new_partitions)
            return self.config

    # ------------------------------------------------------------------ #
    def total_records(self) -> int:
        """Records currently retained across partitions."""
        return sum(len(p) for p in self.partitions().values())

    def total_appended(self) -> int:
        return sum(p.total_appended for p in self.partitions().values())

    def end_offsets(self) -> Dict[int, int]:
        return {i: p.log_end_offset for i, p in self.partitions().items()}

    def describe(self) -> dict:
        """Topic description as returned by ``GET /topic/<topic>``."""
        return {
            "name": self.name,
            "config": self.config.to_dict(),
            "end_offsets": self.end_offsets(),
            "total_records": self.total_records(),
        }
