"""Kafka-like event fabric.

This package is the substrate the paper builds Octopus on top of (Apache
Kafka hosted on AWS MSK).  It provides an in-process, thread-safe
implementation of the parts of Kafka the paper's evaluation and
applications exercise:

* append-only partition logs with strictly increasing offsets, stored as
  Kafka-style segments (an active segment plus sealed, immutable ones) so
  retention drops whole segments and reads skip the append lock; segment
  storage holds :class:`~repro.fabric.record.PackedRecordBatch` chunks —
  a record is encoded once at produce and forwarded by reference through
  storage, fetch, replication and mirroring,
* topics composed of one or more partitions with a replication factor,
* a cluster of brokers with leader election and in-sync replica (ISR)
  tracking, plus an explicit admin (control-plane) client —
  :class:`~repro.fabric.admin.FabricAdmin` — that owns topic/broker
  administration, retention runs and authorizer wiring,
* producers with configurable acknowledgements (``acks`` of ``0``, ``1``
  or ``"all"``), retries and batching,
* consumers and consumer groups with partition assignment, rebalancing
  and committed offsets (at-least-once delivery),
* retention and compaction policies, and
* a MirrorMaker-like cross-cluster replicator.

Public API boundary
-------------------
``repro.fabric.__all__`` below *is* the supported surface: the classes,
codec-registry functions and the complete error taxonomy the HTTP gateway
(:mod:`repro.gateway`) exposes over the wire.  Anything not listed — and
any module whose name starts with an underscore, such as
:mod:`repro.fabric._compat` (the retired flat-log kept as a differential
baseline) — is internal and may change or disappear without a
deprecation cycle.  New deprecations are enforced mechanically: the
``DEPRECATED-API`` rule of :mod:`repro.analysis` fails CI on any fresh
import of a retired module.
"""

from repro.fabric.record import (
    EventRecord,
    PackedRecordBatch,
    PackedView,
    RecordBatch,
    RecordMetadata,
    get_codec,
    register_codec,
    registered_codecs,
)
from repro.fabric.partition import LogSegment, PartitionLog
from repro.fabric.topic import Topic, TopicConfig
from repro.fabric.broker import Broker
from repro.fabric.admin import FabricAdmin
from repro.fabric.cluster import FabricCluster, FetchRequest, FetchSession
from repro.fabric.producer import FabricProducer, ProducerConfig
from repro.fabric.consumer import FabricConsumer, ConsumerConfig
from repro.fabric.group import ConsumerGroupCoordinator
from repro.fabric.offsets import OffsetStore
from repro.fabric.errors import (
    FabricError,
    UnknownTopicError,
    UnknownPartitionError,
    UnknownBrokerError,
    UnknownGroupError,
    TopicAlreadyExistsError,
    FencedLeaderError,
    NotEnoughReplicasError,
    NotLeaderError,
    AuthorizationError,
    OffsetOutOfRangeError,
    BrokerUnavailableError,
    RecordTooLargeError,
    CorruptBatchError,
    UnknownCodecError,
    InvalidConfigError,
    InvalidRequestError,
    RebalanceInProgressError,
    IllegalGenerationError,
    CommitFailedError,
)

__all__ = [
    # Records and batches
    "EventRecord",
    "PackedRecordBatch",
    "PackedView",
    "RecordBatch",
    "RecordMetadata",
    # Codec registry
    "get_codec",
    "register_codec",
    "registered_codecs",
    # Storage
    "LogSegment",
    "PartitionLog",
    "Topic",
    "TopicConfig",
    # Cluster, control plane and data plane
    "Broker",
    "FabricAdmin",
    "FabricCluster",
    "FetchRequest",
    "FetchSession",
    "FabricProducer",
    "ProducerConfig",
    "FabricConsumer",
    "ConsumerConfig",
    "ConsumerGroupCoordinator",
    "OffsetStore",
    # Error taxonomy (complete: every FabricError subclass is public, so
    # the gateway's error mapper is total over this list)
    "FabricError",
    "UnknownTopicError",
    "UnknownPartitionError",
    "UnknownBrokerError",
    "UnknownGroupError",
    "TopicAlreadyExistsError",
    "FencedLeaderError",
    "NotEnoughReplicasError",
    "NotLeaderError",
    "AuthorizationError",
    "OffsetOutOfRangeError",
    "BrokerUnavailableError",
    "RecordTooLargeError",
    "CorruptBatchError",
    "UnknownCodecError",
    "InvalidConfigError",
    "InvalidRequestError",
    "RebalanceInProgressError",
    "IllegalGenerationError",
    "CommitFailedError",
]
