"""Kafka-like event fabric.

This package is the substrate the paper builds Octopus on top of (Apache
Kafka hosted on AWS MSK).  It provides an in-process, thread-safe
implementation of the parts of Kafka the paper's evaluation and
applications exercise:

* append-only partition logs with strictly increasing offsets, stored as
  Kafka-style segments (an active segment plus sealed, immutable ones) so
  retention drops whole segments and reads skip the append lock; segment
  storage holds :class:`~repro.fabric.record.PackedRecordBatch` chunks —
  a record is encoded once at produce and forwarded by reference through
  storage, fetch, replication and mirroring,
* topics composed of one or more partitions with a replication factor,
* a cluster of brokers with leader election and in-sync replica (ISR)
  tracking, plus an explicit admin (control-plane) client —
  :class:`~repro.fabric.admin.FabricAdmin` — that owns topic/broker
  administration, retention runs and authorizer wiring,
* producers with configurable acknowledgements (``acks`` of ``0``, ``1``
  or ``"all"``), retries and batching,
* consumers and consumer groups with partition assignment, rebalancing
  and committed offsets (at-least-once delivery),
* retention and compaction policies, and
* a MirrorMaker-like cross-cluster replicator.
"""

from repro.fabric.record import (
    EventRecord,
    PackedRecordBatch,
    PackedView,
    RecordBatch,
    RecordMetadata,
)
from repro.fabric.partition import LogSegment, PartitionLog
from repro.fabric.topic import Topic, TopicConfig
from repro.fabric.broker import Broker
from repro.fabric.admin import FabricAdmin
from repro.fabric.cluster import FabricCluster, FetchRequest, FetchSession
from repro.fabric.producer import FabricProducer, ProducerConfig
from repro.fabric.consumer import FabricConsumer, ConsumerConfig
from repro.fabric.group import ConsumerGroupCoordinator
from repro.fabric.offsets import OffsetStore
from repro.fabric.errors import (
    FabricError,
    UnknownTopicError,
    UnknownPartitionError,
    NotEnoughReplicasError,
    NotLeaderError,
    AuthorizationError,
    OffsetOutOfRangeError,
    BrokerUnavailableError,
    RecordTooLargeError,
)

__all__ = [
    "EventRecord",
    "PackedRecordBatch",
    "PackedView",
    "RecordBatch",
    "RecordMetadata",
    "LogSegment",
    "PartitionLog",
    "Topic",
    "TopicConfig",
    "Broker",
    "FabricAdmin",
    "FabricCluster",
    "FetchRequest",
    "FetchSession",
    "FabricProducer",
    "ProducerConfig",
    "FabricConsumer",
    "ConsumerConfig",
    "ConsumerGroupCoordinator",
    "OffsetStore",
    "FabricError",
    "UnknownTopicError",
    "UnknownPartitionError",
    "NotEnoughReplicasError",
    "NotLeaderError",
    "AuthorizationError",
    "OffsetOutOfRangeError",
    "BrokerUnavailableError",
    "RecordTooLargeError",
]
