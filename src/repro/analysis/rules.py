"""The lint rules: repo-specific concurrency and clock conventions.

Each rule is a small object with a ``code`` (what appears in reports and
in ``# lint: ignore[CODE]`` suppressions) and a ``check(ctx)`` method
yielding :class:`Violation` objects for one parsed file.  Rules operate
on a shared :class:`FileContext` carrying the AST, the per-line comment
map (for the ``guarded_by`` annotations) and the import-alias table.

The rules:

``RAW-CLOCK``
    No ``time.time()`` / ``time.sleep()`` / ``datetime.now()`` (calls
    *or* bare references, which catches ``sleep_fn=time.sleep``
    defaults) outside ``common/clock.py``.  Components that care about
    time accept the injectable :class:`~repro.common.clock.Clock` so
    frozen-clock tests and the simulation harness see deterministic
    time.

``GUARDED-BY``
    An attribute assigned in ``__init__``/``__post_init__`` on a line
    annotated ``#: guarded_by <lock>`` may only be touched lexically
    inside ``with self.<lock>:`` in other methods.  Methods whose name
    ends in ``_locked`` are exempt by convention — they document that
    the caller already holds the lock.

``BLOCKING-UNDER-LOCK``
    No lexically-in-lock-body calls to sleeps, waits, codec
    compress/decompress or JSON encode/decode — the classic throughput
    killers on hot paths.  A ``with`` whose context expression's name
    ends in ``lock`` is treated as a lock body.

``BARE-ACQUIRE``
    No manual ``.acquire()`` / ``.release()``: ``with`` blocks cannot
    leak a lock on an exception path, and they are what the
    :mod:`repro.common.sync` sanitizer instruments.

``DEPRECATED-API``
    No imports of modules in :data:`DEPRECATED_MODULES` and no calls to
    methods in :data:`DEPRECATED_CALLS` from production code.

``SWALLOWED-ERROR``
    No ``except`` handler whose body only passes/continues in the fault
    paths (:data:`SWALLOWED_ERROR_PATHS`: the fabric and the gateway).
    A silently-dropped error in replication or request handling is how
    data loss hides; handle it, re-raise it, or annotate the swallow
    with ``# lint: ignore[SWALLOWED-ERROR]`` plus a rationale.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set

#: Dotted names whose use outside ``common/clock.py`` violates RAW-CLOCK.
RAW_CLOCK_BANNED = {
    "time.time",
    "time.sleep",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Files allowed to touch the raw clock: the Clock implementation itself.
RAW_CLOCK_EXEMPT_SUFFIXES = ("common/clock.py",)

#: Deprecated module imports -> rationale.
DEPRECATED_MODULES = {
    "repro.fabric.flatlog": (
        "retired from the public surface; the flat log now lives under "
        "repro.fabric._compat.flatlog for differential tests only"
    ),
    "repro.fabric._compat.flatlog": (
        "superseded by the segmented PartitionLog; kept only for "
        "differential tests and benchmark baselines"
    ),
}

#: Deprecated method/attribute calls -> rationale.
DEPRECATED_CALLS = {
    "replace_records": "use PartitionLog.compact(); replace_records races appends",
}

#: Method-name suffix marking "caller holds the lock" helpers (GUARDED-BY).
LOCK_HELD_SUFFIX = "_locked"

#: Attribute names whose calls block (BLOCKING-UNDER-LOCK), any receiver.
BLOCKING_ATTRS = {"sleep", "wait", "compress", "decompress"}

#: Fully-qualified blocking calls (BLOCKING-UNDER-LOCK).
BLOCKING_QUALIFIED = {"time.sleep", "json.dumps", "json.loads"}

#: Builtin calls that block (BLOCKING-UNDER-LOCK).
BLOCKING_BUILTINS = {"open"}

_GUARDED_BY_RE = re.compile(r"#:?\s*guarded_by\s+([A-Za-z_]\w*)")


@dataclass(frozen=True)
class Violation:
    """One finding: rule code, repo-relative path, line, stable message.

    ``message`` deliberately carries no line number — the baseline keys
    on ``(path, rule, message)`` with a count, so findings survive
    unrelated line drift and the committed debt can only be paid down,
    never silently renumbered.
    """

    rule: str
    path: str
    line: int
    message: str

    @property
    def baseline_key(self) -> str:
        return f"{self.path}::{self.rule}::{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class FileContext:
    """Everything the rules need to know about one source file."""

    def __init__(self, path: str, source: str, tree: ast.AST,
                 comments: Dict[int, str]) -> None:
        self.path = path  # repo-relative, posix separators
        self.source = source
        self.tree = tree
        self.comments = comments
        self.import_aliases = _collect_import_aliases(tree)

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name of an expression, with import aliases expanded."""
        dotted = _dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        origin = self.import_aliases.get(head)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin


def _dotted_name(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _collect_import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the dotted origin they were imported as."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                origin = alias.name if alias.asname else alias.name.partition(".")[0]
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _with_lock_names(node: ast.With) -> List[str]:
    """Lock-ish names taken by a ``with`` statement's context managers."""
    names = []
    for item in node.items:
        dotted = _dotted_name(item.context_expr)
        if dotted is None and isinstance(item.context_expr, ast.Call):
            dotted = _dotted_name(item.context_expr.func)
        if dotted and dotted.lower().endswith("lock"):
            names.append(dotted.rsplit(".", 1)[-1])
    return names


class RawClockRule:
    code = "RAW-CLOCK"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.path.endswith(RAW_CLOCK_EXEMPT_SUFFIXES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            resolved = ctx.resolve(node)
            if resolved in RAW_CLOCK_BANNED:
                # Flag the outermost matching expression once: a Name
                # inside a flagged Attribute resolves to its module
                # prefix, never to a banned entry, so no double counting.
                yield Violation(
                    self.code, ctx.path, node.lineno,
                    f"{resolved} bypasses the injectable Clock "
                    f"(thread repro.common.clock.Clock through instead)",
                )


class GuardedByRule:
    code = "GUARDED-BY"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> Iterator[Violation]:
        init_names = ("__init__", "__post_init__")
        guarded: Dict[str, str] = {}
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
                stmt.name in init_names
            ):
                for sub in ast.walk(stmt):
                    if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                        targets = (
                            sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                        )
                        marker = _GUARDED_BY_RE.search(ctx.comments.get(sub.lineno, ""))
                        if marker is None:
                            continue
                        for target in targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                guarded[target.attr] = marker.group(1)
        if not guarded:
            return
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name in init_names or stmt.name.endswith(LOCK_HELD_SUFFIX):
                continue
            yield from self._scan_method(ctx, stmt, guarded)

    def _scan_method(
        self, ctx: FileContext, method: ast.AST, guarded: Dict[str, str]
    ) -> Iterator[Violation]:
        violations: List[Violation] = []

        def visit(node: ast.AST, held: Set[str]) -> None:
            if isinstance(node, ast.With):
                inner = held | set(_with_lock_names(node))
                for item in node.items:
                    visit(item.context_expr, held)
                for child in node.body:
                    visit(child, inner)
                return
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in guarded
                and guarded[node.attr] not in held
            ):
                violations.append(
                    Violation(
                        self.code, ctx.path, node.lineno,
                        f"self.{node.attr} accessed outside "
                        f"'with self.{guarded[node.attr]}' "
                        f"(declared guarded_by {guarded[node.attr]})",
                    )
                )
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for child in ast.iter_child_nodes(method):
            visit(child, set())
        yield from violations


class BlockingUnderLockRule:
    code = "BLOCKING-UNDER-LOCK"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        violations: List[Violation] = []

        def scan_body(node: ast.AST, lock_name: str) -> None:
            # Nested function bodies run at call time, not under this
            # lock; their own call sites are checked where they appear.
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return
            if isinstance(node, ast.Call):
                label = self._blocking_label(ctx, node)
                if label is not None:
                    violations.append(
                        Violation(
                            self.code, ctx.path, node.lineno,
                            f"blocking call {label} inside 'with {lock_name}' body "
                            f"(move it outside the lock)",
                        )
                    )
            for child in ast.iter_child_nodes(node):
                scan_body(child, lock_name)

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.With):
                locks = _with_lock_names(node)
                if locks:
                    for child in node.body:
                        scan_body(child, locks[0])
        yield from violations

    @staticmethod
    def _blocking_label(ctx: FileContext, call: ast.Call) -> Optional[str]:
        func = call.func
        resolved = ctx.resolve(func)
        if resolved in BLOCKING_QUALIFIED:
            return f"{resolved}()"
        if isinstance(func, ast.Attribute) and func.attr in BLOCKING_ATTRS:
            return f".{func.attr}()"
        if isinstance(func, ast.Name) and func.id in BLOCKING_BUILTINS:
            return f"{func.id}()"
        return None


class BareAcquireRule:
    code = "BARE-ACQUIRE"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("acquire", "release")
                and self._lockish(node)
            ):
                yield Violation(
                    self.code, ctx.path, node.lineno,
                    f"manual .{node.func.attr}() — use 'with' so the lock "
                    f"cannot leak on an exception path",
                )

    @staticmethod
    def _lockish(call: ast.Call) -> bool:
        """Lock-style acquire/release, not e.g. a resource-pool acquire.

        A lock's acquire/release take no positional payload; anything
        whose receiver name says lock/mutex/semaphore is flagged
        regardless (even ``lock.acquire(timeout=...)``).
        """
        receiver = _dotted_name(call.func.value)
        if receiver is not None:
            tail = receiver.rsplit(".", 1)[-1].lower()
            if any(hint in tail for hint in ("lock", "mutex", "sem", "cond")):
                return True
        return not call.args


class DeprecatedApiRule:
    code = "DEPRECATED-API"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    reason = DEPRECATED_MODULES.get(alias.name)
                    if reason:
                        yield Violation(
                            self.code, ctx.path, node.lineno,
                            f"import of deprecated module {alias.name} ({reason})",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                reason = DEPRECATED_MODULES.get(node.module)
                if reason:
                    yield Violation(
                        self.code, ctx.path, node.lineno,
                        f"import from deprecated module {node.module} ({reason})",
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in DEPRECATED_CALLS
            ):
                yield Violation(
                    self.code, ctx.path, node.lineno,
                    f"call to deprecated API .{node.func.attr}() "
                    f"({DEPRECATED_CALLS[node.func.attr]})",
                )


#: Path prefixes (repo-relative, posix) where SWALLOWED-ERROR applies:
#: the subsystems whose dropped errors can hide data loss.
SWALLOWED_ERROR_PATHS = ("src/repro/fabric/", "src/repro/gateway/")


class SwallowedErrorRule:
    code = "SWALLOWED-ERROR"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.path.startswith(SWALLOWED_ERROR_PATHS):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and self._swallows(node):
                caught = (
                    ast.unparse(node.type) if node.type is not None else "Exception"
                )
                yield Violation(
                    self.code, ctx.path, node.lineno,
                    f"except {caught} swallows the error (body is only "
                    f"pass/continue) — handle, re-raise, or annotate why",
                )

    @staticmethod
    def _swallows(handler: ast.ExceptHandler) -> bool:
        """True when every statement in the handler body is a no-op."""
        for stmt in handler.body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring / Ellipsis
            return False
        return True


#: The rule set the driver runs, in report order.
ALL_RULES = (
    RawClockRule(),
    GuardedByRule(),
    BlockingUnderLockRule(),
    BareAcquireRule(),
    DeprecatedApiRule(),
    SwallowedErrorRule(),
)

RULE_CODES = tuple(rule.code for rule in ALL_RULES)
