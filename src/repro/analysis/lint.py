"""Driver and CLI for the fabric-san lint (``python -m repro.analysis.lint``).

Runs the repo-specific AST rules in :mod:`repro.analysis.rules` over a
set of files or directories, applies per-line suppressions and the
committed baseline, and reports.

**Suppression** — append ``# lint: ignore[RULE]`` (several rules:
``# lint: ignore[RULE-A,RULE-B]``) to the violating line.  Suppressions
are for deliberate, documented exceptions: pair them with a short
rationale comment.

**Baseline ratchet** — pre-existing debt lives in
``analysis-baseline.json``: a map of ``path::RULE::message`` keys to
occurrence counts.  A run fails on any violation *not* covered by the
baseline, and *also* fails when the baseline over-covers (an entry's
count exceeds what the code still contains): fixed debt must be struck
from the baseline in the same change (``--update-baseline``), so the
file only ever shrinks.  Growing it requires the explicit
``--allow-growth`` flag — reviewers see new debt as a baseline diff.

Exit codes: 0 clean, 1 findings (or stale baseline), 2 usage error.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import re
import sys
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.rules import ALL_RULES, FileContext, Violation

DEFAULT_BASELINE = "analysis-baseline.json"

_IGNORE_RE = re.compile(r"lint:\s*ignore\[([A-Za-z0-9_,\- ]+)\]")


def _comment_map(source: str) -> Dict[int, str]:
    """Per-line comment text (used for suppressions and guarded_by markers)."""
    comments: Dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except tokenize.TokenError:  # pragma: no cover - unparsable tail
        pass
    return comments


def _suppressed_rules(comment: str) -> Tuple[str, ...]:
    match = _IGNORE_RE.search(comment)
    if match is None:
        return ()
    return tuple(code.strip() for code in match.group(1).split(",") if code.strip())


def lint_source(source: str, path: str) -> List[Violation]:
    """Lint one file's source; ``path`` is the repo-relative posix path.

    Returns the violations that survive per-line suppression, sorted by
    line.  Public so the test suite can lint fixture snippets without
    touching the filesystem.
    """
    tree = ast.parse(source, filename=path)
    comments = _comment_map(source)
    ctx = FileContext(path, source, tree, comments)
    out: List[Violation] = []
    for rule in ALL_RULES:
        for violation in rule.check(ctx):
            if violation.rule in _suppressed_rules(comments.get(violation.line, "")):
                continue
            out.append(violation)
    out.sort(key=lambda v: (v.line, v.rule))
    return out


def _iter_python_files(paths: Sequence[str]) -> Iterable[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {raw}")


def lint_paths(paths: Sequence[str], root: Optional[Path] = None) -> List[Violation]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    root = root or Path.cwd()
    out: List[Violation] = []
    for file_path in _iter_python_files(paths):
        try:
            rel = file_path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = file_path.as_posix()
        out.extend(lint_source(file_path.read_text(encoding="utf-8"), rel))
    return out


# --------------------------------------------------------------------- #
# Baseline
# --------------------------------------------------------------------- #
def violation_counts(violations: Iterable[Violation]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for violation in violations:
        counts[violation.baseline_key] = counts.get(violation.baseline_key, 0) + 1
    return counts


def load_baseline(path: Path) -> Dict[str, int]:
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or not all(
        isinstance(v, int) and v > 0 for v in data.values()
    ):
        raise ValueError(f"malformed baseline file {path}")
    return data


def write_baseline(path: Path, counts: Dict[str, int]) -> None:
    path.write_text(
        json.dumps(dict(sorted(counts.items())), indent=2) + "\n", encoding="utf-8"
    )


def apply_baseline(
    violations: Sequence[Violation], baseline: Dict[str, int]
) -> Tuple[List[Violation], Dict[str, int]]:
    """Split findings into (new violations, stale baseline entries).

    Stale entries — keys whose baselined count exceeds what the code
    still contains — are errors too: the ratchet only works if fixed
    debt is struck from the baseline in the same change.
    """
    remaining = dict(baseline)
    fresh: List[Violation] = []
    for violation in violations:
        key = violation.baseline_key
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            fresh.append(violation)
    stale = {key: count for key, count in remaining.items() if count > 0}
    return fresh, stale


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="fabric-san: concurrency/clock lint for this repo",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="report every violation"
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings (shrink-only)",
    )
    parser.add_argument(
        "--allow-growth",
        action="store_true",
        help="allow --update-baseline to add debt (reviewed exception)",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0

    try:
        violations = lint_paths(args.paths)
    except (FileNotFoundError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    baseline: Dict[str, int] = {}
    have_baseline = not args.no_baseline and baseline_path.exists()
    if have_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.update_baseline:
        counts = violation_counts(violations)
        # An existing baseline ratchets even when it is empty — a tree
        # whose debt reached zero must not silently grow new debt.
        if have_baseline and not args.allow_growth:
            grown = {
                key: count
                for key, count in counts.items()
                if count > baseline.get(key, 0)
            }
            if grown:
                print(
                    "refusing to grow the baseline (ratchet); new debt:",
                    file=sys.stderr,
                )
                for key in sorted(grown):
                    print(f"  {key} (x{grown[key]})", file=sys.stderr)
                print(
                    "fix the findings or pass --allow-growth.", file=sys.stderr
                )
                return 1
        write_baseline(baseline_path, counts)
        print(f"baseline written: {baseline_path} ({sum(counts.values())} findings)")
        return 0

    fresh, stale = apply_baseline(violations, baseline)
    for violation in fresh:
        print(violation.render())
    for key in sorted(stale):
        print(
            f"stale baseline entry (fixed debt — shrink the baseline with "
            f"--update-baseline): {key} (x{stale[key]})"
        )
    baselined = len(violations) - len(fresh)
    if fresh or stale:
        print(
            f"\nfabric-san: {len(fresh)} violation(s), {len(stale)} stale "
            f"baseline entr(ies), {baselined} baselined."
        )
        return 1
    print(f"fabric-san: clean ({baselined} baselined finding(s) remaining).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
