"""fabric-san: repo-specific static analysis for the event fabric.

The fabric's correctness rests on conventions no general-purpose linter
knows about: all time flows through the injectable
:class:`repro.common.clock.Clock`, attributes annotated
``guarded_by <lock>`` are only touched under that lock, nothing blocks
while a lock is held, and locks are taken with ``with`` so they cannot
leak on an exception path.  :mod:`repro.analysis.lint` checks those
conventions mechanically (``python -m repro.analysis.lint src/``) and is
gated in CI next to ruff; the runtime complement — instrumented locks
that detect real ordering inversions — lives in
:mod:`repro.common.sync`.
"""
