"""Ablation benches for the design choices called out in DESIGN.md.

* Hierarchical aggregation vs. publishing raw edge events to the cloud.
* Trigger batch size for the Figure 4 workload.
* Acks / replication durability settings (the Table III sweep condensed).
"""

import pytest

from repro.monitoring.aggregator import LocalAggregator
from repro.monitoring.fsmon import FileSystemMonitor
from repro.faas.scaling import TriggerScalingSimulator
from repro.simulation.cluster_model import CLUSTER_CONFIGS, ClusterCapacityModel


def run_aggregation_ablation(num_files: int = 500):
    """Events reaching the cloud with and without the local aggregator."""
    monitor = FileSystemMonitor("lustre")
    aggregator = LocalAggregator()
    monitor.set_sink(lambda event: aggregator.offer(event.to_dict()))
    for index in range(num_files):
        path = f"/runs/file_{index:05d}.h5"
        monitor.create_file(path, 1 << 20)
        monitor.modify_file(path, 2 << 20)
        monitor.modify_file(path, 3 << 20)
        monitor.close_file(path)
    return {
        "raw_events": len(monitor.events),
        "forwarded_events": aggregator.stats.events_out,
        "reduction_factor": aggregator.stats.reduction_factor,
    }


def test_ablation_hierarchical_aggregation(benchmark):
    result = benchmark(run_aggregation_ablation)
    print("\nAblation — hierarchical aggregation")
    print(f"  raw edge events:      {result['raw_events']}")
    print(f"  forwarded to cloud:   {result['forwarded_events']}")
    print(f"  reduction factor:     {result['reduction_factor']:.1f}x")
    # Four raw events per file, one forwarded: a 4x reduction in cloud traffic
    # (and therefore trigger invocations / egress cost).
    assert result["reduction_factor"] == pytest.approx(4.0, rel=0.05)


def run_trigger_batch_ablation():
    completion = {}
    for batch_size in (1, 10, 100):
        simulator = TriggerScalingSimulator(
            num_tasks=2000, task_duration_seconds=10.0, partitions=64,
            batch_size=batch_size,
        )
        samples = simulator.run()
        completion[batch_size] = simulator.completion_time(samples)
    return completion


def test_ablation_trigger_batch_size(benchmark):
    completion = benchmark(run_trigger_batch_ablation)
    print("\nAblation — trigger batch size (2000 x 10 s tasks, 64 partitions)")
    for batch_size, seconds in completion.items():
        print(f"  batch={batch_size:>4}: completes in {seconds:7.0f} s")
    assert completion[10] < completion[1]
    assert completion[100] <= completion[10]


def run_durability_ablation():
    model = ClusterCapacityModel(CLUSTER_CONFIGS["baseline"])
    return {
        (acks, rf): model.produce_capacity(
            event_size_bytes=1024, acks=acks, replication_factor=rf
        )
        for acks in (0, 1, "all")
        for rf in (2, 4)
    }


def test_ablation_durability_settings(benchmark):
    capacities = benchmark(run_durability_ablation)
    print("\nAblation — durability settings (1 KB events, baseline cluster)")
    for (acks, rf), capacity in capacities.items():
        print(f"  acks={acks!s:>4} rf={rf}: {capacity / 1e3:7.0f} K events/s")
    # Stronger durability always costs throughput.
    assert capacities[(0, 2)] > capacities[(1, 2)] > capacities[("all", 2)]
    assert capacities[(0, 2)] > capacities[(0, 4)]
    # The cheapest setting is ~3x the most durable one.
    assert capacities[(0, 2)] / capacities[("all", 4)] > 2.5
