"""Micro-benchmarks of end-to-end compressed batches (PR 7).

Two claims are measured against the codec="none" path on a compressible
workload (JSON-ish event payloads with long repeated field names, the
shape the paper's clickstream/metrics topics carry):

* **Stored bytes**: producers seal each batch once with a codec, the
  broker adopts the compressed chunk by reference, and retention charges
  the *physical* (stored) size — so the partition's ``size_bytes`` must
  shrink ≥ 3× under gzip.
* **Mirror forwarding**: cross-cluster sync forwards sealed chunks
  without inflating them, so a compressed mirror pass must beat the
  per-record rebuild baseline ≥ 3× (same bar as the uncompressed packed
  path — compression must not cost the mirror its zero-copy win), and
  the bytes the link carries (``physical_bytes_mirrored``) must show the
  same ≥ 3× reduction.

Results go to ``BENCH_compression.json`` at the repo root; CI uploads it
next to ``BENCH_storage.json`` and gates both through
``benchmarks/check_storage_floors.py``.
"""

import gc
import json
import time
from pathlib import Path

import pytest

from repro.fabric.cluster import FabricCluster
from repro.fabric.mirrormaker import MirrorMaker
from repro.fabric.producer import FabricProducer, ProducerConfig
from repro.fabric.record import EventRecord
from repro.fabric.topic import TopicConfig

NUM_RECORDS = 20_000
BATCH = 500

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_compression.json"
RESULTS: dict = {"records": NUM_RECORDS, "batch": BATCH}


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Write every benchmark's numbers to BENCH_compression.json on teardown."""
    yield
    BENCH_PATH.write_text(json.dumps(RESULTS, indent=2, sort_keys=True) + "\n")


def _event_value(i: int) -> dict:
    """A compressible clickstream-style payload: long repeated keys, a few
    varying fields.  Deliberately *not* random — the bench measures the
    codec path, and real event topics are this shape."""
    return {
        "event_type": "page_view",
        "session_identifier": f"session-{i % 97:06d}",
        "canonical_page_url": f"https://shop.example.com/catalog/item/{i % 450}",
        "experiment_assignments": ["checkout_v2", "ranking_baseline"],
        "client_platform": "web",
        "sequence_number": i,
    }


def _produce(cluster: FabricCluster, topic: str, compression) -> None:
    config = ProducerConfig(
        compression=compression, buffer_memory_bytes=8 * 1024 * 1024
    )
    producer = FabricProducer(cluster, config)
    for i in range(NUM_RECORDS):
        producer.buffer(topic, _event_value(i), key=f"k{i % 64}")
        if (i + 1) % (BATCH * 4) == 0:
            producer.flush()
    producer.flush()


def _build_cluster(name: str, compression) -> FabricCluster:
    cluster = FabricCluster(num_brokers=1, name=name)
    cluster.admin().create_topic(
        "bench", TopicConfig(num_partitions=2, replication_factor=1)
    )
    _produce(cluster, "bench", compression)
    return cluster


def _stored_bytes(cluster: FabricCluster) -> tuple[int, int]:
    """(physical, logical) retained bytes across the topic's partitions."""
    description = cluster.admin().describe_segments("bench")
    physical = sum(p["size_bytes"] for p in description["partitions"].values())
    logical = sum(
        p["logical_size_bytes"] for p in description["partitions"].values()
    )
    return physical, logical


def test_stored_bytes_reduction_gzip():
    """Gzip-sealed batches must shrink the partition's retained physical
    bytes ≥ 3× versus codec="none", with the logical size (what consumers
    receive) unchanged."""
    raw = _build_cluster("bench-raw", None)
    gz = _build_cluster("bench-gzip", "gzip")

    raw_physical, raw_logical = _stored_bytes(raw)
    gz_physical, gz_logical = _stored_bytes(gz)
    ratio = raw_physical / gz_physical
    RESULTS["stored_bytes_reduction_gzip"] = {
        "raw_physical_bytes": raw_physical,
        "gzip_physical_bytes": gz_physical,
        "logical_bytes": gz_logical,
        "ratio": round(ratio, 3),
        "floor": 3.0,
    }
    print(f"\nStored bytes: raw {raw_physical:,} B, gzip {gz_physical:,} B "
          f"({ratio:.1f}x smaller), logical {gz_logical:,} B")
    # Same records either way: the logical view is codec-independent.
    assert raw_logical == gz_logical
    # codec="none" stores the payload verbatim — physical == logical.
    assert raw_physical == raw_logical
    assert ratio >= 3.0


def test_consumer_reads_compressed_topic_intact():
    """No-regression guard riding the bench fixture shapes: every record
    produced under gzip comes back intact through a plain fetch, and the
    two codecs serve byte-identical logical views."""
    gz = _build_cluster("bench-verify", "gzip")
    seen = 0
    for _, partition in gz.partitions_for("bench"):
        offset = 0
        end = gz.end_offset("bench", partition)
        while offset < end:
            records = gz.fetch("bench", partition, offset, max_records=BATCH)
            for stored in records:
                value = stored.record.value
                assert value["event_type"] == "page_view"
                assert value["sequence_number"] >= 0
                seen += 1
            offset = records[-1].offset + 1
    assert seen == NUM_RECORDS


def test_mirror_forwarding_compressed():
    """Mirroring a gzip-compressed topic must (a) keep the ≥ 3× per-record
    rate advantage of packed forwarding and (b) carry ≥ 3× fewer physical
    bytes across the link than the logical payload it delivers."""

    def build_destination(name):
        destination = FabricCluster(num_brokers=1, name=name)
        destination.admin().create_topic(
            "bench", TopicConfig(num_partitions=2, replication_factor=1)
        )
        return destination

    def packed_run():
        source = _build_cluster("bench-mirror-src", "gzip")
        mirror = MirrorMaker(source, build_destination("bench-mirror-dst"))

        def run():
            stats = mirror.sync_topic(
                "bench", max_records_per_partition=NUM_RECORDS
            )
            assert stats.records_mirrored == NUM_RECORDS
            RESULTS.setdefault("mirror_bytes", {}).update(
                logical_bytes=stats.bytes_mirrored,
                physical_bytes=stats.physical_bytes_mirrored,
            )
        return run

    def per_record_run():
        source = _build_cluster("bench-rec-src", "gzip")
        destination = build_destination("bench-rec-dst")

        def run():
            mirrored_total = 0
            for _, partition in source.partitions_for("bench"):
                records = source.fetch(
                    "bench", partition, 0,
                    max_records=NUM_RECORDS, max_bytes=None,
                )
                base_offset = records[0].offset
                rebuilt = [
                    EventRecord(
                        value=stored.record.value,
                        key=stored.record.key,
                        headers={
                            **dict(stored.record.headers),
                            "mirror.source.cluster": source.name,
                            "mirror.source.offset": str(stored.offset),
                            "mirror.batch.base_offset": str(base_offset),
                        },
                        timestamp=stored.record.timestamp,
                    )
                    for stored in records
                ]
                destination.append_batch("bench", partition, rebuilt, acks=1)
                mirrored_total += len(rebuilt)
            assert mirrored_total == NUM_RECORDS
        return run

    def best_rate(make_run, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            run = make_run()
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                run()
                best = min(best, time.perf_counter() - start)
            finally:
                gc.enable()
        return NUM_RECORDS / best

    packed = best_rate(packed_run)
    per_record = best_rate(per_record_run)
    rate_ratio = packed / per_record
    byte_info = RESULTS["mirror_bytes"]
    byte_ratio = byte_info["logical_bytes"] / byte_info["physical_bytes"]
    RESULTS["mirror_compressed"] = {
        "packed_rec_s": round(packed),
        "per_record_rec_s": round(per_record),
        "ratio": round(rate_ratio, 3),
        "link_bytes_reduction": round(byte_ratio, 3),
        "floor": 3.0,
    }
    print(f"\nCompressed mirror: packed {packed:,.0f} rec/s, per-record "
          f"{per_record:,.0f} rec/s ({rate_ratio:.2f}x); link bytes "
          f"{byte_info['physical_bytes']:,} vs logical "
          f"{byte_info['logical_bytes']:,} ({byte_ratio:.1f}x smaller)")
    assert rate_ratio >= 3.0
    assert byte_ratio >= 3.0
