"""Figure 5 — multi-tenancy: throughput vs. number of topics.

Scale-out cluster (4 brokers), 1–32 single-partition topics, 1 KB events,
32 producers and 32 consumers.  Producer throughput rises until four
topics (~273 K events/s) and then flattens; consumer throughput keeps
rising until ~16 topics (~846 K events/s).
"""

import pytest

from repro.bench.report import format_figure5
from repro.simulation.evaluation import run_figure5_multitenancy


def test_figure5_multitenancy(benchmark):
    points = benchmark(run_figure5_multitenancy)
    print("\n" + format_figure5(points))
    by_topics = {p.num_topics: p for p in points}
    assert sorted(by_topics) == [1, 2, 4, 8, 16, 32]
    # Producer throughput saturates at 4 topics near the paper's 273 K.
    assert by_topics[4].producer_throughput == pytest.approx(273_000, rel=0.25)
    assert by_topics[4].producer_throughput > 2.5 * by_topics[1].producer_throughput
    for topics in (8, 16, 32):
        assert by_topics[topics].producer_throughput == pytest.approx(
            by_topics[4].producer_throughput, rel=0.02
        )
    # Consumer throughput keeps growing until 16 topics (~846 K) then flattens.
    assert by_topics[16].consumer_throughput == pytest.approx(846_000, rel=0.25)
    assert by_topics[16].consumer_throughput > by_topics[4].consumer_throughput
    assert by_topics[32].consumer_throughput == pytest.approx(
        by_topics[16].consumer_throughput, rel=0.02
    )
