"""Figure 3 — median and p99 latency vs. throughput, configurations 1–6.

Sweeps 20–100 remote producers for each baseline-cluster configuration and
prints the latency/throughput curves; checks the monotone shape and the
relative position of the curves (32 B highest throughput, acks=all highest
latency).
"""

from repro.bench.report import format_figure_series
from repro.simulation.evaluation import run_figure3_series


def test_figure3_latency_vs_throughput(benchmark):
    series = benchmark(run_figure3_series)
    print("\n" + format_figure_series(
        "Figure 3 — latency vs. throughput (remote producers, baseline cluster)", series
    ))
    assert sorted(series) == [1, 2, 3, 4, 5, 6]
    for experiment, points in series.items():
        throughputs = [p.throughput for p in points]
        medians = [p.median_latency_ms for p in points]
        p99s = [p.p99_latency_ms for p in points]
        # Throughput is non-decreasing in producer count; latency rises with load.
        assert all(a <= b + 1e-9 for a, b in zip(throughputs, throughputs[1:]))
        assert medians[-1] >= medians[0]
        assert all(p99 >= med for p99, med in zip(p99s, medians))
    peak = {exp: max(p.throughput for p in pts) for exp, pts in series.items()}
    # 32 B events reach millions of events/s; 4 KB tops out around tens of K.
    assert peak[1] > 3e6
    assert peak[5] < 1e5
    # acks=all (exp 4) is the slowest 1 KB configuration and the highest latency.
    assert peak[4] < peak[3] < peak[2]
    final_median = {exp: pts[-1].median_latency_ms for exp, pts in series.items()}
    assert final_median[4] == max(final_median.values())
