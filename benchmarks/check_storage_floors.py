"""Gate CI on the packed-path floors recorded in ``BENCH_storage.json``.

The microbench pytest step is allowed to flake on contended shared
runners (its step uses ``continue-on-error``), but the storage ratios it
writes to ``BENCH_storage.json`` are the PR acceptance numbers — a ratio
below its floor must fail the job, not just upload a bad artifact.  This
script re-reads the JSON and exits non-zero when any recorded ``ratio``
drops below its recorded ``floor``, or when the file is missing/empty
(the bench never ran to completion).

Usage::

    python benchmarks/check_storage_floors.py [path-to-BENCH_storage.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Entries that must carry a ``ratio``/``floor`` pair.  Listing them here
#: (rather than only trusting the JSON) means a bench that silently stops
#: reporting is itself a failure.
REQUIRED_RATIOS = ("append_batched", "fetch_paged", "mirror_batched")

#: Retention speedup floors (``speedup`` key), the PR 5 acceptance bar.
REQUIRED_SPEEDUPS = {
    "time_retention_drop_half": 5.0,
    "time_retention_noop": 5.0,
    "size_retention_drop_half": 5.0,
}


def check(path: Path) -> int:
    if not path.exists():
        print(f"FAIL: {path} not found — the storage microbench did not run")
        return 1
    results = json.loads(path.read_text())
    failures = []
    for name in REQUIRED_RATIOS:
        entry = results.get(name)
        if not isinstance(entry, dict) or "ratio" not in entry or "floor" not in entry:
            failures.append(f"{name}: missing ratio/floor in {path.name}")
            continue
        ratio, floor = entry["ratio"], entry["floor"]
        status = "ok" if ratio >= floor else "BELOW FLOOR"
        print(f"{name}: ratio {ratio:.3f} (floor {floor:.1f}) {status}")
        if ratio < floor:
            failures.append(f"{name}: ratio {ratio:.3f} < floor {floor:.1f}")
    for name, floor in REQUIRED_SPEEDUPS.items():
        entry = results.get(name)
        if not isinstance(entry, dict) or "speedup" not in entry:
            failures.append(f"{name}: missing speedup in {path.name}")
            continue
        speedup = entry["speedup"]
        status = "ok" if speedup >= floor else "BELOW FLOOR"
        print(f"{name}: speedup {speedup:.1f}x (floor {floor:.1f}x) {status}")
        if speedup < floor:
            failures.append(f"{name}: speedup {speedup:.1f} < floor {floor:.1f}")
    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nAll storage floors hold.")
    return 0


if __name__ == "__main__":
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        Path(__file__).resolve().parent.parent / "BENCH_storage.json"
    )
    sys.exit(check(target))
