"""Gate CI on the packed-path floors recorded in the bench JSON files.

The microbench pytest steps are allowed to flake on contended shared
runners (their steps use ``continue-on-error``), but the ratios they
write to ``BENCH_storage.json`` / ``BENCH_compression.json`` are the PR
acceptance numbers — a ratio below its floor must fail the job, not just
upload a bad artifact.  This script re-reads the JSON and exits non-zero
when any recorded ratio drops below the floor pinned *here* (the checker
owns the floors; a bench that writes itself a softer floor does not get
to relax the gate), when an expected key is missing, or when the file
itself is missing/empty (the bench never ran to completion).

Floors are ratcheted to what the tree actually measures, minus headroom
for runner noise:

* PR 6/7 measure append ~1.3x, fetch 1.17-1.29x (interleaved; the
  1.54x a sequential best-of once recorded was runner noise), mirror
  ~5.4x against the per-record baselines — floors 1.1 / 1.15 / 3.0
  (the 1.0 placeholders held only while the packed path was landing).
* PR 5 measured retention speedups 25-130x — floor 5.0x.
* PR 7 measured >=5x stored-byte reduction and >=5x mirror-forward
  advantage for gzip on the compressible workload — conservative initial
  floors 3.0 (ratcheted once a few CI runs land).

Usage::

    python benchmarks/check_storage_floors.py [BENCH_storage.json] [BENCH_compression.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: ``BENCH_storage.json`` entries that must carry a ``ratio`` at or above
#: the floor.  Listing them here (rather than only trusting the JSON)
#: means a bench that silently stops reporting is itself a failure.
REQUIRED_RATIOS = {
    "append_batched": 1.1,
    # Re-based 1.15 -> 1.05 when committed-isolation joined the fetch hot
    # loop (a high-watermark bound check on every call, now paid by both
    # implementations for parity): interleaved remeasurement puts the
    # honest ratio band at ~1.1-1.2 with ±0.15 runner noise, so 1.15 sat
    # inside the noise while 1.05 still fails on any real regression.
    "fetch_paged": 1.05,
    "mirror_batched": 3.0,
}

#: Retention speedup floors (``speedup`` key), the PR 5 acceptance bar.
REQUIRED_SPEEDUPS = {
    "time_retention_drop_half": 5.0,
    "time_retention_noop": 5.0,
    "size_retention_drop_half": 5.0,
}

#: ``BENCH_compression.json`` entries (PR 7): stored-byte reduction of
#: gzip vs raw on the compressible workload, and compressed-chunk mirror
#: forwarding vs the per-record path.
REQUIRED_COMPRESSION_RATIOS = {
    "stored_bytes_reduction_gzip": 3.0,
    "mirror_compressed": 3.0,
}


def _check_entries(results: dict, required: dict, key: str, source: str, failures: list) -> None:
    for name, floor in required.items():
        entry = results.get(name)
        if not isinstance(entry, dict) or key not in entry:
            failures.append(
                f"{name}: expected key missing from {source} — the bench "
                f"stopped reporting it (or never ran); re-run the microbench"
            )
            continue
        value = entry[key]
        status = "ok" if value >= floor else "BELOW FLOOR"
        print(f"{name}: {key} {value:.3f} (floor {floor:g}) {status}")
        if value < floor:
            failures.append(f"{name}: {key} {value:.3f} < floor {floor:g}")


def check(storage_path: Path, compression_path: Path) -> int:
    failures: list[str] = []
    for path, blurb in (
        (storage_path, "storage"),
        (compression_path, "compression"),
    ):
        if not path.exists():
            print(f"FAIL: {path} not found — the {blurb} microbench did not run")
            return 1
    storage = json.loads(storage_path.read_text())
    _check_entries(storage, REQUIRED_RATIOS, "ratio", storage_path.name, failures)
    _check_entries(storage, REQUIRED_SPEEDUPS, "speedup", storage_path.name, failures)
    compression = json.loads(compression_path.read_text())
    _check_entries(
        compression,
        REQUIRED_COMPRESSION_RATIOS,
        "ratio",
        compression_path.name,
        failures,
    )
    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nAll storage/compression floors hold.")
    return 0


if __name__ == "__main__":
    root = Path(__file__).resolve().parent.parent
    storage = Path(sys.argv[1]) if len(sys.argv) > 1 else root / "BENCH_storage.json"
    compression = (
        Path(sys.argv[2]) if len(sys.argv) > 2 else root / "BENCH_compression.json"
    )
    sys.exit(check(storage, compression))
