"""Table I — use-case event characteristics.

Regenerates the event-rate/size characterisation of the five use cases by
generating each use case's synthetic workload and measuring its rate and
mean event size, then printing the table the paper reports.
"""

from repro.bench.configs import USE_CASES
from repro.fabric.record import EventRecord
from repro.simulation.workload import use_case_workload

NUM_RESOURCES = 4
WINDOW_SECONDS = 600.0


def generate_all_use_cases():
    summary = {}
    for name, profile in USE_CASES.items():
        events = list(
            use_case_workload(name, num_resources=NUM_RESOURCES,
                              duration_seconds=WINDOW_SECONDS)
        )
        sizes = [EventRecord(value=e).size_bytes() for e in events[:200]] or [0]
        summary[name] = {
            "events_per_hour_per_resource": len(events) / NUM_RESOURCES / (WINDOW_SECONDS / 3600.0),
            "mean_event_size": sum(sizes) / len(sizes),
            "expected_rate": profile.events_per_hour_per_resource,
            "expected_size": profile.mean_event_size_bytes,
        }
    return summary


def test_table1_use_case_characteristics(benchmark):
    summary = benchmark(generate_all_use_cases)
    print("\nTable I — characteristics of events for Octopus use cases")
    print(f"{'Use case':>16} {'Events/h (meas)':>16} {'Events/h (paper)':>17} "
          f"{'Size (meas)':>12} {'Size (paper)':>13}")
    for name, row in summary.items():
        print(f"{name:>16} {row['events_per_hour_per_resource']:>16.0f} "
              f"{row['expected_rate']:>17.0f} {row['mean_event_size']:>12.0f} "
              f"{row['expected_size']:>13d}")
    for name, row in summary.items():
        # Generated rates land within 40% of the paper's order-of-magnitude figures.
        assert row["events_per_hour_per_resource"] == row["expected_rate"] * 1.0 or \
            abs(row["events_per_hour_per_resource"] - row["expected_rate"]) \
            <= 0.4 * row["expected_rate"]
        assert abs(row["mean_event_size"] - row["expected_size"]) <= 0.5 * row["expected_size"]
