"""Figure 4 — trigger scaling under a backlog of 5000 thirty-second tasks.

The topic has 128 partitions and the trigger consumes single-event batches;
Lambda's processing-pressure evaluation scales concurrency from 3 to 128
within about four minutes and back down shortly before the workload
finishes (total runtime inside the paper's 1500 s window).
"""

from repro.bench.report import format_scaling_series
from repro.faas.scaling import TriggerScalingSimulator


def run_figure4():
    simulator = TriggerScalingSimulator(
        num_tasks=5000, task_duration_seconds=30.0, partitions=128, batch_size=1
    )
    return simulator, simulator.run()


def test_figure4_trigger_scaling(benchmark):
    simulator, samples = benchmark(run_figure4)
    print("\n" + format_scaling_series(
        "Figure 4 — trigger scaling (5000 x 30 s tasks, 128 partitions)", samples, stride=120
    ))
    # Scales to 128 concurrent invocations within ~4-5 minutes.
    assert simulator.peak_concurrency(samples) == 128
    time_to_peak = simulator.time_to_reach(samples, 128)
    assert time_to_peak is not None and time_to_peak <= 300.0
    # Entire backlog completes within the paper's 1500 s axis.
    completion = simulator.completion_time(samples)
    assert 900.0 <= completion <= 1600.0
    assert samples[-1].completed == 5000
    # Concurrency scales down before the workload is fully complete.
    tail = [s for s in samples if s.time_seconds >= completion - 90.0]
    assert any(s.concurrent_invocations < 128 for s in tail)
